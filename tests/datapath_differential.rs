//! Differential test for the incremental datapath resolution (PR 3).
//!
//! The checker's datapath leaf caches island topology, keeps the structural
//! equations pre-reduced in a checkpointed solver and speculates through the
//! shared delta trail. `CheckerOptions::incremental_datapath = false` runs
//! the *same* transcription and solving code but rebuilds all cached state on
//! every call — a from-scratch oracle. Both modes must therefore agree
//! bit-for-bit: same results, same traces, same search effort.

use std::time::Duration;
use wlac::atpg::{AssertionChecker, CheckReport, CheckerOptions, Property, Verification};
use wlac::bv::Bv;
use wlac::circuits::{paper_suite, Scale};
use wlac::netlist::Netlist;

fn options(incremental: bool) -> CheckerOptions {
    CheckerOptions {
        max_frames: 6,
        time_limit: Duration::from_secs(60),
        incremental_datapath: incremental,
        ..CheckerOptions::default()
    }
}

fn assert_reports_agree(label: &str, incremental: &CheckReport, scratch: &CheckReport) {
    assert_eq!(
        incremental.result, scratch.result,
        "{label}: incremental and from-scratch datapath resolution disagree"
    );
    // Same decisions, backtracks, implication effort and solver leaf calls:
    // the caches must be behaviourally invisible, not merely result-stable.
    assert_eq!(
        incremental.stats.decisions, scratch.stats.decisions,
        "{label}: decision count diverged"
    );
    assert_eq!(
        incremental.stats.backtracks, scratch.stats.backtracks,
        "{label}: backtrack count diverged"
    );
    assert_eq!(
        incremental.stats.arithmetic_calls, scratch.stats.arithmetic_calls,
        "{label}: arithmetic call count diverged"
    );
    assert_eq!(
        incremental.stats.implication.gate_evaluations, scratch.stats.implication.gate_evaluations,
        "{label}: implication effort diverged"
    );
    // The scratch oracle can never reuse an island cache across calls.
    assert_eq!(scratch.stats.island_cache_hits, 0, "{label}");
}

/// Every property of the paper suite decides identically under the cached
/// and the from-scratch datapath paths.
#[test]
fn paper_suite_incremental_matches_scratch() {
    let incremental = AssertionChecker::new(options(true));
    let scratch = AssertionChecker::new(options(false));
    for case in paper_suite(Scale::Small) {
        let a = incremental.check(&case.verification);
        let b = scratch.check(&case.verification);
        let label = format!("{} {}", case.circuit, case.property);
        assert_reports_agree(&label, &a, &b);
    }
}

/// A datapath-heavy design (the Small suite is mostly control-bound): a
/// mux-selected adder chain whose requirement can only be discharged by the
/// modular island solver, exercising cache reuse across many decisions.
#[test]
fn adder_chain_incremental_matches_scratch_and_solves_islands() {
    let mut nl = Netlist::new("adder_chain");
    let a = nl.input("a", 16);
    let b = nl.input("b", 16);
    let c = nl.input("c", 16);
    let sel = nl.input("sel", 1);
    let s1 = nl.add(a, b);
    let s2 = nl.add(s1, c);
    let dbl = nl.add(s2, s2);
    let zero = nl.constant(&Bv::zero(16));
    let out = nl.mux(sel, dbl, zero);
    let target = nl.constant(&Bv::from_u64(16, 0x1234));
    let ok = nl.ne(out, target);
    nl.mark_output("ok", ok);

    // out = 2·(a+b+c) is always even, 0x1234 is even: `sel`-branch
    // counter-examples exist and must be found through the island solver.
    let property = Property::always(&nl, "never_hits_target", ok);
    let verification = Verification::new(nl, property);
    let inc_report = AssertionChecker::new(options(true)).check(&verification);
    let scr_report = AssertionChecker::new(options(false)).check(&verification);
    assert_reports_agree("adder_chain", &inc_report, &scr_report);
    assert!(
        inc_report.stats.arithmetic_calls > 0,
        "the requirement must reach the modular solver, got {:?}",
        inc_report.stats
    );
    assert!(
        inc_report.result.has_trace(),
        "2·(a+b+c) ≡ 0x1234 (mod 2^16) is satisfiable, got {:?}",
        inc_report.result
    );
}
