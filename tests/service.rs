//! Learning-soundness and service integration tests.
//!
//! The cross-property learning store must shape *effort*, never *verdicts*:
//! warm-started runs (clause-seeded BMC, cube/fact-seeded ATPG) have to agree
//! with cold runs on every verdict and produce equally valid traces across
//! the whole circuits suite, and a poisoned knowledge base must be rejected
//! rather than trusted.

use std::time::Duration;
use wlac::atpg::CancelToken;
use wlac::atpg::{AssertionChecker, CheckResult, CheckerOptions, SearchKnowledge};
use wlac::baselines::{
    bounded_model_check_cancellable, bounded_model_check_learning, FrameClause, FrameLit,
};
use wlac::circuits::{paper_suite, Scale};
use wlac::netlist::NetId;
use wlac::service::{
    design_hash, KnowledgeBase, KnowledgeError, ServiceConfig, VerificationService,
};

fn suite_options() -> CheckerOptions {
    CheckerOptions {
        max_frames: 6,
        time_limit: Duration::from_secs(60),
        ..CheckerOptions::default()
    }
}

/// Two check results "agree" when they reach the same verdict class at the
/// same depth. Traces may differ bit-for-bit between runs (seeding legally
/// reorders decisions), but a counter-example/witness must exist at the same
/// first bound — so trace *lengths* must match — and each trace is validated
/// by replay separately.
fn assert_agrees(property: &str, cold: &CheckResult, warm: &CheckResult) {
    assert_eq!(
        std::mem::discriminant(cold),
        std::mem::discriminant(warm),
        "{property}: cold {cold:?} vs warm {warm:?}"
    );
    match (cold, warm) {
        (CheckResult::CounterExample { trace: a }, CheckResult::CounterExample { trace: b })
        | (CheckResult::WitnessFound { trace: a }, CheckResult::WitnessFound { trace: b }) => {
            assert_eq!(
                a.len(),
                b.len(),
                "{property}: trace depth diverged between cold and warm"
            );
        }
        (CheckResult::HoldsUpToBound { frames: a }, CheckResult::HoldsUpToBound { frames: b })
        | (
            CheckResult::WitnessNotFound { frames: a },
            CheckResult::WitnessNotFound { frames: b },
        ) => {
            assert_eq!(a, b, "{property}: bound diverged");
        }
        _ => {}
    }
}

/// ATPG differential: for every suite property, a knowledge-seeded re-check
/// (ESTG conflict cubes + datapath infeasibility facts from a priming run)
/// reaches the same verdict, depth and trace validity as the cold check.
#[test]
fn warm_atpg_verdicts_match_cold_across_the_suite() {
    let checker = AssertionChecker::new(suite_options());
    for case in paper_suite(Scale::Small) {
        let cold = checker.check(&case.verification);
        // Prime a knowledge base on the same design, then re-check warm.
        let mut knowledge = SearchKnowledge::new();
        let primed = checker.check_learned(&case.verification, &mut knowledge);
        assert_agrees(&case.property, &cold.result, &primed.result);
        let warm = checker.check_learned(&case.verification, &mut knowledge);
        assert_agrees(&case.property, &cold.result, &warm.result);
        // Any warm trace must replay to the claimed behaviour on its own.
        if let CheckResult::CounterExample { trace } | CheckResult::WitnessFound { trace } =
            &warm.result
        {
            let replay = trace
                .replay_monitor(
                    &case.verification.netlist,
                    case.verification.property.monitor,
                )
                .expect("warm trace must replay");
            let expected = matches!(warm.result, CheckResult::WitnessFound { .. });
            assert_eq!(
                replay.last(),
                Some(&expected),
                "{}: warm trace fails replay",
                case.property
            );
        }
    }
}

/// BMC differential: replaying harvested design-valid clauses never changes
/// a bounded-model-checking outcome anywhere in the suite, and violations
/// are found at the same depth.
#[test]
fn warm_bmc_outcomes_match_cold_across_the_suite() {
    let cancel = CancelToken::new();
    for case in paper_suite(Scale::Small) {
        let cold = bounded_model_check_cancellable(&case.verification, 6, 2_000_000, &cancel);
        let (_, harvest) =
            bounded_model_check_learning(&case.verification, 6, 2_000_000, &cancel, &[]);
        for clause in &harvest {
            assert!(
                clause.is_well_formed(&case.verification.netlist),
                "{}: malformed harvest {clause:?}",
                case.property
            );
        }
        let (warm, _) =
            bounded_model_check_learning(&case.verification, 6, 2_000_000, &cancel, &harvest);
        assert_eq!(
            cold.outcome, warm.outcome,
            "{}: seeding changed the BMC outcome",
            case.property
        );
        match (&cold.trace, &warm.trace) {
            (Some(a), Some(b)) => assert_eq!(
                a.len(),
                b.len(),
                "{}: violation depth diverged",
                case.property
            ),
            (None, None) => {}
            other => panic!("{}: trace presence diverged: {other:?}", case.property),
        }
    }
}

/// Service end-to-end: the industry suite submitted twice. The second run
/// must be answered entirely from the verdict cache (no engines spawned)
/// with verdicts agreeing with the first run's.
#[test]
fn repeated_batch_is_served_from_cache_with_identical_verdicts() {
    let mut config = ServiceConfig::default();
    config.portfolio.checker.max_frames = 6;
    config.portfolio.checker.time_limit = Duration::from_secs(60);
    config.portfolio.bmc_decision_budget = 2_000_000;
    let service = VerificationService::new(config);

    let jobs: Vec<_> = paper_suite(Scale::Small)
        .into_iter()
        .map(|case| case.verification)
        .collect();

    let cold = service.wait(service.submit_batch(jobs.clone()));
    assert_eq!(cold.len(), 14);
    for result in &cold {
        assert!(!result.from_cache);
        assert!(
            result.verdict.is_definitive(),
            "{}: {:?}",
            result.property,
            result.verdict
        );
    }

    let warm = service.wait(service.submit_batch(jobs));
    for (c, w) in cold.iter().zip(&warm) {
        assert!(w.from_cache, "{}: expected a cache hit", w.property);
        assert_eq!(
            w.engines_spawned, 0,
            "{}: cache hits spawn nothing",
            w.property
        );
        assert_eq!(
            std::mem::discriminant(&c.verdict),
            std::mem::discriminant(&w.verdict),
            "{}: cached verdict class diverged",
            w.property
        );
    }

    let stats = service.stats();
    assert_eq!(stats.cache_hits, 14);
    assert_eq!(stats.cache_misses, 14);
    assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-9);
}

/// A corrupted or foreign knowledge base is rejected with a diagnostic, and
/// nothing of it reaches the design's store.
#[test]
fn poisoned_knowledge_is_rejected_not_trusted() {
    let service = VerificationService::new(ServiceConfig::default());
    let case = &paper_suite(Scale::Small)[4]; // arbiter p5
    let design = service.register_design(&case.verification.netlist);

    // Corrupt store: right design binding, garbage clause inside.
    let mut poisoned = KnowledgeBase::new(design);
    poisoned.clauses.insert(&FrameClause {
        depth: 1,
        lits: vec![FrameLit {
            frame: 0,
            net: NetId::from_index(1_000_000),
            bit: 7,
            negated: false,
        }],
    });
    match service.import_knowledge(design, &poisoned) {
        Err(KnowledgeError::MalformedClause { index }) => assert_eq!(index, 0),
        other => panic!("poisoned store must be rejected, got {other:?}"),
    }

    // Foreign store: bound to a different design hash.
    let other = &paper_suite(Scale::Small)[6]; // alarm_clock p7
    let foreign = KnowledgeBase::new(design_hash(&other.verification.netlist));
    assert!(matches!(
        service.import_knowledge(design, &foreign),
        Err(KnowledgeError::DesignMismatch { .. })
    ));

    // The design's own store is untouched and still importable.
    let clean = service.export_knowledge(design).expect("registered");
    assert!(clean.clauses.is_empty());
    assert!(service.import_knowledge(design, &clean).is_ok());
}
