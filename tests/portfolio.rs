//! Portfolio integration tests: cross-engine agreement on the paper suite,
//! first-definitive-answer racing and prompt cooperative cancellation.

use std::time::Duration;
use wlac::atpg::{CheckerOptions, Property, Verification};
use wlac::bv::Bv;
use wlac::circuits::{paper_suite, Expectation, Scale};
use wlac::netlist::Netlist;
use wlac::portfolio::{Engine, Portfolio, PortfolioConfig, Verdict};

/// Bounded configuration keeping full-suite runs predictable, mirroring the
/// bench harness: 6 frames, generous SAT budget.
fn suite_config() -> PortfolioConfig {
    let checker = CheckerOptions {
        max_frames: 6,
        time_limit: Duration::from_secs(60),
        ..CheckerOptions::default()
    };
    PortfolioConfig {
        checker,
        bmc_decision_budget: 2_000_000,
        ..PortfolioConfig::default()
    }
}

/// `Portfolio::check_batch` verifies all fourteen paper-suite properties at
/// `Scale::Small` with zero engine disagreements, and ATPG and SAT BMC reach
/// the same verdict on every case both can decide.
#[test]
fn batch_checks_paper_suite_with_zero_disagreements() {
    let suite = paper_suite(Scale::Small);
    let jobs: Vec<Verification> = suite.iter().map(|c| c.verification.clone()).collect();
    let portfolio = Portfolio::new(suite_config().with_cross_validation());
    let reports = portfolio.check_batch(&jobs);
    assert_eq!(reports.len(), 14);

    for (case, report) in suite.iter().zip(&reports) {
        assert_eq!(report.property, case.property);
        assert!(
            report.agreed(),
            "{}: engines disagree: {:?}",
            case.property,
            report.disagreements
        );
        // The portfolio verdict is definitive and matches the paper's
        // Table 2 expectation.
        match case.expectation {
            Expectation::Pass => assert!(
                report.verdict.is_pass(),
                "{} expected to pass, got {:?}",
                case.property,
                report.verdict
            ),
            Expectation::Witness => assert!(
                matches!(report.verdict, Verdict::WitnessFound { .. }),
                "{} expected a witness, got {:?}",
                case.property,
                report.verdict
            ),
        }
        // ATPG and BMC both reach a verdict on every small-scale case, with
        // the same pass/fail polarity and no bounded-semantics conflict.
        let atpg = report.run_of(Engine::Atpg).expect("atpg ran");
        let bmc = report.run_of(Engine::SatBmc).expect("bmc ran");
        assert!(
            atpg.verdict.is_definitive(),
            "{}: ATPG inconclusive: {:?}",
            case.property,
            atpg.verdict
        );
        assert!(
            bmc.verdict.is_definitive(),
            "{}: BMC inconclusive: {:?}",
            case.property,
            bmc.verdict
        );
        assert!(
            !atpg.verdict.conflicts_with(&bmc.verdict),
            "{}: ATPG {:?} vs BMC {:?}",
            case.property,
            atpg.verdict,
            bmc.verdict
        );
        assert_eq!(
            atpg.verdict.is_pass(),
            bmc.verdict.is_pass(),
            "{}: ATPG {} vs BMC {}",
            case.property,
            atpg.verdict.label(),
            bmc.verdict.label()
        );
    }
}

/// Racing returns the first definitive verdict and cooperatively cancels the
/// losing engines instead of waiting for them.
#[test]
fn race_cancels_losers_promptly() {
    // A corner-case witness: a 32-bit input must equal a magic constant.
    // The word-level engines find it immediately; random simulation has a
    // 2^-32 chance per cycle and would churn through 200k runs for minutes
    // without cooperative cancellation.
    let mut nl = Netlist::new("corner");
    let wide = nl.input("wide", 32);
    let magic = nl.constant(&Bv::from_u64(32, 0xDEAD_BEEF));
    let hit = nl.eq(wide, magic);
    nl.mark_output("hit", hit);
    let property = Property::eventually(&nl, "corner", hit);
    let verification = Verification::new(nl, property);

    let mut config = suite_config();
    config.checker.max_frames = 2;
    config.random_runs = 200_000;
    config.random_cycles = 50;
    let report = Portfolio::new(config).race(&verification);

    assert!(
        matches!(report.verdict, Verdict::WitnessFound { .. }),
        "got {:?}",
        report.verdict
    );
    let winner = report.winner.expect("a definitive winner");
    assert_ne!(winner, Engine::RandomSim, "deterministic engines must win");
    let random = report.run_of(Engine::RandomSim).expect("random-sim ran");
    assert!(
        random.cancelled,
        "random simulation should have been cancelled, got {:?}",
        random.verdict
    );
    assert!(
        report.wall_clock < Duration::from_secs(30),
        "cancellation was not prompt: {:?}",
        report.wall_clock
    );
}

/// In racing mode the reported verdict is exactly the winning engine's, with
/// a validated trace for violations.
#[test]
fn race_attributes_the_winner() {
    // A counter wrapping at 12 violates "always below 5" after five steps.
    let mut nl = Netlist::new("cex");
    let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
    let one = nl.constant(&Bv::from_u64(4, 1));
    let next = nl.add(q, one);
    nl.connect_dff_data(ff, next);
    let five = nl.constant(&Bv::from_u64(4, 5));
    let ok = nl.lt(q, five);
    nl.mark_output("ok", ok);
    let property = Property::always(&nl, "below_5", ok);
    let verification = Verification::new(nl, property);

    let report = Portfolio::new(suite_config()).race(&verification);
    let winner = report.winner.expect("someone wins");
    let winning_run = report.run_of(winner).expect("winner ran");
    assert_eq!(winning_run.verdict, report.verdict);
    match &report.verdict {
        Verdict::Violated { trace } => {
            let replay = trace
                .replay_monitor(&verification.netlist, verification.property.monitor)
                .expect("replay");
            assert_eq!(replay.last(), Some(&false), "validated counter-example");
        }
        other => panic!("expected a violation, got {other:?}"),
    }
}
