//! Cross-crate integration tests: the full paper suite, agreement between the
//! word-level ATPG checker and the bit-level SAT BMC baseline, trace replay
//! and the Verilog front-end path.

use std::time::Duration;
use wlac::atpg::{AssertionChecker, CheckResult, CheckerOptions, Property, Verification};
use wlac::baselines::{bounded_model_check, BmcOutcome};
use wlac::bv::Bv;
use wlac::circuits::{paper_suite, Expectation, Scale};
use wlac::frontend::compile;
use wlac::netlist::Netlist;

fn quick_options() -> CheckerOptions {
    CheckerOptions {
        max_frames: 6,
        time_limit: Duration::from_secs(30),
        ..CheckerOptions::default()
    }
}

/// Every property of the paper's Table 2 produces the expected outcome at the
/// small scale.
#[test]
fn paper_suite_outcomes_match_expectations() {
    let checker = AssertionChecker::new(quick_options());
    for case in paper_suite(Scale::Small) {
        let report = checker.check(&case.verification);
        match case.expectation {
            Expectation::Pass => assert!(
                report.result.is_pass(),
                "{} expected to pass, got {:?}",
                case.property,
                report.result
            ),
            Expectation::Witness => assert!(
                report.result.has_trace(),
                "{} expected a witness, got {:?}",
                case.property,
                report.result
            ),
        }
        // Memory accounting is always populated.
        assert!(report.stats.peak_memory_bytes > 0, "{}", case.property);
    }
}

/// The ATPG checker and the SAT BMC baseline agree on pass/fail for designs
/// the bit-blaster supports.
#[test]
fn atpg_and_sat_bmc_agree() {
    let checker = AssertionChecker::new(quick_options());
    for case in paper_suite(Scale::Small) {
        let report = checker.check(&case.verification);
        let bmc = bounded_model_check(&case.verification, 4, 500_000);
        match (&report.result, &bmc.outcome) {
            // BMC finding a trace means the ATPG must not claim a pass, and
            // vice versa: a pass and a found trace are contradictory.
            (result, BmcOutcome::Found { .. }) if result.is_pass() => {
                panic!("{}: ATPG passed but BMC found a trace", case.property)
            }
            (CheckResult::CounterExample { .. }, BmcOutcome::HoldsUpToBound) => {
                panic!(
                    "{}: ATPG found a counter-example but BMC did not",
                    case.property
                )
            }
            _ => {}
        }
    }
}

/// Counter-example traces replay to a real violation on the sequential design.
#[test]
fn counterexample_traces_replay() {
    // A counter that is asserted (wrongly) to stay below 3.
    let mut nl = Netlist::new("cex");
    let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
    let one = nl.constant(&Bv::from_u64(4, 1));
    let next = nl.add(q, one);
    nl.connect_dff_data(ff, next);
    let three = nl.constant(&Bv::from_u64(4, 3));
    let ok = nl.lt(q, three);
    let property = Property::always(&nl, "below_3", ok);
    let verification = Verification::new(nl, property);
    let report = AssertionChecker::new(quick_options()).check(&verification);
    match report.result {
        CheckResult::CounterExample { trace } => {
            let values = trace
                .replay_monitor(&verification.netlist, verification.property.monitor)
                .expect("replay");
            assert_eq!(values.last(), Some(&false));
            assert_eq!(trace.len(), 4, "q reaches 3 after three steps");
        }
        other => panic!("expected a counter-example, got {other:?}"),
    }
}

/// Verilog source flows through the front end into the checker.
#[test]
fn verilog_to_checker_flow() {
    let netlist = compile(
        r#"
        module gray2(input clk, input step, output reg [1:0] state);
          always @(posedge clk) begin
            if (step)
              state <= {state[0], ~state[1]};
          end
        endmodule
        "#,
    )
    .expect("compiles");
    let mut design = netlist.clone();
    let state = design.find_net("state").expect("state register");
    // The 2-bit Gray counter visits every state, so `state != 2'b10` must fail.
    let avoided = design.constant(&Bv::from_u64(2, 0b10));
    let ok = design.ne(state, avoided);
    let property = Property::always(&design, "avoids_10", ok);
    let report = AssertionChecker::new(quick_options()).check(&Verification::new(design, property));
    assert!(
        matches!(report.result, CheckResult::CounterExample { .. }),
        "got {:?}",
        report.result
    );
}

/// The façade crate exposes every subsystem.
#[test]
fn facade_reexports_are_usable() {
    let ring = wlac::modsolve::Ring::new(4);
    assert_eq!(ring.mul(5, 7), 3);
    let cube: wlac::bv::Bv3 = "4'b10xx".parse().expect("parses");
    assert_eq!(cube.count_x(), 2);
    assert_eq!(wlac::circuits::paper_table1().len(), 9);
}
