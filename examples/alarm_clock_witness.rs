//! The alarm-clock workload of the paper (properties p7–p9): prove the
//! 11:59 → 12:00 roll-over and the impossibility of an hour display of 13,
//! and generate a witness sequence that brings the hour display to 2 —
//! then replay the witness on the concrete simulator.
//!
//! Run with `cargo run --release --example alarm_clock_witness`.

use wlac::atpg::{AssertionChecker, CheckResult, CheckerOptions};
use wlac::circuits::AlarmClock;

fn main() {
    let clock = AlarmClock::new();
    let options = CheckerOptions {
        max_frames: 6,
        ..CheckerOptions::default()
    };
    let checker = AssertionChecker::new(options);

    for verification in [
        clock.p7_rollover_to_twelve(),
        clock.p9_hour_never_thirteen(),
    ] {
        let report = checker.check(&verification);
        println!("[{}] {:?}", report.property, report.result);
        println!("    effort: {}", report.stats);
    }

    let witness = checker.check(&clock.p8_hour_reaches_two());
    println!("[{}] witness generation:", witness.property);
    match witness.result {
        CheckResult::WitnessFound { trace } => {
            println!("    hour display reaches 2 after {} cycle(s)", trace.len());
            print!("{trace}");
            // Independently replay the witness with the concrete simulator.
            let verification = clock.p8_hour_reaches_two();
            let monitor = verification.property.monitor;
            let values = trace
                .replay_monitor(&verification.netlist, monitor)
                .expect("replay");
            println!("    replayed monitor values: {values:?}");
            assert_eq!(values.last(), Some(&true));
        }
        other => println!("    unexpected result {other:?}"),
    }
}
