//! A persistent verification session end-to-end: register the industry
//! designs, batch-check their properties twice, and print the warm-run
//! speedup plus the knowledge-base statistics behind it.
//!
//! Run with `cargo run --release --example verification_service`.
//!
//! The second submission of an identical batch is answered entirely from the
//! verdict cache (zero engines spawned), which is where batch-serving
//! throughput comes from; the knowledge-base counters show what the first
//! run banked for any *non*-identical future queries against the same
//! designs (replayable CDCL clauses, ESTG conflict cubes, datapath
//! infeasibility facts, engine win/loss history).

use std::time::{Duration, Instant};
use wlac::circuits::{paper_suite, Scale};
use wlac::service::{design_hash, ServiceConfig, VerificationService};

fn main() {
    let mut config = ServiceConfig::default();
    config.portfolio.checker.max_frames = 6;
    config.portfolio.checker.time_limit = Duration::from_secs(60);
    config.portfolio.bmc_decision_budget = 2_000_000;
    let service = VerificationService::new(config);

    // The industry designs and their properties (p10–p14 of the paper).
    let suite: Vec<_> = paper_suite(Scale::Small)
        .into_iter()
        .filter(|case| case.circuit.starts_with("industry"))
        .collect();
    println!("registering {} industry designs:", suite.len());
    for case in &suite {
        let hash = service.register_design(&case.verification.netlist);
        println!("  {:<13} {:>4}  {}", case.circuit, case.property, hash);
    }
    let jobs: Vec<_> = suite.iter().map(|c| c.verification.clone()).collect();

    // Cold run: every job races the (predictor-scheduled) portfolio.
    let start = Instant::now();
    let batch = service.submit_batch(jobs.clone());
    while !service.poll(batch).expect("known batch").done() {
        std::thread::sleep(Duration::from_millis(5));
    }
    let cold = service.results(batch).expect("finished batch");
    let cold_wall = start.elapsed();
    println!("\ncold run ({cold_wall:?}):");
    for result in &cold {
        println!(
            "  {:<4} {:<13} {} engine(s), won by {}",
            result.property,
            result.verdict.label(),
            result.engines_spawned,
            result
                .winner
                .map(|w| w.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }

    // Warm run: the identical batch again — pure verdict-cache traffic.
    let start = Instant::now();
    let warm = service.wait(service.submit_batch(jobs));
    let warm_wall = start.elapsed();
    println!("\nwarm run ({warm_wall:?}):");
    for result in &warm {
        assert!(result.from_cache, "identical queries must hit the cache");
        println!(
            "  {:<4} {:<13} from cache, {} engine(s)",
            result.property,
            result.verdict.label(),
            result.engines_spawned
        );
    }

    let stats = service.stats();
    let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9);
    println!("\nwarm-run speedup: {speedup:.1}x");
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate)",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate() * 100.0
    );
    println!(
        "knowledge across {} designs: {} clauses banked, {} datapath facts, {} ESTG conflicts",
        stats.designs, stats.clauses_banked, stats.datapath_facts, stats.estg_conflicts
    );
    for case in &suite {
        let design = design_hash(&case.verification.netlist);
        if let Some(kb) = service.knowledge_stats(design) {
            println!(
                "  {:<13} {:>2} race(s) absorbed, {} clauses banked, {} rejected",
                case.circuit, kb.races_absorbed, kb.clauses_banked, kb.clauses_rejected
            );
        }
    }

    assert!(
        stats.cache_hits >= warm.len() as u64,
        "the repeated batch must be served from cache"
    );
    println!("\nOK: repeated batch served from cache without spawning engines");
}
