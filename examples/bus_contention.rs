//! Bus-contention checking on the synthetic industrial bus fabrics — the
//! workload of properties p11–p13 in the paper — and a comparison with the
//! bit-level SAT BMC baseline on the same problem.
//!
//! Run with `cargo run --release --example bus_contention`.

use wlac::atpg::{AssertionChecker, CheckerOptions};
use wlac::baselines::{bounded_model_check, BmcOutcome};
use wlac::circuits::{industry_02, industry_03, industry_04};

fn main() {
    let options = CheckerOptions {
        max_frames: 4,
        ..CheckerOptions::default()
    };
    let checker = AssertionChecker::new(options);

    let fabrics = [
        (
            "industry_02 (152-bit, registered)",
            industry_02(4).contention_free("p11"),
        ),
        (
            "industry_03 (128-bit, broadcast)",
            industry_03(4).contention_free("p12"),
        ),
        (
            "industry_04 (32-bit)",
            industry_04(4).contention_free("p13"),
        ),
    ];
    for (name, verification) in fabrics {
        let report = checker.check(&verification);
        println!("{name}");
        println!("  word-level ATPG: {:?}", report.result);
        println!("  effort: {}", report.stats);
        let bmc = bounded_model_check(&verification, 3, 1_000_000);
        let outcome = match bmc.outcome {
            BmcOutcome::HoldsUpToBound => "holds up to bound".to_string(),
            BmcOutcome::Found { depth } => format!("violation at depth {depth}"),
            BmcOutcome::Unknown => "unknown (budget exhausted)".to_string(),
        };
        println!(
            "  bit-level SAT BMC: {outcome}, {:.2}s, CNF {:.2} MB ({} vars, {} clauses)",
            bmc.elapsed.as_secs_f64(),
            bmc.peak_memory_bytes as f64 / (1024.0 * 1024.0),
            bmc.variables,
            bmc.clauses
        );
        println!();
    }
    println!(
        "The word-level engine treats each 152/128/32-bit bus as a single entity; the\n\
         bit-blasted CNF grows with the bus width — the memory-efficiency argument of\n\
         the paper's introduction."
    );
}
