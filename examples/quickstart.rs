//! Quickstart: build a small design programmatically, state an assertion and
//! check it, then deliberately break the design and inspect the
//! counter-example trace.
//!
//! Run with `cargo run --example quickstart`.

use wlac::atpg::{AssertionChecker, CheckResult, Property, Verification};
use wlac::bv::Bv;
use wlac::netlist::Netlist;

/// Builds a modulo-`wrap` counter and an "always below `limit`" assertion.
fn counter_with_limit(wrap: u64, limit: u64) -> Verification {
    let mut nl = Netlist::new("counter");
    let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
    let one = nl.constant(&Bv::from_u64(4, 1));
    let plus = nl.add(q, one);
    let wrap_value = nl.constant(&Bv::from_u64(4, wrap));
    let at_wrap = nl.eq(q, wrap_value);
    let zero = nl.constant(&Bv::zero(4));
    let next = nl.mux(at_wrap, zero, plus);
    nl.connect_dff_data(ff, next);
    let limit_value = nl.constant(&Bv::from_u64(4, limit));
    let ok = nl.lt(q, limit_value);
    nl.mark_output("ok", ok);
    let property = Property::always(&nl, format!("counter_below_{limit}"), ok);
    Verification::new(nl, property)
}

fn main() {
    let checker = AssertionChecker::with_defaults();

    // A counter wrapping at 9 never reaches 12: the assertion holds.
    let holds = checker.check(&counter_with_limit(9, 12));
    println!("[{}] {:?}", holds.property, holds.result);
    println!("    effort: {}", holds.stats);

    // The same counter does exceed 5: the checker produces a counter-example.
    let fails = checker.check(&counter_with_limit(9, 5));
    println!("[{}] counter-example expected:", fails.property);
    match fails.result {
        CheckResult::CounterExample { trace } => {
            println!("    violation after {} cycle(s)", trace.len());
            print!("{trace}");
        }
        other => println!("    unexpected result {other:?}"),
    }
    println!("    effort: {}", fails.stats);
}
