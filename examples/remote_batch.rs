//! A full network round-trip against the verification server: boot it on an
//! ephemeral port with a persistence directory, drive it over a real TCP
//! socket (register a Verilog design, submit a batch, ride its `subscribe`
//! event stream until every verdict has landed — no polling), then restart
//! the server from its snapshots and show the same batch answered from the
//! persisted verdict cache.
//!
//! Run with `cargo run --release --example remote_batch`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;
use wlac::server::{Json, Server, ServerConfig};

const TRAFFIC_LIGHT_V: &str = r#"
    module traffic(input clk, input go, output ok, output live);
      reg [1:0] state;
      always @(posedge clk) begin
        if (state == 2)
          state <= 0;
        else if (go)
          state <= state + 1;
      end
      assign ok = state != 3;     // the fourth encoding is unreachable
      assign live = state == 2;   // green is reachable
    endmodule
"#;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    fn call(&mut self, request: Json) -> Json {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("send");
        self.read_frame()
    }

    fn read_frame(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("receive");
        let reply = Json::parse(line.trim_end()).expect("valid frame");
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request failed: {reply}"
        );
        reply
    }

    /// Subscribes to `batch` and consumes its event stream until
    /// `batch_done`, printing each live `progress` frame. The server pushes
    /// every frame — the client never polls.
    fn stream_batch(&mut self, batch: u64) {
        self.writer
            .write_all(
                format!(
                    "{}\n",
                    Json::obj(vec![
                        ("op", Json::str("subscribe")),
                        ("batch", Json::num(batch)),
                        ("interval_ms", Json::num(50)),
                    ])
                )
                .as_bytes(),
            )
            .expect("send subscribe");
        loop {
            let frame = self.read_frame();
            match frame.get("event").and_then(Json::as_str) {
                Some("progress") => {
                    let probe = frame.get("probe");
                    let effort = |name: &str| {
                        probe
                            .and_then(|p| p.get(name))
                            .and_then(Json::as_u64)
                            .unwrap_or(0)
                    };
                    println!(
                        "  progress {:<6} bound={} decisions={} conflicts={}",
                        frame.get("property").and_then(Json::as_str).unwrap_or("?"),
                        effort("bound"),
                        effort("decisions"),
                        effort("conflicts"),
                    );
                }
                Some("verdict") => {
                    let label = frame
                        .get("result")
                        .and_then(|r| r.get("verdict"))
                        .and_then(|v| v.get("label"))
                        .and_then(Json::as_str)
                        .unwrap_or("?");
                    println!("  verdict  {label}");
                }
                Some("batch_done") => return,
                _ => {}
            }
        }
    }
}

fn boot(data_dir: &std::path::Path) -> (SocketAddr, std::thread::JoinHandle<()>, usize) {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: Some(data_dir.to_path_buf()),
        ..ServerConfig::default()
    };
    config.service.portfolio.checker.max_frames = 6;
    let server = Server::bind(config).expect("bind server");
    let addr = server.local_addr().expect("local addr");
    let loaded = server.loaded_snapshots();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, loaded)
}

fn run_batch(addr: SocketAddr) -> Vec<(String, String, bool)> {
    let mut client = Client::connect(addr).expect("connect");
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("register_design")),
        ("source", Json::str(TRAFFIC_LIGHT_V)),
    ]));
    let design = reply
        .get("design")
        .and_then(Json::as_str)
        .expect("design hash")
        .to_string();

    let job = |kind: &str, monitor: &str| {
        Json::obj(vec![
            ("design", Json::str(design.clone())),
            (
                "property",
                Json::obj(vec![
                    ("kind", Json::str(kind)),
                    ("monitor", Json::str(monitor)),
                ]),
            ),
        ])
    };
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("submit_batch")),
        (
            "jobs",
            Json::Arr(vec![job("always", "ok"), job("eventually", "live")]),
        ),
    ]));
    let batch = reply.get("batch").and_then(Json::as_u64).expect("batch");
    // Ride the pushed event stream to completion, then fetch (and retire)
    // the finished batch — `results` is also what lands the autosave.
    client.stream_batch(batch);
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("results")),
        ("batch", Json::num(batch)),
    ]));
    reply
        .get("results")
        .and_then(Json::as_arr)
        .expect("results")
        .iter()
        .map(|result| {
            (
                result
                    .get("property")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                result
                    .get("verdict")
                    .and_then(|v| v.get("label"))
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                result
                    .get("from_cache")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            )
        })
        .collect()
}

fn shutdown(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("connect");
    client.call(Json::obj(vec![("op", Json::str("shutdown"))]));
}

fn main() {
    let data_dir = std::env::temp_dir().join(format!("wlac-remote-batch-{}", std::process::id()));

    // Session 1: cold — every property races engines; results are saved to
    // the data directory as the batch completes.
    let (addr, handle, loaded) = boot(&data_dir);
    println!("server 1 on {addr} ({loaded} snapshots loaded)");
    let start = Instant::now();
    let cold = run_batch(addr);
    let cold_wall = start.elapsed();
    for (property, label, from_cache) in &cold {
        assert!(!from_cache, "first run must race");
        println!("  {property:<6} {label:<13} raced");
    }
    shutdown(addr);
    handle.join().expect("server 1 thread");
    println!("server 1 drained + saved in {}", data_dir.display());

    // Session 2: a brand-new server process-equivalent, warm from disk.
    let (addr, handle, loaded) = boot(&data_dir);
    println!("\nserver 2 on {addr} ({loaded} snapshots loaded)");
    let start = Instant::now();
    let warm = run_batch(addr);
    let warm_wall = start.elapsed();
    for ((property, label, from_cache), (_, cold_label, _)) in warm.iter().zip(&cold) {
        assert!(from_cache, "restarted server must answer from the cache");
        assert_eq!(label, cold_label, "verdicts must survive the restart");
        println!("  {property:<6} {label:<13} cached");
    }
    shutdown(addr);
    handle.join().expect("server 2 thread");

    println!(
        "\ncold {:?} -> restart-warm {:?} ({:.0}x)",
        cold_wall,
        warm_wall,
        cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9)
    );
    std::fs::remove_dir_all(&data_dir).ok();
}
