//! The always-on flight recorder: attach one to a verification service,
//! run a batch, then replay each job's path through the stack — dequeue,
//! portfolio race, engine answers, completion — from the event ring.
//!
//! Run with `cargo run --release --example flight_recorder`.
//!
//! The recorder is the same one `wlac-server` tails over the wire (the
//! `events` op) and snapshots into post-mortem bundles when a fault path
//! fires: a fixed-capacity, lock-free, alloc-free ring that every layer
//! writes into and that costs nothing to leave on.

use std::sync::Arc;
use wlac::atpg::{Property, Verification};
use wlac::bv::Bv;
use wlac::netlist::Netlist;
use wlac::service::{ServiceConfig, VerificationService};
use wlac::telemetry::{FlightRecorder, RecorderHandle};

/// A modulo-`wrap` counter with an "always below `limit`" assertion.
fn counter_with_limit(wrap: u64, limit: u64) -> Verification {
    let mut nl = Netlist::new("counter");
    let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
    let one = nl.constant(&Bv::from_u64(4, 1));
    let plus = nl.add(q, one);
    let wrap_value = nl.constant(&Bv::from_u64(4, wrap));
    let at_wrap = nl.eq(q, wrap_value);
    let zero = nl.constant(&Bv::zero(4));
    let next = nl.mux(at_wrap, zero, plus);
    nl.connect_dff_data(ff, next);
    let limit_value = nl.constant(&Bv::from_u64(4, limit));
    let ok = nl.lt(q, limit_value);
    nl.mark_output("ok", ok);
    let property = Property::always(&nl, format!("counter_below_{limit}"), ok);
    Verification::new(nl, property)
}

fn main() {
    let recorder = Arc::new(FlightRecorder::new(1024));
    let config = ServiceConfig {
        workers: 2,
        recorder: RecorderHandle::to(Arc::clone(&recorder)),
        ..ServiceConfig::default()
    };
    let service = VerificationService::new(config);

    // One property that holds, one that is violated.
    let batch = service.submit_batch(vec![counter_with_limit(9, 12), counter_with_limit(9, 5)]);
    let results = service.wait(batch);
    for result in &results {
        println!(
            "{:<17} {:<13} {} engine(s)",
            result.property,
            result.verdict.label(),
            result.engines_spawned
        );
    }

    // The ring now holds the whole story. Group it by job id: 0 is
    // infrastructure (worker respawns, persistence), 1.. are the jobs.
    let events = recorder.snapshot();
    println!(
        "\nflight recorder: {} event(s) recorded, {} overwritten, capacity {}",
        recorder.recorded(),
        recorder.overwrites(),
        recorder.capacity()
    );
    let jobs: Vec<u64> = {
        let mut ids: Vec<u64> = events.iter().map(|e| e.job).filter(|&j| j > 0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    for job in &jobs {
        println!("\njob {job}:");
        for event in events.iter().filter(|e| e.job == *job) {
            println!(
                "  {:>9}ns {:<9} {:<9} p0={:#x} p1={:#x}",
                event.at_nanos,
                event.layer.as_str(),
                event.kind.as_str(),
                event.payload[0],
                event.payload[1]
            );
        }
    }

    // Every job's trail crosses the stack: the service dequeued it and the
    // portfolio raced it, in that order, under one correlation id.
    for job in &jobs {
        let layers: Vec<&str> = events
            .iter()
            .filter(|e| e.job == *job)
            .map(|e| e.layer.as_str())
            .collect();
        assert!(layers.contains(&"service"), "job {job}: {layers:?}");
        assert!(layers.contains(&"portfolio"), "job {job}: {layers:?}");
    }
    assert_eq!(jobs.len(), results.len(), "one trail per job");
    println!("\nOK: every job left a cross-layer trail in the recorder");
}
