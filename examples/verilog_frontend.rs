//! End-to-end flow from Verilog source: parse and elaborate a small RTL
//! module with the front end, attach an assertion and check it — the same
//! HDL-to-netlist-to-constraints pipeline as the paper's Fig. 1.
//!
//! Run with `cargo run --example verilog_frontend`.

use wlac::atpg::{AssertionChecker, CheckerOptions, Property, Verification};
use wlac::bv::Bv;
use wlac::frontend::compile;

const SOURCE: &str = r#"
// A small round-robin grant generator: exactly one grant rotates among
// three requesters whenever `advance` is high.
module rotator(input clk, input advance, output reg [2:0] grant);
  always @(posedge clk) begin
    if (advance)
      grant <= {grant[1:0], grant[2]};
  end
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut netlist = compile(SOURCE)?;
    println!(
        "elaborated `{}`: {} gates, {} flip-flop bits, {} input bits",
        netlist.name(),
        netlist.stats().gates,
        netlist.stats().flip_flop_bits,
        netlist.stats().inputs
    );

    // The reset value of `grant` is 0, so the one-hot invariant only holds
    // once a grant is injected; assert the weaker safety property that the
    // register never holds the all-ones pattern.
    let grant = netlist.find_net("grant").expect("grant register");
    let all_ones = netlist.constant(&Bv::from_u64(3, 0b111));
    let ok = netlist.ne(grant, all_ones);
    let property = Property::always(&netlist, "never_all_ones", ok);

    let options = CheckerOptions {
        max_frames: 6,
        ..CheckerOptions::default()
    };
    let report = AssertionChecker::new(options).check(&Verification::new(netlist, property));
    println!("[{}] {:?}", report.property, report.result);
    println!("    effort: {}", report.stats);
    Ok(())
}
