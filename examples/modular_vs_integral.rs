//! The "false negative effect" of Section 4: bit-vector constraints that are
//! unsolvable over the integers but solvable modulo 2ⁿ, and why that matters
//! when hunting counter-examples.
//!
//! Run with `cargo run --example modular_vs_integral`.

use wlac::baselines::{IntegralLinearSystem, IntegralOutcome};
use wlac::modsolve::{inverse_with_product, LinearSystem, MixedSystem, Ring};

fn main() {
    // Section 4.1 worked example: x + y = 5, 2x + 7y = 4 over 3-bit vectors.
    let ring = Ring::new(3);
    let mut modular = LinearSystem::new(ring, 2);
    modular.add_equation(&[1, 1], 5);
    modular.add_equation(&[2, 7], 4);
    let solution = modular.solve().expect("modular solution exists");
    println!(
        "modular  : x + y = 5, 2x + 7y = 4 (mod 8)   ->  (x, y) = ({}, {})",
        solution.particular()[0],
        solution.particular()[1]
    );

    let mut integral = IntegralLinearSystem::new(3, 2);
    integral.add_equation(&[1, 1], 5);
    integral.add_equation(&[2, 7], 4);
    match integral.solve() {
        IntegralOutcome::Infeasible => {
            println!("integral : the only rational solution is x = 31/5 -> reported infeasible")
        }
        other => println!("integral : {other:?}"),
    }

    // The multiplier example: c = 12, a = 4 admits b = 3 *and* b = 7 mod 16.
    let mut mixed = MixedSystem::new(Ring::new(4), 3);
    mixed.add_product(0, 1, 2);
    mixed.fix_variable(0, 4);
    mixed.fix_variable(2, 12);
    mixed.add_equation(&[0, 1, 0], 7); // a side constraint ruling out b = 3
    let solution = mixed.solve().expect_solution();
    println!(
        "multiplier: 4 * b = 12 (mod 16) with b forced to 7 -> b = {} (4*7 = 28 = 12 mod 16)",
        solution[1]
    );

    // Theorem 2 closed form: all inverses of 6 with product 10 in 4 bits.
    let set = inverse_with_product(Ring::new(4), 6, 10).expect("solvable");
    let all: Vec<u64> = set.iter().collect();
    println!(
        "Theorem 2 : multiplicative_inverse_10(6) mod 16 = base {} step {} -> {all:?}",
        set.base(),
        set.step()
    );
}
