//! Portfolio racing: check one property with three engines concurrently,
//! then verify a whole batch of properties across a worker pool.
//!
//! Run with `cargo run --example portfolio_race`.

use wlac::atpg::{Property, Verification};
use wlac::bv::Bv;
use wlac::netlist::Netlist;
use wlac::portfolio::{Portfolio, PortfolioConfig};

/// Builds a modulo-`wrap` counter asserted to stay below `limit`.
fn counter_with_limit(wrap: u64, limit: u64) -> Verification {
    let mut nl = Netlist::new("counter");
    let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
    let one = nl.constant(&Bv::from_u64(4, 1));
    let plus = nl.add(q, one);
    let wrap_value = nl.constant(&Bv::from_u64(4, wrap));
    let at_wrap = nl.eq(q, wrap_value);
    let zero = nl.constant(&Bv::zero(4));
    let next = nl.mux(at_wrap, zero, plus);
    nl.connect_dff_data(ff, next);
    let limit_value = nl.constant(&Bv::from_u64(4, limit));
    let ok = nl.lt(q, limit_value);
    nl.mark_output("ok", ok);
    let property = Property::always(&nl, format!("counter_below_{limit}"), ok);
    Verification::new(nl, property)
}

fn main() {
    let portfolio = Portfolio::with_defaults();

    // Race all three engines on a single passing property: the first
    // definitive verdict wins and the losers are cancelled.
    println!("-- racing one property --");
    let report = portfolio.race(&counter_with_limit(9, 12));
    println!("{report}\n");

    // A failing property: whoever finds the counter-example first wins, and
    // the trace is re-simulated before being trusted.
    println!("-- racing a violated property --");
    let report = portfolio.race(&counter_with_limit(9, 5));
    println!("{report}");
    if let wlac::portfolio::Verdict::Violated { trace } = &report.verdict {
        println!("counter-example:\n{trace}");
    }

    // Batch mode: shard a list of properties across worker threads, with
    // full cross-validation (every engine runs to completion).
    println!("-- batch with cross-validation --");
    let jobs: Vec<Verification> = (3..9).map(|limit| counter_with_limit(9, limit)).collect();
    let batch = Portfolio::new(PortfolioConfig::default().with_cross_validation());
    for report in batch.check_batch(&jobs) {
        println!("{report}");
    }
}
