//! Engine-selection predictor: which strategies to spawn for a design.
//!
//! The static portfolio races every engine on every property, which burns a
//! thread (and memory for a full CNF unrolling) even on jobs one engine
//! always wins. The predictor scores each engine from cheap netlist
//! statistics — gate counts, datapath fraction, sequential depth — and, once
//! a design has racing history, from per-engine win rates. Scheduling is a
//! pure performance decision: any non-empty engine subset containing at
//! least one complete engine yields sound verdicts, so the predictor can
//! never change an answer, only how many threads chase it.
//!
//! With **no history** the predictor always returns the full engine list
//! (racing is the exploration that builds the history in the first place).

use crate::engines::Engine;
use wlac_netlist::{GateKind, Netlist};

/// Cheap structural features of a design, extracted once per registration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistFeatures {
    /// Non-flip-flop gate count.
    pub gates: usize,
    /// Arithmetic gates (adders, subtractors, multipliers, shifters).
    pub arithmetic_gates: usize,
    /// Fraction of gates that are arithmetic units, comparators or muxes —
    /// the word-level "datapath" share the ATPG engine keeps un-blasted.
    pub datapath_fraction: f64,
    /// Total flip-flop bits (state size).
    pub flip_flop_bits: usize,
    /// Longest combinational path in gate levels, a proxy for how much work
    /// one time-frame costs.
    pub combinational_depth: usize,
    /// Widest net in the design; wide buses make bit-blasting expensive.
    pub max_net_width: usize,
}

impl NetlistFeatures {
    /// Extracts the features of a design (one linear pass plus a topological
    /// sort).
    pub fn of(netlist: &Netlist) -> Self {
        let mut gates = 0usize;
        let mut arithmetic_gates = 0usize;
        let mut datapath_gates = 0usize;
        let mut flip_flop_bits = 0usize;
        for (_, gate) in netlist.gates() {
            if gate.kind.is_flip_flop() {
                flip_flop_bits += netlist.net_width(gate.output);
                continue;
            }
            gates += 1;
            if gate.kind.is_arithmetic() {
                arithmetic_gates += 1;
            }
            if gate.kind.is_arithmetic() || gate.kind.is_comparator() || gate.kind == GateKind::Mux
            {
                datapath_gates += 1;
            }
        }
        let max_net_width = netlist
            .nets()
            .map(|n| netlist.net_width(n))
            .max()
            .unwrap_or(1);
        // Longest combinational path (levels), via the cached topo order.
        let combinational_depth = match netlist.combinational_order() {
            Ok(order) => {
                let mut level = vec![0u32; netlist.net_count()];
                let mut deepest = 0u32;
                for gate_id in order {
                    let gate = netlist.gate(gate_id);
                    let depth = gate
                        .inputs
                        .iter()
                        .map(|n| level[n.index()])
                        .max()
                        .unwrap_or(0)
                        + 1;
                    level[gate.output.index()] = depth;
                    deepest = deepest.max(depth);
                }
                deepest as usize
            }
            Err(_) => 0,
        };
        NetlistFeatures {
            gates,
            arithmetic_gates,
            datapath_fraction: if gates > 0 {
                datapath_gates as f64 / gates as f64
            } else {
                0.0
            },
            flip_flop_bits,
            combinational_depth,
            max_net_width,
        }
    }
}

/// Per-design racing history: how often each engine produced the winning
/// verdict, and how often it ran at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineHistory {
    wins: [u64; 3],
    runs: [u64; 3],
}

fn engine_index(engine: Engine) -> usize {
    match engine {
        Engine::Atpg => 0,
        Engine::SatBmc => 1,
        Engine::RandomSim => 2,
    }
}

const ENGINES: [Engine; 3] = Engine::ALL;

impl EngineHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        EngineHistory::default()
    }

    /// Records the outcome of one race: which engines ran, and which (if
    /// any) won it.
    pub fn record(&mut self, ran: &[Engine], winner: Option<Engine>) {
        for engine in ran {
            self.runs[engine_index(*engine)] += 1;
        }
        if let Some(winner) = winner {
            self.wins[engine_index(winner)] += 1;
        }
    }

    /// Races recorded so far (with any definitive winner).
    pub fn total_wins(&self) -> u64 {
        self.wins.iter().sum()
    }

    /// The raw `(wins, runs)` counters in [`Engine::ALL`] order, for
    /// serialization (e.g. an on-disk knowledge snapshot).
    pub fn counts(&self) -> ([u64; 3], [u64; 3]) {
        (self.wins, self.runs)
    }

    /// Rebuilds a history from [`EngineHistory::counts`]. Counters are
    /// scheduling pressure only, so a forged history is at worst a slow
    /// first race, never an unsound verdict.
    pub fn from_counts(wins: [u64; 3], runs: [u64; 3]) -> Self {
        EngineHistory { wins, runs }
    }

    /// Accumulates another history into this one (counts saturate). Used
    /// when a persisted history is folded into a live session's.
    pub fn merge(&mut self, other: &EngineHistory) {
        for i in 0..3 {
            self.wins[i] = self.wins[i].saturating_add(other.wins[i]);
            self.runs[i] = self.runs[i].saturating_add(other.runs[i]);
        }
    }

    /// Wins attributed to `engine`.
    pub fn wins(&self, engine: Engine) -> u64 {
        self.wins[engine_index(engine)]
    }

    /// Runs recorded for `engine`.
    pub fn runs(&self, engine: Engine) -> u64 {
        self.runs[engine_index(engine)]
    }
}

/// Minimum decided races before the predictor trusts a design's history;
/// below this it keeps racing everything.
const MIN_HISTORY: u64 = 4;

/// Every `EXPLORE_EVERY`-th decided race runs the full portfolio even with
/// established history. Without this, an engine trimmed once could never
/// run — and therefore never win — again, making any early mis-read of a
/// design permanent; periodic exploration lets the history recover when a
/// design's later properties favour a different engine.
const EXPLORE_EVERY: u64 = 16;

/// Picks the engines to spawn for one job on a design with the given
/// features and (optional) racing history.
///
/// * **No (or thin) history** → the full portfolio, in the default order:
///   exploration is what builds the history.
/// * **Established history** → every engine with a meaningful win share,
///   ranked by feature-adjusted score; at least one *complete* engine (ATPG
///   or SAT BMC) is always kept so bounded holds stay provable, and the list
///   is never empty.
pub fn predict_engines(features: &NetlistFeatures, history: Option<&EngineHistory>) -> Vec<Engine> {
    let Some(history) = history.filter(|h| h.total_wins() >= MIN_HISTORY) else {
        return ENGINES.to_vec();
    };
    if history.total_wins() % EXPLORE_EVERY == 0 {
        // Scheduled exploration: give trimmed engines a chance to win back.
        return ENGINES.to_vec();
    }
    let total = history.total_wins() as f64;
    let mut scored: Vec<(f64, Engine)> = ENGINES
        .iter()
        .map(|&engine| {
            let win_share = history.wins(engine) as f64 / total;
            // Feature prior: word-level ATPG thrives on datapath-heavy, wide
            // designs; bit-level SAT on control-dominated narrow ones; random
            // simulation pays off on deep sequential state it can overshoot.
            let prior = match engine {
                Engine::Atpg => {
                    0.10 + 0.25 * features.datapath_fraction
                        + if features.max_net_width >= 16 {
                            0.10
                        } else {
                            0.0
                        }
                }
                Engine::SatBmc => {
                    0.10 + 0.25 * (1.0 - features.datapath_fraction)
                        + if features.max_net_width < 16 {
                            0.10
                        } else {
                            0.0
                        }
                }
                Engine::RandomSim => {
                    if features.flip_flop_bits > 32 || features.combinational_depth > 24 {
                        0.10
                    } else {
                        0.05
                    }
                }
            };
            (win_share + prior, engine)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    let best = scored[0].0;
    let mut chosen: Vec<Engine> = scored
        .iter()
        .filter(|(score, _)| *score >= best * 0.5)
        .map(|(_, engine)| *engine)
        .collect();
    if !chosen
        .iter()
        .any(|e| matches!(e, Engine::Atpg | Engine::SatBmc))
    {
        // Keep a complete engine so pass verdicts stay reachable.
        let complete = scored
            .iter()
            .map(|(_, e)| *e)
            .find(|e| matches!(e, Engine::Atpg | Engine::SatBmc))
            .expect("ATPG and SAT BMC are always scored");
        chosen.push(complete);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_bv::Bv;

    fn datapath_heavy() -> Netlist {
        let mut nl = Netlist::new("dp");
        let a = nl.input("a", 24);
        let b = nl.input("b", 24);
        let c = nl.input("c", 24);
        let s1 = nl.add(a, b);
        let s2 = nl.add(s1, c);
        let limit = nl.constant(&Bv::from_u64(24, 1000));
        let over = nl.gt(s2, limit);
        nl.mark_output("over", over);
        nl
    }

    #[test]
    fn features_capture_datapath_share_and_depth() {
        let nl = datapath_heavy();
        let f = NetlistFeatures::of(&nl);
        assert_eq!(f.arithmetic_gates, 2);
        assert!(f.datapath_fraction > 0.5, "{}", f.datapath_fraction);
        assert_eq!(f.max_net_width, 24);
        assert!(f.combinational_depth >= 3);
        assert_eq!(f.flip_flop_bits, 0);
    }

    #[test]
    fn no_history_races_everything() {
        let f = NetlistFeatures::of(&datapath_heavy());
        assert_eq!(predict_engines(&f, None), ENGINES.to_vec());
        // Thin history is not trusted either.
        let mut history = EngineHistory::new();
        history.record(&ENGINES, Some(Engine::Atpg));
        assert_eq!(predict_engines(&f, Some(&history)), ENGINES.to_vec());
    }

    #[test]
    fn dominant_winner_trims_the_portfolio() {
        let f = NetlistFeatures::of(&datapath_heavy());
        let mut history = EngineHistory::new();
        for _ in 0..10 {
            history.record(&ENGINES, Some(Engine::Atpg));
        }
        let chosen = predict_engines(&f, Some(&history));
        assert!(chosen.contains(&Engine::Atpg));
        assert!(chosen.len() < 3, "dominant ATPG should trim: {chosen:?}");
    }

    #[test]
    fn random_sim_dominance_still_keeps_a_complete_engine() {
        let f = NetlistFeatures::of(&datapath_heavy());
        let mut history = EngineHistory::new();
        for _ in 0..10 {
            history.record(&ENGINES, Some(Engine::RandomSim));
        }
        let chosen = predict_engines(&f, Some(&history));
        assert!(chosen.contains(&Engine::RandomSim));
        assert!(
            chosen
                .iter()
                .any(|e| matches!(e, Engine::Atpg | Engine::SatBmc)),
            "{chosen:?}"
        );
    }

    #[test]
    fn periodic_exploration_reraces_the_full_portfolio() {
        let f = NetlistFeatures::of(&datapath_heavy());
        let mut history = EngineHistory::new();
        for _ in 0..EXPLORE_EVERY {
            history.record(&[Engine::Atpg], Some(Engine::Atpg));
        }
        // total_wins is a multiple of EXPLORE_EVERY: everyone races again,
        // so a once-trimmed engine can win its way back into the schedule.
        assert_eq!(predict_engines(&f, Some(&history)), ENGINES.to_vec());
        history.record(&[Engine::Atpg], Some(Engine::Atpg));
        assert!(predict_engines(&f, Some(&history)).len() < 3);
    }

    #[test]
    fn history_counts_round_trip_and_merge() {
        let mut h = EngineHistory::new();
        h.record(&ENGINES, Some(Engine::SatBmc));
        h.record(&[Engine::Atpg], Some(Engine::Atpg));
        let (wins, runs) = h.counts();
        assert_eq!(EngineHistory::from_counts(wins, runs), h);
        let mut merged = EngineHistory::from_counts(wins, runs);
        merged.merge(&h);
        assert_eq!(merged.wins(Engine::Atpg), 2 * h.wins(Engine::Atpg));
        assert_eq!(
            merged.runs(Engine::RandomSim),
            2 * h.runs(Engine::RandomSim)
        );
        assert_eq!(
            Engine::from_code(Engine::SatBmc.code()),
            Some(Engine::SatBmc)
        );
        assert_eq!(Engine::from_code(9), None);
    }

    #[test]
    fn history_bookkeeping() {
        let mut h = EngineHistory::new();
        h.record(&[Engine::Atpg, Engine::SatBmc], Some(Engine::SatBmc));
        h.record(&[Engine::Atpg], None);
        assert_eq!(h.total_wins(), 1);
        assert_eq!(h.wins(Engine::SatBmc), 1);
        assert_eq!(h.runs(Engine::Atpg), 2);
        assert_eq!(h.runs(Engine::RandomSim), 0);
    }
}
