//! Engine adapters: run one strategy on one property and normalise its
//! result into the shared [`Verdict`] vocabulary.
//!
//! Every trace-producing verdict is re-simulated with [`wlac_sim`] (via
//! [`wlac_atpg::Trace::replay_monitor`]) before it is trusted: an engine bug
//! can at worst demote a result to `Unknown`, never smuggle in a bogus
//! counter-example.

use crate::config::PortfolioConfig;
use crate::verdict::Verdict;
use crate::warm::WarmStart;
use std::fmt;
use std::time::{Duration, Instant};
use wlac_atpg::{
    AssertionChecker, CancelToken, CheckResult, CheckStats, PropertyKind, SearchKnowledge, Trace,
    Verification,
};
use wlac_baselines::{
    bounded_model_check_cancellable, bounded_model_check_learning, random_simulation_cancellable,
    BmcOutcome, FrameClause,
};
use wlac_telemetry::{ProgressHandle, RecorderHandle};

/// One verification strategy of the portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Word-level ATPG + modular arithmetic (the paper's engine).
    Atpg,
    /// Bit-level SAT bounded model checking (Tseitin + DPLL).
    SatBmc,
    /// Random-input simulation (only ever finds traces, never proves).
    RandomSim,
}

impl Engine {
    /// Every engine, in the canonical (spawn and serialization) order.
    pub const ALL: [Engine; 3] = [Engine::Atpg, Engine::SatBmc, Engine::RandomSim];

    /// Stable wire/disk code of this engine (the index in [`Engine::ALL`]).
    pub fn code(self) -> u8 {
        match self {
            Engine::Atpg => 0,
            Engine::SatBmc => 1,
            Engine::RandomSim => 2,
        }
    }

    /// Inverse of [`Engine::code`]; `None` for a code no engine owns (a
    /// corrupt or future snapshot).
    pub fn from_code(code: u8) -> Option<Engine> {
        Engine::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Atpg => "atpg",
            Engine::SatBmc => "sat-bmc",
            Engine::RandomSim => "random-sim",
        })
    }
}

/// Engine-specific effort statistics, for attribution in reports.
#[derive(Debug, Clone)]
pub enum EngineStats {
    /// ATPG search counters.
    Atpg(CheckStats),
    /// CNF size, memory and CDCL effort of the BMC run.
    Bmc {
        /// Total CNF variables across all bounds.
        variables: usize,
        /// Total CNF clauses across all bounds.
        clauses: usize,
        /// Peak CNF memory in bytes.
        peak_memory_bytes: usize,
        /// CDCL solver counters (propagations, conflicts, restarts, learned
        /// and deleted clauses) accumulated across all unrolling depths.
        sat: wlac_baselines::SatStats,
    },
    /// Random simulation effort.
    RandomSim {
        /// Runs simulated.
        runs: usize,
        /// Cycles per run.
        cycles_per_run: usize,
    },
}

/// The outcome of one engine on one property.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Which strategy ran.
    pub engine: Engine,
    /// Its normalised, re-simulation-validated conclusion.
    pub verdict: Verdict,
    /// Wall-clock time the engine spent.
    pub elapsed: Duration,
    /// `true` when the run was stopped by the race supervisor before it
    /// reached a definitive verdict.
    pub cancelled: bool,
    /// Effort statistics for attribution.
    pub stats: EngineStats,
}

/// Knowledge an engine learned during one run, for the owner's knowledge
/// base. Empty for cold (unseeded) runs and for the random-simulation engine.
#[derive(Debug, Clone, Default)]
pub struct EngineHarvest {
    /// New design-valid frame-relative clauses from the BMC engine's CDCL.
    pub clauses: Vec<FrameClause>,
    /// The ATPG engine's post-run search knowledge (seed plus new learning).
    pub knowledge: Option<SearchKnowledge>,
}

/// Runs `engine` on `verification`, polling `cancel` cooperatively.
pub fn run_engine(
    engine: Engine,
    verification: &Verification,
    config: &PortfolioConfig,
    cancel: &CancelToken,
) -> EngineRun {
    run_engine_seeded(engine, verification, config, cancel, None).0
}

/// Like [`run_engine`], but warm-started: `warm` seeds the SAT BMC engine
/// with replayed design-valid clauses and the ATPG engine with conflict
/// cubes and datapath facts, and the run's own learning comes back in the
/// [`EngineHarvest`]. Passing `Some(&WarmStart::new())` runs cold but still
/// harvests.
pub fn run_engine_seeded(
    engine: Engine,
    verification: &Verification,
    config: &PortfolioConfig,
    cancel: &CancelToken,
    warm: Option<&WarmStart>,
) -> (EngineRun, EngineHarvest) {
    run_engine_observed(
        engine,
        verification,
        config,
        cancel,
        warm,
        &RecorderHandle::disabled(),
    )
}

/// Like [`run_engine_seeded`], but threads a flight-recorder handle into the
/// ATPG engine's checker options so core search events (entry/exit, bound
/// advances) carry the owning job's id. The other engines don't run the core
/// search; their lifecycle is visible through the race-level events the
/// portfolio supervisor emits.
pub fn run_engine_observed(
    engine: Engine,
    verification: &Verification,
    config: &PortfolioConfig,
    cancel: &CancelToken,
    warm: Option<&WarmStart>,
    recorder: &RecorderHandle,
) -> (EngineRun, EngineHarvest) {
    run_engine_probed(
        engine,
        verification,
        config,
        cancel,
        warm,
        recorder,
        &ProgressHandle::disabled(),
    )
}

/// Like [`run_engine_observed`], but also threads a live-progress handle
/// into the ATPG engine's checker options, so its core search publishes
/// bound advances and effort counters into the race's progress cell while
/// still running. The SAT and simulation engines keep no incremental
/// counters; their final statistics reach the progress surface through the
/// race supervisor instead (see `RaceProgress::record_final`).
#[allow(clippy::too_many_arguments)]
pub fn run_engine_probed(
    engine: Engine,
    verification: &Verification,
    config: &PortfolioConfig,
    cancel: &CancelToken,
    warm: Option<&WarmStart>,
    recorder: &RecorderHandle,
    progress: &ProgressHandle,
) -> (EngineRun, EngineHarvest) {
    let start = Instant::now();
    let (verdict, stats, harvest) = match engine {
        Engine::Atpg => run_atpg(verification, config, cancel, warm, recorder, progress),
        Engine::SatBmc => run_bmc(verification, config, cancel, warm),
        Engine::RandomSim => run_random(verification, config, cancel),
    };
    let verdict = validate_trace(verdict, verification);
    (
        EngineRun {
            engine,
            cancelled: cancel.is_cancelled() && !verdict.is_definitive(),
            verdict,
            elapsed: start.elapsed(),
            stats,
        },
        harvest,
    )
}

fn run_atpg(
    verification: &Verification,
    config: &PortfolioConfig,
    cancel: &CancelToken,
    warm: Option<&WarmStart>,
    recorder: &RecorderHandle,
    progress: &ProgressHandle,
) -> (Verdict, EngineStats, EngineHarvest) {
    let options = config
        .checker
        .clone()
        .with_cancel(cancel.clone())
        .with_recorder(recorder.clone())
        .with_progress(progress.clone());
    let mut harvest = EngineHarvest::default();
    let report = match warm {
        Some(warm) => {
            let mut knowledge = warm.knowledge.clone();
            let report = AssertionChecker::new(options).check_learned(verification, &mut knowledge);
            harvest.knowledge = Some(knowledge);
            report
        }
        None => AssertionChecker::new(options).check(verification),
    };
    let verdict = match report.result {
        CheckResult::Proved => Verdict::Holds {
            proved: true,
            frames: report.stats.frames_explored.max(1),
        },
        CheckResult::HoldsUpToBound { frames } => Verdict::Holds {
            proved: false,
            frames,
        },
        CheckResult::CounterExample { trace } => Verdict::Violated { trace },
        CheckResult::WitnessFound { trace } => Verdict::WitnessFound { trace },
        CheckResult::WitnessNotFound { frames } => Verdict::WitnessAbsent { frames },
        CheckResult::Unknown { reason } => Verdict::Unknown { reason },
    };
    // A proof covers every frame, not just the explored ones; keep the
    // explored count for reporting but treat the bound as unlimited when
    // comparing. (`conflicts_with` already special-cases `proved`.)
    (verdict, EngineStats::Atpg(report.stats), harvest)
}

fn run_bmc(
    verification: &Verification,
    config: &PortfolioConfig,
    cancel: &CancelToken,
    warm: Option<&WarmStart>,
) -> (Verdict, EngineStats, EngineHarvest) {
    let max_frames = config.checker.max_frames;
    let mut harvest = EngineHarvest::default();
    let report = match warm {
        Some(warm) => {
            let (report, clauses) = bounded_model_check_learning(
                verification,
                max_frames,
                config.bmc_decision_budget,
                cancel,
                &warm.clauses,
            );
            harvest.clauses = clauses;
            report
        }
        None => bounded_model_check_cancellable(
            verification,
            max_frames,
            config.bmc_decision_budget,
            cancel,
        ),
    };
    let kind = verification.property.kind;
    let verdict = match (report.outcome, report.trace) {
        (BmcOutcome::Found { .. }, Some(trace)) => match kind {
            PropertyKind::Always => Verdict::Violated { trace },
            PropertyKind::Eventually => Verdict::WitnessFound { trace },
        },
        (BmcOutcome::Found { depth }, None) => Verdict::Unknown {
            reason: format!("BMC model at depth {depth} carried no trace"),
        },
        (BmcOutcome::HoldsUpToBound, _) => match kind {
            PropertyKind::Always => Verdict::Holds {
                proved: false,
                frames: max_frames,
            },
            PropertyKind::Eventually => Verdict::WitnessAbsent { frames: max_frames },
        },
        (BmcOutcome::Unknown, _) => Verdict::Unknown {
            reason: if cancel.is_cancelled() {
                "cancelled".into()
            } else {
                "SAT budget exhausted or unsupported gate".into()
            },
        },
    };
    (
        verdict,
        EngineStats::Bmc {
            variables: report.variables,
            clauses: report.clauses,
            peak_memory_bytes: report.peak_memory_bytes,
            sat: report.sat,
        },
        harvest,
    )
}

fn run_random(
    verification: &Verification,
    config: &PortfolioConfig,
    cancel: &CancelToken,
) -> (Verdict, EngineStats, EngineHarvest) {
    let report = random_simulation_cancellable(
        verification,
        config.random_runs,
        config.random_cycles,
        config.random_seed,
        cancel,
    );
    let verdict = match (report.target_hit, report.trace) {
        (true, Some(trace)) => match verification.property.kind {
            PropertyKind::Always => Verdict::Violated { trace },
            PropertyKind::Eventually => Verdict::WitnessFound { trace },
        },
        _ => Verdict::Unknown {
            reason: if cancel.is_cancelled() {
                "cancelled".into()
            } else {
                format!(
                    "no hit in {} runs x {} cycles",
                    report.runs, report.cycles_per_run
                )
            },
        },
    };
    (
        verdict,
        EngineStats::RandomSim {
            runs: report.runs,
            cycles_per_run: report.cycles_per_run,
        },
        EngineHarvest::default(),
    )
}

/// Re-simulates any trace-backed verdict on the original design; a trace that
/// does not reproduce the claimed behaviour — or that violates an environment
/// constraint in any cycle — demotes the verdict to `Unknown`.
fn validate_trace(verdict: Verdict, verification: &Verification) -> Verdict {
    let expected_last = match &verdict {
        Verdict::Violated { .. } => false,
        Verdict::WitnessFound { .. } => true,
        _ => return verdict,
    };
    let trace = verdict.trace().expect("trace-backed verdict");
    match replay(trace, verification) {
        Ok((last, env_ok)) if last == expected_last && env_ok => verdict,
        Ok((_, false)) => Verdict::Unknown {
            reason: "trace violates an environment constraint".into(),
        },
        Ok(_) => Verdict::Unknown {
            reason: "trace failed re-simulation cross-check".into(),
        },
        Err(e) => Verdict::Unknown {
            reason: format!("trace replay error: {e}"),
        },
    }
}

/// Replays the trace; returns the final monitor value and whether every
/// environment constraint held in every cycle.
fn replay(
    trace: &Trace,
    verification: &Verification,
) -> Result<(bool, bool), wlac_sim::SimulateError> {
    let values = trace.replay_monitor(&verification.netlist, verification.property.monitor)?;
    let last = *values.last().unwrap_or(&true);
    let mut env_ok = true;
    for env in &verification.environment {
        let held = trace.replay_monitor(&verification.netlist, *env)?;
        env_ok &= held.iter().all(|v| *v);
    }
    Ok((last, env_ok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PortfolioConfig;
    use wlac_atpg::Property;
    use wlac_bv::Bv;
    use wlac_netlist::Netlist;

    /// A counter wrapping at `wrap`, asserted to stay below `limit`.
    fn counter(limit: u64, wrap: u64) -> Verification {
        let mut nl = Netlist::new("counter");
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let plus = nl.add(q, one);
        let wrap_net = nl.constant(&Bv::from_u64(4, wrap));
        let at_wrap = nl.eq(q, wrap_net);
        let zero = nl.constant(&Bv::zero(4));
        let next = nl.mux(at_wrap, zero, plus);
        nl.connect_dff_data(ff, next);
        let limit_net = nl.constant(&Bv::from_u64(4, limit));
        let ok = nl.lt(q, limit_net);
        nl.mark_output("ok", ok);
        let property = Property::always(&nl, format!("below_{limit}"), ok);
        Verification::new(nl, property)
    }

    #[test]
    fn all_three_engines_find_the_same_violation() {
        let verification = counter(5, 12);
        let config = PortfolioConfig::default();
        let cancel = CancelToken::new();
        for engine in [Engine::Atpg, Engine::SatBmc] {
            let run = run_engine(engine, &verification, &config, &cancel);
            match &run.verdict {
                Verdict::Violated { trace } => {
                    assert!(trace.len() >= 5, "{engine}: needs 5 cycles to reach 5");
                }
                other => panic!("{engine}: expected violation, got {other:?}"),
            }
            assert!(!run.cancelled);
        }
    }

    #[test]
    fn engines_agree_on_a_passing_property() {
        let verification = counter(12, 5);
        let config = PortfolioConfig::default();
        let cancel = CancelToken::new();
        let atpg = run_engine(Engine::Atpg, &verification, &config, &cancel);
        let bmc = run_engine(Engine::SatBmc, &verification, &config, &cancel);
        assert!(atpg.verdict.is_pass(), "{:?}", atpg.verdict);
        assert!(bmc.verdict.is_pass(), "{:?}", bmc.verdict);
        assert!(!atpg.verdict.conflicts_with(&bmc.verdict));
        // Attribution carries engine-specific stats.
        assert!(matches!(atpg.stats, EngineStats::Atpg(_)));
        assert!(matches!(bmc.stats, EngineStats::Bmc { clauses, .. } if clauses > 0));
    }

    #[test]
    fn cancelled_engine_reports_unknown() {
        let verification = counter(5, 12);
        let config = PortfolioConfig::default();
        let cancel = CancelToken::new();
        cancel.cancel();
        for engine in [Engine::Atpg, Engine::SatBmc, Engine::RandomSim] {
            let run = run_engine(engine, &verification, &config, &cancel);
            assert!(!run.verdict.is_definitive(), "{engine}: {:?}", run.verdict);
            assert!(run.cancelled, "{engine} should report cancellation");
        }
    }

    #[test]
    fn env_violating_random_hits_are_rejected() {
        // q' = i with env constraint i == 0: the assertion q == 0 holds under
        // the environment. Unconstrained random inputs drive i = 1 (breaking
        // the env), pollute q, and would "observe" a violation one cycle
        // later — that pseudo-hit must not survive as a Violated verdict.
        let mut nl = Netlist::new("env");
        let i = nl.input("i", 1);
        let (q, ff) = nl.dff_deferred(1, Some(Bv::zero(1)));
        nl.connect_dff_data(ff, i);
        let zero = nl.constant(&Bv::zero(1));
        let ok = nl.eq(q, zero);
        let env = nl.eq(i, zero);
        nl.mark_output("ok", ok);
        let property = Property::always(&nl, "q_zero", ok);
        let verification = Verification::new(nl, property).with_environment(env);

        let config = PortfolioConfig::default();
        let cancel = CancelToken::new();
        let random = run_engine(Engine::RandomSim, &verification, &config, &cancel);
        assert!(
            !matches!(random.verdict, Verdict::Violated { .. }),
            "env-violating trace must not count: {:?}",
            random.verdict
        );
        // The deterministic engines agree the assertion holds under the env.
        let atpg = run_engine(Engine::Atpg, &verification, &config, &cancel);
        assert!(atpg.verdict.is_pass(), "{:?}", atpg.verdict);
        assert!(!atpg.verdict.conflicts_with(&random.verdict));
    }

    #[test]
    fn bmc_trace_survives_validation() {
        // The BMC counter-example is decoded from a SAT model and must replay
        // to a real monitor violation — `run_engine` would demote it
        // otherwise.
        let verification = counter(3, 12);
        let run = run_engine(
            Engine::SatBmc,
            &verification,
            &PortfolioConfig::default(),
            &CancelToken::new(),
        );
        let Verdict::Violated { trace } = &run.verdict else {
            panic!("expected violation, got {:?}", run.verdict);
        };
        let replay = trace
            .replay_monitor(&verification.netlist, verification.property.monitor)
            .expect("replay");
        assert_eq!(replay.last(), Some(&false));
    }
}
