//! Live progress of one engine race.
//!
//! A [`RaceProgress`] holds one [`ProgressCell`] per engine. The ATPG
//! engine's core search publishes into its cell continuously (bound
//! advances, periodic effort probes); the SAT and simulation engines have no
//! incremental counters to stream, so the race supervisor stores their final
//! statistics into their cells the moment they answer. Observers — the
//! verification service's progress accessors, and through them the server's
//! `progress` and `subscribe` ops — snapshot any cell at any time without
//! locks or allocations and without perturbing the race.

use crate::engines::{Engine, EngineRun, EngineStats};
use crate::verdict::Verdict;
use std::sync::Arc;
use wlac_telemetry::{ProgressCell, ProgressHandle, ProgressProbe};

/// One progress cell per engine of a single race (see module docs).
#[derive(Debug, Clone, Default)]
pub struct RaceProgress {
    cells: [Arc<ProgressCell>; 3],
}

impl RaceProgress {
    /// Creates empty cells for all engines.
    pub fn new() -> Self {
        RaceProgress::default()
    }

    /// The publication handle for `engine`'s cell.
    pub fn handle(&self, engine: Engine) -> ProgressHandle {
        ProgressHandle::to(self.cells[engine.code() as usize].clone())
    }

    /// A consistent snapshot of `engine`'s cell.
    pub fn engine_probe(&self, engine: Engine) -> ProgressProbe {
        self.cells[engine.code() as usize].snapshot()
    }

    /// The per-job aggregate: counters summed across every engine that has
    /// published, the bound the deepest any engine reached. Zero while no
    /// engine has published yet.
    pub fn aggregate(&self) -> ProgressProbe {
        let mut total = ProgressProbe::default();
        for cell in &self.cells {
            if cell.has_published() {
                total.absorb(&cell.snapshot());
            }
        }
        total
    }

    /// The engine that has pushed the search deepest so far: the published
    /// cell with the highest (bound, decisions). `None` until some engine
    /// publishes.
    pub fn leading_engine(&self) -> Option<Engine> {
        Engine::ALL
            .iter()
            .filter(|e| self.cells[e.code() as usize].has_published())
            .map(|&e| {
                let probe = self.engine_probe(e);
                (e, probe.bound, probe.decisions)
            })
            .max_by_key(|&(_, bound, decisions)| (bound, decisions))
            .map(|(e, _, _)| e)
    }

    /// Stores an engine's final statistics into its cell after it answered.
    ///
    /// For ATPG this overwrites the live stream with the closing counters
    /// (the cumulative `CheckStats`, always >= anything published in
    /// flight). For the engines without live publication it is their only
    /// probe: SAT counters map directly (CDCL backjumps count as
    /// backtracks, propagations as implications); random simulation maps
    /// each run to a restart and each simulated cycle to an implication.
    /// The bound comes from the verdict's frame depth when it has one,
    /// falling back to whatever the live stream last reported.
    pub(crate) fn record_final(&self, run: &EngineRun) {
        let cell = &self.cells[run.engine.code() as usize];
        let bound = match &run.verdict {
            Verdict::Holds { frames, .. } | Verdict::WitnessAbsent { frames } => *frames as u64,
            Verdict::Violated { trace } | Verdict::WitnessFound { trace } => trace.len() as u64,
            Verdict::Unknown { .. } | Verdict::Timeout { .. } => cell.snapshot().bound,
        };
        let probe = match &run.stats {
            EngineStats::Atpg(stats) => ProgressProbe {
                bound,
                decisions: stats.decisions,
                conflicts: stats.conflicts,
                backtracks: stats.backtracks,
                restarts: stats.frames_explored as u64,
                implications: stats.implication.gate_evaluations,
                phase_nanos: stats.phases.total(),
                probes: 0,
            },
            EngineStats::Bmc { sat, .. } => ProgressProbe {
                bound,
                decisions: sat.decisions,
                conflicts: sat.conflicts,
                backtracks: sat.conflicts,
                restarts: sat.restarts,
                implications: sat.propagations,
                phase_nanos: 0,
                probes: 0,
            },
            EngineStats::RandomSim {
                runs,
                cycles_per_run,
            } => ProgressProbe {
                bound,
                decisions: 0,
                conflicts: 0,
                backtracks: 0,
                restarts: *runs as u64,
                implications: (*runs as u64) * (*cycles_per_run as u64),
                phase_nanos: 0,
                probes: 0,
            },
        };
        cell.store(&probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wlac_atpg::CheckStats;

    #[test]
    fn empty_race_has_no_leader_and_a_zero_aggregate() {
        let progress = RaceProgress::new();
        assert_eq!(progress.leading_engine(), None);
        assert_eq!(progress.aggregate(), ProgressProbe::default());
    }

    #[test]
    fn live_publication_flows_into_the_aggregate() {
        let progress = RaceProgress::new();
        let atpg = progress.handle(Engine::Atpg);
        atpg.advance_bound(3);
        atpg.publish(40, 2, 5, 900, 0);
        assert_eq!(progress.leading_engine(), Some(Engine::Atpg));
        let total = progress.aggregate();
        assert_eq!(total.bound, 3);
        assert_eq!(total.decisions, 40);
        assert_eq!(
            progress.engine_probe(Engine::SatBmc),
            ProgressProbe::default()
        );
    }

    #[test]
    fn final_stats_of_every_engine_kind_land_in_their_cells() {
        let progress = RaceProgress::new();
        let mut check = CheckStats {
            decisions: 10,
            conflicts: 3,
            backtracks: 4,
            frames_explored: 5,
            ..CheckStats::default()
        };
        check.implication.gate_evaluations = 200;
        progress.record_final(&EngineRun {
            engine: Engine::Atpg,
            verdict: Verdict::Holds {
                proved: false,
                frames: 5,
            },
            elapsed: Duration::from_millis(1),
            cancelled: false,
            stats: EngineStats::Atpg(check),
        });
        progress.record_final(&EngineRun {
            engine: Engine::SatBmc,
            verdict: Verdict::Unknown {
                reason: "cancelled".into(),
            },
            elapsed: Duration::from_millis(1),
            cancelled: true,
            stats: EngineStats::Bmc {
                variables: 100,
                clauses: 300,
                peak_memory_bytes: 1 << 16,
                sat: wlac_baselines::SatStats {
                    decisions: 7,
                    conflicts: 2,
                    propagations: 90,
                    restarts: 1,
                    learned_clauses: 2,
                    deleted_clauses: 0,
                },
            },
        });
        progress.record_final(&EngineRun {
            engine: Engine::RandomSim,
            verdict: Verdict::Unknown {
                reason: "no hit".into(),
            },
            elapsed: Duration::from_millis(1),
            cancelled: false,
            stats: EngineStats::RandomSim {
                runs: 8,
                cycles_per_run: 64,
            },
        });

        let atpg = progress.engine_probe(Engine::Atpg);
        assert_eq!(atpg.bound, 5);
        assert_eq!(atpg.decisions, 10);
        assert_eq!(atpg.restarts, 5);
        let bmc = progress.engine_probe(Engine::SatBmc);
        assert_eq!(bmc.decisions, 7);
        assert_eq!(bmc.implications, 90);
        let random = progress.engine_probe(Engine::RandomSim);
        assert_eq!(random.restarts, 8);
        assert_eq!(random.implications, 512);
        // ATPG leads: deepest bound.
        assert_eq!(progress.leading_engine(), Some(Engine::Atpg));
        let total = progress.aggregate();
        assert_eq!(total.decisions, 17);
        assert_eq!(total.bound, 5);
        assert_eq!(total.probes, 3);
    }

    #[test]
    fn trace_backed_verdict_sets_the_bound_from_the_trace() {
        let progress = RaceProgress::new();
        let trace = wlac_atpg::Trace {
            initial_state: Vec::new(),
            inputs: vec![Vec::new(); 6],
        };
        progress.record_final(&EngineRun {
            engine: Engine::RandomSim,
            verdict: Verdict::Violated { trace },
            elapsed: Duration::from_millis(1),
            cancelled: false,
            stats: EngineStats::RandomSim {
                runs: 1,
                cycles_per_run: 64,
            },
        });
        assert_eq!(progress.engine_probe(Engine::RandomSim).bound, 6);
    }
}
