//! The engine-independent verdict vocabulary.
//!
//! Every strategy in the portfolio — word-level ATPG, bit-level SAT BMC,
//! random simulation — reports its conclusion as a [`Verdict`], so results
//! can be raced, compared and cross-validated without knowing which engine
//! produced them.

use std::time::Duration;
use wlac_atpg::Trace;

/// The conclusion of one engine about one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The assertion holds: outright (`proved`) or within `frames`
    /// time-frames of bounded search.
    Holds {
        /// `true` for a full (inductive) proof, `false` for a bounded result.
        proved: bool,
        /// Number of time-frames covered by the result.
        frames: usize,
    },
    /// The assertion fails; a concrete counter-example is attached.
    Violated {
        /// The failing execution (validated by re-simulation).
        trace: Trace,
    },
    /// A witness satisfying the `Eventually` objective was found.
    WitnessFound {
        /// The satisfying execution (validated by re-simulation).
        trace: Trace,
    },
    /// No witness exists within `frames` time-frames.
    WitnessAbsent {
        /// Number of time-frames exhaustively explored.
        frames: usize,
    },
    /// The engine reached no conclusion (limit, cancellation, unsupported
    /// construct, failed trace validation, ...).
    Unknown {
        /// Human-readable reason.
        reason: String,
    },
    /// The job exceeded its wall-clock budget ([`job_budget`]) before any
    /// engine answered: a structured, non-definitive outcome that frees the
    /// worker instead of occupying it forever. Like [`Verdict::Unknown`] it
    /// is never cached or persisted — a future run with more budget could
    /// still decide the property.
    ///
    /// [`job_budget`]: crate::PortfolioConfig::job_budget
    Timeout {
        /// The budget that was exhausted.
        budget: Duration,
    },
}

impl Verdict {
    /// `true` when the verdict settles the property (anything but
    /// [`Verdict::Unknown`] / [`Verdict::Timeout`]). The first definitive
    /// verdict wins a race.
    pub fn is_definitive(&self) -> bool {
        !matches!(self, Verdict::Unknown { .. } | Verdict::Timeout { .. })
    }

    /// `true` for the "assertion passes" outcomes (proved, bounded hold, or
    /// witness exhaustively absent).
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Holds { .. } | Verdict::WitnessAbsent { .. })
    }

    /// The attached concrete execution, when one exists.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            Verdict::Violated { trace } | Verdict::WitnessFound { trace } => Some(trace),
            _ => None,
        }
    }

    /// `true` when two verdicts about the *same* property contradict each
    /// other.
    ///
    /// Bounded semantics are respected: a trace of length `n` only
    /// contradicts a bounded hold that claims to cover at least `n` frames,
    /// and always contradicts a full proof. `Unknown` contradicts nothing.
    pub fn conflicts_with(&self, other: &Verdict) -> bool {
        use Verdict::*;
        match (self, other) {
            (Holds { proved, frames }, Violated { trace })
            | (Violated { trace }, Holds { proved, frames }) => *proved || trace.len() <= *frames,
            (WitnessAbsent { frames }, WitnessFound { trace })
            | (WitnessFound { trace }, WitnessAbsent { frames }) => trace.len() <= *frames,
            _ => false,
        }
    }

    /// Informativeness rank used to combine verdicts in cross-validation
    /// mode: a validated concrete trace beats a full proof (it can reach
    /// beyond the bounded engines' horizon, as a deep random-simulation hit
    /// does), a proof beats a bounded hold, anything beats `Unknown`.
    pub(crate) fn rank(&self) -> u8 {
        match self {
            Verdict::Violated { .. } | Verdict::WitnessFound { .. } => 3,
            Verdict::Holds { proved: true, .. } => 2,
            Verdict::Holds { proved: false, .. } | Verdict::WitnessAbsent { .. } => 1,
            Verdict::Unknown { .. } | Verdict::Timeout { .. } => 0,
        }
    }

    /// Compact label used in reports (`holds`, `proved`, `violated`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Holds { proved: true, .. } => "proved",
            Verdict::Holds { proved: false, .. } => "holds(bound)",
            Verdict::Violated { .. } => "violated",
            Verdict::WitnessFound { .. } => "witness",
            Verdict::WitnessAbsent { .. } => "no witness",
            Verdict::Unknown { .. } => "unknown",
            Verdict::Timeout { .. } => "timeout",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(cycles: usize) -> Trace {
        Trace {
            initial_state: Vec::new(),
            inputs: vec![Vec::new(); cycles],
        }
    }

    #[test]
    fn definitive_and_pass_classification() {
        assert!(Verdict::Holds {
            proved: true,
            frames: 1
        }
        .is_definitive());
        assert!(Verdict::Holds {
            proved: false,
            frames: 4
        }
        .is_pass());
        assert!(Verdict::WitnessAbsent { frames: 4 }.is_pass());
        assert!(!Verdict::Violated { trace: trace(2) }.is_pass());
        let unknown = Verdict::Unknown {
            reason: "cancelled".into(),
        };
        assert!(!unknown.is_definitive());
        assert!(unknown.trace().is_none());
    }

    #[test]
    fn conflicts_respect_bounds() {
        let holds4 = Verdict::Holds {
            proved: false,
            frames: 4,
        };
        let proved = Verdict::Holds {
            proved: true,
            frames: 1,
        };
        let violated3 = Verdict::Violated { trace: trace(3) };
        let violated9 = Verdict::Violated { trace: trace(9) };
        // A 3-cycle counter-example contradicts a 4-frame hold...
        assert!(holds4.conflicts_with(&violated3));
        assert!(violated3.conflicts_with(&holds4));
        // ...but a 9-cycle one lies beyond the bound.
        assert!(!holds4.conflicts_with(&violated9));
        // A proof is contradicted by any counter-example.
        assert!(proved.conflicts_with(&violated9));
        // Unknown contradicts nothing.
        let unknown = Verdict::Unknown {
            reason: "limit".into(),
        };
        assert!(!unknown.conflicts_with(&violated3));
        assert!(!holds4.conflicts_with(&unknown));
    }

    #[test]
    fn timeout_is_structured_but_not_definitive() {
        let timeout = Verdict::Timeout {
            budget: std::time::Duration::from_secs(5),
        };
        assert!(!timeout.is_definitive(), "a timeout must never win a race");
        assert!(!timeout.is_pass());
        assert!(timeout.trace().is_none());
        assert_eq!(timeout.label(), "timeout");
        // A timeout contradicts nothing, in either direction.
        let violated = Verdict::Violated { trace: trace(3) };
        assert!(!timeout.conflicts_with(&violated));
        assert!(!violated.conflicts_with(&timeout));
    }

    #[test]
    fn witness_conflicts() {
        let absent4 = Verdict::WitnessAbsent { frames: 4 };
        let found2 = Verdict::WitnessFound { trace: trace(2) };
        let found8 = Verdict::WitnessFound { trace: trace(8) };
        assert!(absent4.conflicts_with(&found2));
        assert!(!absent4.conflicts_with(&found8));
        assert_eq!(found2.label(), "witness");
        assert_eq!(absent4.label(), "no witness");
    }
}
