//! Portfolio configuration.

use crate::engines::Engine;
use std::num::NonZeroUsize;
use std::time::Duration;
use wlac_atpg::CheckerOptions;

/// Configuration of a [`crate::Portfolio`].
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// The strategies to run, in spawn order. Defaults to all three.
    pub engines: Vec<Engine>,
    /// ATPG checker options; `max_frames` also bounds the BMC unrolling so
    /// bounded verdicts from both engines talk about the same depth.
    pub checker: CheckerOptions,
    /// DPLL decision budget per BMC bound.
    pub bmc_decision_budget: u64,
    /// Random-simulation runs per property.
    pub random_runs: usize,
    /// Cycles per random-simulation run.
    pub random_cycles: usize,
    /// Seed of the random-simulation engine (reports are reproducible).
    pub random_seed: u64,
    /// Worker threads used by [`crate::Portfolio::check_batch`].
    pub workers: usize,
    /// When `true`, batch checks run every engine to completion and
    /// cross-validate all verdicts instead of racing to the first one.
    pub cross_validate: bool,
    /// Hard wall-clock budget per job. When set, the race token carries a
    /// deadline: every engine reads as cancelled once it passes, and a race
    /// no engine decided in time reports [`crate::Verdict::Timeout`] instead
    /// of occupying its worker indefinitely. `None` (the default) preserves
    /// the unbounded behaviour.
    pub job_budget: Option<Duration>,
}

impl PortfolioConfig {
    /// Defaults: all three engines, 8 frames, 30 s per property per engine,
    /// and one batch worker per available CPU.
    pub fn new() -> Self {
        let checker = CheckerOptions {
            max_frames: 8,
            time_limit: Duration::from_secs(30),
            ..CheckerOptions::default()
        };
        PortfolioConfig {
            engines: vec![Engine::Atpg, Engine::SatBmc, Engine::RandomSim],
            checker,
            bmc_decision_budget: 500_000,
            random_runs: 16,
            random_cycles: 64,
            random_seed: 0xDAC2000,
            workers: std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(4),
            cross_validate: false,
            job_budget: None,
        }
    }

    /// Replaces the engine list.
    pub fn with_engines(mut self, engines: Vec<Engine>) -> Self {
        self.engines = engines;
        self
    }

    /// Enables cross-validation mode (run everything, compare all verdicts).
    pub fn with_cross_validation(mut self) -> Self {
        self.cross_validate = true;
        self
    }

    /// Sets the hard per-job wall-clock budget.
    pub fn with_job_budget(mut self, budget: Duration) -> Self {
        self.job_budget = Some(budget);
        self
    }
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_run_all_engines() {
        let config = PortfolioConfig::default();
        assert_eq!(config.engines.len(), 3);
        assert!(config.workers >= 1);
        assert!(!config.cross_validate);
        assert!(config.with_cross_validation().cross_validate);
    }
}
