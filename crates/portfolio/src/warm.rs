//! Warm-start seeds and learning harvests for portfolio runs.
//!
//! A [`WarmStart`] carries everything a knowledge base knows about a design
//! into one race: frame-relative CDCL clauses for the SAT BMC engine, the
//! ATPG search knowledge (ESTG conflict cubes + datapath infeasibility
//! facts), and an optional engine-selection override from the scheduling
//! predictor. A [`Harvest`] carries everything the race learned back out.
//!
//! Seeds are performance hints with a hard soundness contract: they must have
//! been gathered on a **structurally identical** netlist. The owner of the
//! knowledge base enforces that by keying stores on a design hash; the
//! engines additionally skip malformed clauses rather than trust them.

use crate::engines::Engine;
use wlac_atpg::SearchKnowledge;
use wlac_baselines::FrameClause;

/// Knowledge seeded into one portfolio run.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Design-valid frame-relative clauses replayed into every BMC unrolling.
    pub clauses: Vec<FrameClause>,
    /// ATPG search knowledge (conflict cubes, datapath infeasibility facts).
    pub knowledge: SearchKnowledge,
    /// Engines to spawn instead of the configured list (predictor output);
    /// `None` keeps the configured portfolio.
    pub engines: Option<Vec<Engine>>,
}

impl WarmStart {
    /// An empty warm start: no seeds, full configured portfolio — behaves
    /// like a cold run except that the engines still *harvest* learning.
    pub fn new() -> Self {
        WarmStart::default()
    }
}

/// Knowledge harvested from one portfolio run.
#[derive(Debug, Clone, Default)]
pub struct Harvest {
    /// New design-valid clauses lifted out of the BMC engine's CDCL runs.
    pub clauses: Vec<FrameClause>,
    /// The ATPG engine's post-run knowledge (seed plus everything new), when
    /// the ATPG engine ran.
    pub knowledge: Option<SearchKnowledge>,
    /// The engine that produced the winning verdict, for the scheduling
    /// history.
    pub winner: Option<Engine>,
    /// The engines that actually ran.
    pub ran: Vec<Engine>,
}
