//! # wlac-portfolio — concurrent multi-strategy verification
//!
//! The paper's core observation is that word-level ATPG + modular arithmetic
//! and bit-blasted SAT shine on *different* workload shapes. This crate turns
//! that observation into an engine: a [`Portfolio`] races the ATPG checker
//! ([`wlac_atpg::AssertionChecker`]), SAT bounded model checking
//! ([`wlac_baselines::bounded_model_check`]) and random simulation on each
//! property, takes the first definitive answer, and cooperatively cancels the
//! losers through [`wlac_atpg::CancelToken`].
//!
//! Beyond single-property racing, [`Portfolio::check_batch`] shards a whole
//! suite of properties across a worker-thread pool, and every trace-backed
//! verdict is re-simulated against the design before it is trusted —
//! disagreements between engines are detected and flagged rather than
//! silently resolved.
//!
//! # Examples
//!
//! ```
//! use wlac_portfolio::{Portfolio, Verdict};
//! use wlac_atpg::{Property, Verification};
//! use wlac_bv::Bv;
//! use wlac_netlist::Netlist;
//!
//! // An 8-bit register that saturates at 10 must stay below 11.
//! let mut nl = Netlist::new("sat_counter");
//! let (q, ff) = nl.dff_deferred(8, Some(Bv::zero(8)));
//! let one = nl.constant(&Bv::from_u64(8, 1));
//! let plus = nl.add(q, one);
//! let ten = nl.constant(&Bv::from_u64(8, 10));
//! let at_ten = nl.eq(q, ten);
//! let next = nl.mux(at_ten, ten, plus);
//! nl.connect_dff_data(ff, next);
//! let eleven = nl.constant(&Bv::from_u64(8, 11));
//! let ok = nl.lt(q, eleven);
//!
//! let property = Property::always(&nl, "below_11", ok);
//! let report = Portfolio::with_defaults().race(&Verification::new(nl, property));
//! assert!(report.verdict.is_pass());
//! assert!(report.winner.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engines;
mod predictor;
mod progress;
mod verdict;
mod warm;

pub use config::PortfolioConfig;
pub use engines::{
    run_engine, run_engine_observed, run_engine_probed, run_engine_seeded, Engine, EngineHarvest,
    EngineRun, EngineStats,
};
pub use predictor::{predict_engines, EngineHistory, NetlistFeatures};
pub use progress::RaceProgress;
pub use verdict::Verdict;
pub use warm::{Harvest, WarmStart};

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use wlac_atpg::{CancelToken, Verification};
use wlac_telemetry::{MetricsRegistry, RecorderHandle, RecorderKind, RecorderLayer};

/// What happened at one point of an engine race, for the
/// [`PortfolioReport::timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceEventKind {
    /// An engine thread was dispatched.
    Spawned,
    /// An engine delivered its verdict to the supervisor.
    Answered {
        /// `true` when the verdict was definitive (could decide the race).
        definitive: bool,
    },
    /// The supervisor told the remaining engines to stop.
    CancelIssued,
}

/// One entry of the race timeline: *when* (relative to dispatch) *which*
/// engine did *what*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceEvent {
    /// Offset from race dispatch.
    pub at: Duration,
    /// The engine concerned; `None` for supervisor-wide events
    /// ([`RaceEventKind::CancelIssued`]).
    pub engine: Option<Engine>,
    /// What happened.
    pub kind: RaceEventKind,
}

/// The result of checking one property with the portfolio.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// Property name (e.g. `p7`).
    pub property: String,
    /// The combined verdict: the winner's in racing mode, the first
    /// definitive one in cross-validation mode.
    pub verdict: Verdict,
    /// The engine that produced [`PortfolioReport::verdict`], when any
    /// engine was definitive.
    pub winner: Option<Engine>,
    /// Wall-clock time from dispatch to the last engine finishing.
    pub wall_clock: Duration,
    /// Every engine's run, in finish order, with per-engine attribution.
    pub runs: Vec<EngineRun>,
    /// Human-readable descriptions of cross-engine contradictions. Empty
    /// when all definitive verdicts agree.
    pub disagreements: Vec<String>,
    /// The race as it unfolded: engine spawns, answers in arrival order and
    /// the cancellation point, all timestamped relative to dispatch.
    pub timeline: Vec<RaceEvent>,
}

impl PortfolioReport {
    /// `true` when every pair of definitive verdicts is consistent.
    pub fn agreed(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// The run of a particular engine, if it participated.
    pub fn run_of(&self, engine: Engine) -> Option<&EngineRun> {
        self.runs.iter().find(|r| r.engine == engine)
    }
}

impl fmt::Display for PortfolioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} in {:.3}s",
            self.property,
            self.verdict.label(),
            self.wall_clock.as_secs_f64()
        )?;
        if let Some(winner) = self.winner {
            write!(f, " (won by {winner})")?;
        }
        for run in &self.runs {
            write!(
                f,
                "\n    {:<11} {:<13} {:.3}s{}",
                run.engine.to_string(),
                run.verdict.label(),
                run.elapsed.as_secs_f64(),
                if run.cancelled { " [cancelled]" } else { "" },
            )?;
        }
        for d in &self.disagreements {
            write!(f, "\n    DISAGREEMENT: {d}")?;
        }
        Ok(())
    }
}

/// A concurrent multi-strategy verification engine.
///
/// See the crate-level docs for an example; [`Portfolio::race`] checks one
/// property with first-definitive-answer-wins semantics,
/// [`Portfolio::check_all`] runs every engine to completion for maximum
/// cross-validation, and [`Portfolio::check_batch`] shards many properties
/// over a worker pool.
#[derive(Debug, Clone, Default)]
pub struct Portfolio {
    config: PortfolioConfig,
    metrics: Option<Arc<MetricsRegistry>>,
    recorder: RecorderHandle,
}

impl Portfolio {
    /// Creates a portfolio with the given configuration.
    pub fn new(config: PortfolioConfig) -> Self {
        Portfolio {
            config,
            metrics: None,
            recorder: RecorderHandle::disabled(),
        }
    }

    /// Publishes race telemetry (win counters, per-engine wall-clock
    /// histograms, win-margin distribution) into `registry`. Purely
    /// observational: metrics never influence scheduling or verdicts, which
    /// is why the registry lives on the portfolio, not on
    /// [`PortfolioConfig`].
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Emits race lifecycle events (start, spawns, answers, cancel, end)
    /// into the always-on flight recorder. Like metrics, purely
    /// observational; [`Portfolio::race_warm_recorded`] overrides this base
    /// handle per job so events carry the owning job's id.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Creates a portfolio with the default configuration (all engines).
    pub fn with_defaults() -> Self {
        Portfolio::new(PortfolioConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Races every configured engine on one property; the first definitive
    /// verdict wins and the losing engines are cancelled cooperatively.
    pub fn race(&self, verification: &Verification) -> PortfolioReport {
        self.run_portfolio(verification, true, None, &self.recorder, None)
            .0
    }

    /// Runs every configured engine to completion (no cancellation) and
    /// cross-validates all verdicts against each other.
    pub fn check_all(&self, verification: &Verification) -> PortfolioReport {
        self.run_portfolio(verification, false, None, &self.recorder, None)
            .0
    }

    /// Like [`Portfolio::race`], but warm-started from a knowledge base:
    /// `warm` seeds the engines (replayed CDCL clauses into BMC, conflict
    /// cubes and datapath facts into ATPG) and may narrow the engine list to
    /// the scheduling predictor's choice. The returned [`Harvest`] carries
    /// everything this race learned, for merging back into the base.
    ///
    /// Seeds must come from runs on a structurally identical netlist — the
    /// knowledge-base owner enforces that by keying on a design hash.
    pub fn race_warm(
        &self,
        verification: &Verification,
        warm: &WarmStart,
    ) -> (PortfolioReport, Harvest) {
        self.run_portfolio(verification, true, Some(warm), &self.recorder, None)
    }

    /// Like [`Portfolio::race_warm`], but every flight-recorder event this
    /// race (and the core searches under it) emits is stamped through
    /// `recorder` — the per-job handle the verification service derives, so
    /// a remote `events` tail can be filtered down to one job.
    pub fn race_warm_recorded(
        &self,
        verification: &Verification,
        warm: &WarmStart,
        recorder: &RecorderHandle,
    ) -> (PortfolioReport, Harvest) {
        self.run_portfolio(verification, true, Some(warm), recorder, None)
    }

    /// Like [`Portfolio::race_warm_recorded`], but the race also publishes
    /// live progress into `progress`: the ATPG engine streams bound advances
    /// and effort counters from inside its search, and the supervisor stores
    /// every engine's final statistics the moment it answers. Observers
    /// snapshot `progress` concurrently (the service's progress accessors
    /// feed the server's `progress`/`subscribe` ops from it); publication is
    /// lock-free, alloc-free and never influences scheduling or verdicts.
    pub fn race_warm_probed(
        &self,
        verification: &Verification,
        warm: &WarmStart,
        recorder: &RecorderHandle,
        progress: &RaceProgress,
    ) -> (PortfolioReport, Harvest) {
        self.run_portfolio(verification, true, Some(warm), recorder, Some(progress))
    }

    /// Checks a batch of properties, sharding them across
    /// [`PortfolioConfig::workers`] worker threads. Each job is checked with
    /// [`Portfolio::race`] (or [`Portfolio::check_all`] when
    /// [`PortfolioConfig::cross_validate`] is set); results come back in job
    /// order.
    pub fn check_batch(&self, jobs: &[Verification]) -> Vec<PortfolioReport> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<PortfolioReport>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.config.workers.clamp(1, jobs.len());
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let report = if self.config.cross_validate {
                        self.check_all(job)
                    } else {
                        self.race(job)
                    };
                    *slots[index].lock().expect("result slot") = Some(report);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every job produced a report")
            })
            .collect()
    }

    fn run_portfolio(
        &self,
        verification: &Verification,
        cancel_losers: bool,
        warm: Option<&WarmStart>,
        recorder: &RecorderHandle,
        progress: Option<&RaceProgress>,
    ) -> (PortfolioReport, Harvest) {
        let start = Instant::now();
        // A job budget turns the race token into a deadline token: every
        // engine polls it cooperatively, so even one stuck in a pathological
        // search (or an injected hang) releases its thread once the budget
        // is gone — the supervisor then reports a structured timeout below.
        let token = match self.config.job_budget {
            Some(budget) => CancelToken::with_deadline(start + budget),
            None => CancelToken::new(),
        };
        let engines: &[Engine] = warm
            .and_then(|w| w.engines.as_deref())
            .unwrap_or(&self.config.engines);
        let (tx, rx) = mpsc::channel::<(EngineRun, EngineHarvest)>();
        let mut runs: Vec<EngineRun> = Vec::with_capacity(engines.len());
        let mut harvest = Harvest::default();
        let mut winner: Option<usize> = None;
        let mut timeline: Vec<RaceEvent> = Vec::with_capacity(2 * engines.len() + 1);
        let mut first_definitive_at: Option<Duration> = None;
        let mut win_margin: Option<Duration> = None;
        recorder.record(
            RecorderLayer::Portfolio,
            RecorderKind::Start,
            engines.len() as u64,
            self.config
                .job_budget
                .map(|b| b.as_millis() as u64)
                .unwrap_or(0),
        );
        thread::scope(|scope| {
            for &engine in engines {
                let tx = tx.clone();
                let token = token.clone();
                let config = &self.config;
                timeline.push(RaceEvent {
                    at: start.elapsed(),
                    engine: Some(engine),
                    kind: RaceEventKind::Spawned,
                });
                recorder.record(
                    RecorderLayer::Portfolio,
                    RecorderKind::Spawn,
                    engine_code(engine),
                    0,
                );
                let progress_handle = progress
                    .map(|p| p.handle(engine))
                    .unwrap_or_else(wlac_telemetry::ProgressHandle::disabled);
                scope.spawn(move || {
                    let run = engines::run_engine_probed(
                        engine,
                        verification,
                        config,
                        &token,
                        warm,
                        recorder,
                        &progress_handle,
                    );
                    // The receiver outlives the scope; a send only fails if
                    // the supervisor panicked, in which case the scope
                    // propagates that panic anyway.
                    let _ = tx.send(run);
                });
            }
            drop(tx);
            // Collect results in finish order; the first definitive one wins
            // and (in racing mode) cancels everyone still searching.
            while let Ok((run, engine_harvest)) = rx.recv() {
                let at = start.elapsed();
                let definitive = run.verdict.is_definitive();
                if let Some(progress) = progress {
                    progress.record_final(&run);
                }
                timeline.push(RaceEvent {
                    at,
                    engine: Some(run.engine),
                    kind: RaceEventKind::Answered { definitive },
                });
                recorder.record(
                    RecorderLayer::Portfolio,
                    RecorderKind::Answer,
                    engine_code(run.engine),
                    u64::from(definitive),
                );
                match first_definitive_at {
                    None if definitive => first_definitive_at = Some(at),
                    Some(won_at) if win_margin.is_none() => {
                        win_margin = Some(at.saturating_sub(won_at));
                    }
                    _ => {}
                }
                if winner.is_none() && definitive {
                    winner = Some(runs.len());
                    if cancel_losers {
                        token.cancel();
                        timeline.push(RaceEvent {
                            at: start.elapsed(),
                            engine: None,
                            kind: RaceEventKind::CancelIssued,
                        });
                        recorder.record(
                            RecorderLayer::Portfolio,
                            RecorderKind::Cancel,
                            engine_code(run.engine),
                            0,
                        );
                    }
                }
                harvest.clauses.extend(engine_harvest.clauses);
                if engine_harvest.knowledge.is_some() {
                    harvest.knowledge = engine_harvest.knowledge;
                }
                harvest.ran.push(run.engine);
                runs.push(run);
            }
        });
        let disagreements = cross_validate(&runs);
        if !cancel_losers {
            // Cross-validation mode: every engine ran to completion, so pick
            // the most informative verdict instead of the earliest one — a
            // validated trace from a deep engine (e.g. a random-simulation
            // hit beyond the unrolling bound) beats a bounded hold.
            winner = runs
                .iter()
                .enumerate()
                .filter(|(_, run)| run.verdict.is_definitive())
                .max_by_key(|(index, run)| (run.verdict.rank(), usize::MAX - index))
                .map(|(index, _)| index);
        }
        let verdict = match winner {
            Some(index) => runs[index].verdict.clone(),
            None => match self.config.job_budget {
                // No engine answered and the budget ran out: the structured
                // timeout outcome, not a free-form Unknown.
                Some(budget) if token.deadline_expired() => Verdict::Timeout { budget },
                _ => Verdict::Unknown {
                    reason: runs
                        .iter()
                        .map(|r| {
                            let reason = match &r.verdict {
                                Verdict::Unknown { reason } => reason.as_str(),
                                _ => "?",
                            };
                            format!("{}: {}", r.engine, reason)
                        })
                        .collect::<Vec<_>>()
                        .join("; "),
                },
            },
        };
        harvest.winner = winner.map(|index| runs[index].engine);
        let report = PortfolioReport {
            property: verification.property.name.clone(),
            verdict,
            winner: harvest.winner,
            wall_clock: start.elapsed(),
            runs,
            disagreements,
            timeline,
        };
        if let Some(registry) = &self.metrics {
            record_race_metrics(registry, &report, win_margin);
        }
        recorder.record(
            RecorderLayer::Portfolio,
            RecorderKind::End,
            report.winner.map(engine_code).unwrap_or(u64::MAX),
            report.wall_clock.as_nanos() as u64,
        );
        (report, harvest)
    }
}

/// Engine as a stable small integer for flight-recorder payload words
/// (0 = atpg, 1 = sat_bmc, 2 = random_sim).
fn engine_code(engine: Engine) -> u64 {
    match engine {
        Engine::Atpg => 0,
        Engine::SatBmc => 1,
        Engine::RandomSim => 2,
    }
}

/// Engine name as a metric-name component (Prometheus forbids `-`).
fn metric_suffix(engine: Engine) -> &'static str {
    match engine {
        Engine::Atpg => "atpg",
        Engine::SatBmc => "sat_bmc",
        Engine::RandomSim => "random_sim",
    }
}

/// Publishes one race's attribution into the shared registry: race and
/// per-engine win counters, per-engine wall-clock and race wall-clock
/// histograms, cancelled-run and disagreement counters, and the win margin
/// (first definitive answer to the next engine's answer — how much racing
/// actually bought).
fn record_race_metrics(
    registry: &MetricsRegistry,
    report: &PortfolioReport,
    win_margin: Option<Duration>,
) {
    registry.counter("portfolio_races_total").inc();
    registry
        .histogram("portfolio_race_wall_ns")
        .record(report.wall_clock.as_nanos() as u64);
    if let Some(winner) = report.winner {
        registry
            .counter(&format!("portfolio_wins_{}_total", metric_suffix(winner)))
            .inc();
    } else {
        registry.counter("portfolio_no_winner_total").inc();
    }
    if matches!(report.verdict, Verdict::Timeout { .. }) {
        registry.counter("portfolio_timeouts_total").inc();
    }
    for run in &report.runs {
        registry
            .histogram(&format!(
                "portfolio_engine_{}_wall_ns",
                metric_suffix(run.engine)
            ))
            .record(run.elapsed.as_nanos() as u64);
        if run.cancelled {
            registry.counter("portfolio_cancelled_runs_total").inc();
        }
    }
    if !report.disagreements.is_empty() {
        registry
            .counter("portfolio_disagreements_total")
            .add(report.disagreements.len() as u64);
    }
    if let Some(margin) = win_margin {
        registry
            .histogram("portfolio_win_margin_ns")
            .record(margin.as_nanos() as u64);
    }
}

/// Pairwise consistency check over all definitive verdicts.
fn cross_validate(runs: &[EngineRun]) -> Vec<String> {
    let mut disagreements = Vec::new();
    for (i, a) in runs.iter().enumerate() {
        for b in &runs[i + 1..] {
            if a.verdict.conflicts_with(&b.verdict) {
                disagreements.push(format!(
                    "{} says {} but {} says {}",
                    a.engine,
                    a.verdict.label(),
                    b.engine,
                    b.verdict.label(),
                ));
            }
        }
    }
    disagreements
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::Property;
    use wlac_bv::Bv;
    use wlac_netlist::Netlist;

    fn counter(limit: u64, wrap: u64, name: &str) -> Verification {
        let mut nl = Netlist::new("counter");
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let plus = nl.add(q, one);
        let wrap_net = nl.constant(&Bv::from_u64(4, wrap));
        let at_wrap = nl.eq(q, wrap_net);
        let zero = nl.constant(&Bv::zero(4));
        let next = nl.mux(at_wrap, zero, plus);
        nl.connect_dff_data(ff, next);
        let limit_net = nl.constant(&Bv::from_u64(4, limit));
        let ok = nl.lt(q, limit_net);
        nl.mark_output("ok", ok);
        let property = Property::always(&nl, name, ok);
        Verification::new(nl, property)
    }

    #[test]
    fn race_produces_a_winner_and_attribution() {
        let report = Portfolio::with_defaults().race(&counter(12, 5, "holds"));
        assert!(report.verdict.is_pass(), "{:?}", report.verdict);
        assert!(report.winner.is_some());
        assert!(report.agreed(), "{:?}", report.disagreements);
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.property, "holds");
        let text = report.to_string();
        assert!(text.contains("won by"), "{text}");
    }

    #[test]
    fn race_on_a_violation_returns_a_validated_trace() {
        let report = Portfolio::with_defaults().race(&counter(5, 12, "fails"));
        match &report.verdict {
            Verdict::Violated { trace } => assert!(trace.len() >= 5),
            other => panic!("expected violation, got {other:?}"),
        }
        assert!(report.agreed(), "{:?}", report.disagreements);
    }

    #[test]
    fn check_all_runs_every_engine_to_completion() {
        let portfolio = Portfolio::new(PortfolioConfig::default().with_cross_validation());
        let report = portfolio.check_all(&counter(12, 5, "holds"));
        // Racing cancels losers; check_all must not.
        assert!(report.runs.iter().all(|r| !r.cancelled));
        // ATPG and BMC both reach a definitive pass verdict.
        for engine in [Engine::Atpg, Engine::SatBmc] {
            let run = report.run_of(engine).expect("engine ran");
            assert!(run.verdict.is_pass(), "{engine}: {:?}", run.verdict);
        }
        assert!(report.agreed());
    }

    #[test]
    fn batch_returns_reports_in_job_order() {
        let jobs = vec![
            counter(12, 5, "j0"),
            counter(5, 12, "j1"),
            counter(3, 12, "j2"),
            counter(9, 4, "j3"),
        ];
        let reports = Portfolio::with_defaults().check_batch(&jobs);
        assert_eq!(reports.len(), 4);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.property, format!("j{i}"));
            assert!(
                report.agreed(),
                "{}: {:?}",
                report.property,
                report.disagreements
            );
        }
        assert!(reports[0].verdict.is_pass());
        assert!(matches!(reports[1].verdict, Verdict::Violated { .. }));
        assert!(matches!(reports[2].verdict, Verdict::Violated { .. }));
        assert!(reports[3].verdict.is_pass());
    }

    #[test]
    fn deep_violation_beyond_the_bound_wins_cross_validation() {
        // The counter wraps at 9, so q = 8 violates "q < 8" — but only at
        // cycle 8, beyond an 8-frame unrolling (the violation needs 9
        // frames). The bounded engines correctly report holds-up-to-bound;
        // the 64-cycle random simulation finds the real violation, which is
        // not a disagreement (the trace is longer than the bound) and must
        // win the combined verdict.
        let portfolio = Portfolio::new(PortfolioConfig::default().with_cross_validation());
        let report = portfolio.check_all(&counter(8, 9, "deep"));
        assert!(report.agreed(), "{:?}", report.disagreements);
        assert_eq!(report.winner, Some(Engine::RandomSim));
        match &report.verdict {
            Verdict::Violated { trace } => assert!(trace.len() > 8),
            other => panic!("expected the deep violation, got {other:?}"),
        }
        let bounded = report.run_of(Engine::Atpg).expect("atpg ran");
        assert!(bounded.verdict.is_pass(), "{:?}", bounded.verdict);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(Portfolio::with_defaults().check_batch(&[]).is_empty());
    }

    #[test]
    fn race_timeline_orders_spawns_before_answers() {
        let report = Portfolio::with_defaults().race(&counter(12, 5, "timed"));
        let spawns = report
            .timeline
            .iter()
            .filter(|e| e.kind == RaceEventKind::Spawned)
            .count();
        assert_eq!(spawns, 3, "{:?}", report.timeline);
        let answers = report
            .timeline
            .iter()
            .filter(|e| matches!(e.kind, RaceEventKind::Answered { .. }))
            .count();
        assert_eq!(answers, 3, "{:?}", report.timeline);
        // Racing mode cancels as soon as someone is definitive.
        assert!(report
            .timeline
            .iter()
            .any(|e| e.kind == RaceEventKind::CancelIssued));
        // Timestamps are monotone within the supervisor's view.
        for pair in report.timeline.windows(2) {
            assert!(pair[0].at <= pair[1].at, "{:?}", report.timeline);
        }
        // Every Answered names an engine; CancelIssued is supervisor-wide.
        for event in &report.timeline {
            match event.kind {
                RaceEventKind::CancelIssued => assert!(event.engine.is_none()),
                _ => assert!(event.engine.is_some()),
            }
        }
    }

    #[test]
    fn metrics_registry_sees_races_and_wins() {
        let registry = Arc::new(MetricsRegistry::new());
        let portfolio = Portfolio::with_defaults().with_metrics(registry.clone());
        let won = portfolio.race(&counter(12, 5, "m0"));
        let winner = won.winner.expect("definitive race");
        portfolio.race(&counter(5, 12, "m1"));
        assert_eq!(registry.counter("portfolio_races_total").get(), 2);
        let wins = registry
            .counter(&format!("portfolio_wins_{}_total", metric_suffix(winner)))
            .get();
        assert!(wins >= 1, "winner {winner} should be counted");
        assert_eq!(registry.histogram("portfolio_race_wall_ns").count(), 2);
        // Each race runs all three engines; every run's wall clock lands in
        // its per-engine histogram.
        let per_engine: u64 = Engine::ALL
            .iter()
            .map(|&e| {
                registry
                    .histogram(&format!("portfolio_engine_{}_wall_ns", metric_suffix(e)))
                    .count()
            })
            .sum();
        assert_eq!(per_engine, 6);
    }

    #[test]
    fn job_budget_times_out_a_hung_engine_within_twice_the_budget() {
        use wlac_atpg::{FaultPlan, FaultSite};
        // One engine, hung from its first search step: without a budget this
        // race would never return. With one, the deadline token releases the
        // hang and the supervisor reports a structured timeout.
        let mut config = PortfolioConfig::default().with_engines(vec![Engine::Atpg]);
        config.job_budget = Some(Duration::from_millis(250));
        config.checker.faults = FaultPlan::new().fire_from(FaultSite::EngineHang, 1);
        let registry = Arc::new(MetricsRegistry::new());
        let started = Instant::now();
        let report = Portfolio::new(config)
            .with_metrics(registry.clone())
            .race(&counter(12, 5, "hung"));
        let elapsed = started.elapsed();
        assert!(
            matches!(report.verdict, Verdict::Timeout { .. }),
            "{:?}",
            report.verdict
        );
        assert_eq!(report.verdict.label(), "timeout");
        assert!(!report.verdict.is_definitive());
        assert!(report.winner.is_none());
        assert!(
            elapsed < Duration::from_millis(500),
            "worker freed within 2x budget, took {elapsed:?}"
        );
        assert_eq!(registry.counter("portfolio_timeouts_total").get(), 1);
    }

    #[test]
    fn job_budget_leaves_fast_races_untouched() {
        let config = PortfolioConfig::default().with_job_budget(Duration::from_secs(60));
        let report = Portfolio::new(config).race(&counter(12, 5, "fast"));
        assert!(report.verdict.is_pass(), "{:?}", report.verdict);
        assert!(report.winner.is_some());
    }

    #[test]
    fn single_engine_portfolio_works() {
        let config = PortfolioConfig::default().with_engines(vec![Engine::Atpg]);
        let report = Portfolio::new(config).race(&counter(12, 5, "solo"));
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.winner, Some(Engine::Atpg));
    }
}
