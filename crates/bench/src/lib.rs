//! # wlac-bench — benchmark harness reproducing the paper's evaluation
//!
//! Binaries (run with `cargo run -p wlac-bench --release --bin <name>`):
//!
//! * `table1` — circuit statistics (the paper's Table 1),
//! * `table2` — CPU time / memory for properties p1–p14 (the paper's
//!   Table 2), side by side with the paper's reported numbers,
//! * `compare` — word-level ATPG vs bit-level SAT BMC vs random simulation,
//! * `ablation` — effect of the bias ordering, the modular arithmetic solver
//!   and the ESTG heuristic, plus the modular-vs-integral false-negative
//!   demonstration.
//!
//! Criterion benches (`cargo bench -p wlac-bench`) cover the Table 2
//! property checks, the worked examples of Figs. 3–5 and solver scaling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;
use wlac_atpg::{AssertionChecker, CheckReport, CheckerOptions};
use wlac_circuits::BenchmarkCase;

/// Options used by the harness when reproducing Table 2: a bounded number of
/// frames and a per-property time limit keep full-suite runs predictable.
pub fn harness_options() -> CheckerOptions {
    CheckerOptions {
        max_frames: 8,
        time_limit: Duration::from_secs(30),
        ..CheckerOptions::default()
    }
}

/// Checks one benchmark case with the harness options.
pub fn run_case(case: &BenchmarkCase) -> CheckReport {
    AssertionChecker::new(harness_options()).check(&case.verification)
}

/// Formats one Table 2 row: measured vs paper numbers.
pub fn table2_row(case: &BenchmarkCase, report: &CheckReport) -> String {
    let outcome = match &report.result {
        wlac_atpg::CheckResult::Proved => "proved",
        wlac_atpg::CheckResult::HoldsUpToBound { .. } => "holds(bound)",
        wlac_atpg::CheckResult::CounterExample { .. } => "counterexample",
        wlac_atpg::CheckResult::WitnessFound { .. } => "witness",
        wlac_atpg::CheckResult::WitnessNotFound { .. } => "no witness",
        wlac_atpg::CheckResult::Unknown { .. } => "unknown",
    };
    format!(
        "{:<13} {:>4} {:<14} {:>9.2} {:>9.2} {:>11.2} {:>11.2}",
        case.circuit,
        case.property,
        outcome,
        report.stats.cpu_seconds(),
        report.stats.peak_memory_mb(),
        case.paper_cpu_seconds,
        case.paper_memory_mb,
    )
}

/// Header matching [`table2_row`].
pub fn table2_header() -> String {
    format!(
        "{:<13} {:>4} {:<14} {:>9} {:>9} {:>11} {:>11}",
        "ckt_name", "prop", "result", "cpu(s)", "mem(MB)", "paper cpu", "paper MB"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_circuits::{paper_suite, Scale};

    #[test]
    fn harness_runs_a_small_case() {
        let suite = paper_suite(Scale::Small);
        let case = &suite[13]; // p14, the smallest
        let report = run_case(case);
        assert!(report.result.is_pass());
        let row = table2_row(case, &report);
        assert!(row.contains("p14"));
        assert!(table2_header().contains("paper cpu"));
    }
}
