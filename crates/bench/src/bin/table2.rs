//! Reproduces the paper's Table 2: CPU time and memory for properties
//! p1–p14, side by side with the numbers reported in the paper.
//!
//! Usage: `cargo run -p wlac-bench --release --bin table2 [-- small|paper]`
//! (defaults to the small scale so a full run finishes in seconds; the paper
//! scale regenerates Table 1-sized designs).

use wlac_bench::{run_case, table2_header, table2_row};
use wlac_circuits::{paper_suite, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "paper") {
        Scale::Paper
    } else {
        Scale::Small
    };
    println!("== Table 2: assertion checking results ({scale:?} scale) ==");
    println!("{}", table2_header());
    let mut total_cpu = 0.0;
    let mut worst_mem: f64 = 0.0;
    let mut mismatches = 0usize;
    for case in paper_suite(scale) {
        let report = run_case(&case);
        let ok = match case.expectation {
            wlac_circuits::Expectation::Pass => report.result.is_pass(),
            wlac_circuits::Expectation::Witness => report.result.has_trace(),
        };
        if !ok {
            mismatches += 1;
        }
        total_cpu += report.stats.cpu_seconds();
        worst_mem = worst_mem.max(report.stats.peak_memory_mb());
        println!("{}", table2_row(&case, &report));
    }
    println!();
    println!(
        "total cpu {total_cpu:.2}s, peak memory {worst_mem:.2}MB, {mismatches} outcome mismatch(es)"
    );
    println!(
        "paper totals for reference: 180.2s cpu, 54.66MB peak memory (Sun UltraSparc 5, 512MB)"
    );
}
