//! Ablation study of the design choices the paper calls out: decision-bias
//! ordering (Definition 2), the modular arithmetic constraint solver
//! (Section 4) and the ESTG heuristic, plus the modular-vs-integral
//! false-negative demonstration from Section 4.
//!
//! Usage: `cargo run -p wlac-bench --release --bin ablation`

use std::time::Duration;
use wlac_atpg::{AssertionChecker, CheckerOptions};
use wlac_baselines::{IntegralLinearSystem, IntegralOutcome};
use wlac_circuits::{paper_suite, Scale};
use wlac_modsolve::{LinearSystem, Ring};

fn options(bias: bool, arithmetic: bool, estg: bool) -> CheckerOptions {
    CheckerOptions {
        max_frames: 6,
        time_limit: Duration::from_secs(20),
        use_bias_ordering: bias,
        use_arithmetic_solver: arithmetic,
        use_estg: estg,
        ..CheckerOptions::default()
    }
}

fn main() {
    println!("== Ablation: search heuristics (small scale, properties p2, p5, p9, p12) ==");
    println!(
        "{:<28} {:>4} {:>9} {:>9} {:>11} {:>11}",
        "configuration", "prop", "cpu(s)", "mem(MB)", "decisions", "backtracks"
    );
    let suite = paper_suite(Scale::Small);
    let selected = [1usize, 4, 8, 11]; // p2, p5, p9, p12
    let configurations = [
        ("full (paper configuration)", true, true, true),
        ("no bias ordering", false, true, true),
        ("no arithmetic solver", true, false, true),
        ("no ESTG ordering", true, true, false),
    ];
    for (name, bias, arithmetic, estg) in configurations {
        for idx in selected {
            let case = &suite[idx];
            let report =
                AssertionChecker::new(options(bias, arithmetic, estg)).check(&case.verification);
            println!(
                "{:<28} {:>4} {:>9.2} {:>9.2} {:>11} {:>11}",
                name,
                case.property,
                report.stats.cpu_seconds(),
                report.stats.peak_memory_mb(),
                report.stats.decisions,
                report.stats.backtracks
            );
        }
    }

    println!();
    println!("== Modular vs integral linear solving (Section 4 worked example) ==");
    let mut modular = LinearSystem::new(Ring::new(3), 2);
    modular.add_equation(&[1, 1], 5);
    modular.add_equation(&[2, 7], 4);
    match modular.solve() {
        Ok(sol) => println!(
            "modular  solver: x + y = 5, 2x + 7y = 4 (mod 8)  ->  (x, y) = ({}, {})",
            sol.particular()[0],
            sol.particular()[1]
        ),
        Err(_) => println!("modular  solver: unexpectedly infeasible"),
    }
    let mut integral = IntegralLinearSystem::new(3, 2);
    integral.add_equation(&[1, 1], 5);
    integral.add_equation(&[2, 7], 4);
    match integral.solve() {
        IntegralOutcome::Infeasible => println!(
            "integral solver: reports INFEASIBLE (x = 31/5) — the false negative the paper avoids"
        ),
        other => println!("integral solver: {other:?}"),
    }
}
