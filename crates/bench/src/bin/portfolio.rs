//! Portfolio throughput comparison: sequential ATPG vs per-property racing
//! vs batch checking across a worker pool, on the paper suite.
//!
//! Usage: `cargo run -p wlac-bench --release --bin portfolio`

use std::time::Instant;
use wlac_bench::harness_options;
use wlac_circuits::{paper_suite, Scale};
use wlac_portfolio::{Engine, Portfolio, PortfolioConfig};

fn config() -> PortfolioConfig {
    PortfolioConfig {
        checker: harness_options(),
        ..PortfolioConfig::default()
    }
}

fn main() {
    let suite = paper_suite(Scale::Small);
    let jobs: Vec<_> = suite.iter().map(|case| case.verification.clone()).collect();

    // 1. Sequential baseline: the ATPG engine alone, one property at a time
    //    (what the repo could do before the portfolio existed).
    let sequential_config = config().with_engines(vec![Engine::Atpg]);
    let sequential = Portfolio::new(PortfolioConfig {
        workers: 1,
        ..sequential_config
    });
    let start = Instant::now();
    let sequential_reports = sequential.check_batch(&jobs);
    let sequential_time = start.elapsed();

    // 2. Racing: all three engines per property, first definitive answer
    //    wins, losers cancelled — still one property at a time.
    let racing = Portfolio::new(PortfolioConfig {
        workers: 1,
        ..config()
    });
    let start = Instant::now();
    let racing_reports = racing.check_batch(&jobs);
    let racing_time = start.elapsed();

    // 3. Batch: racing plus sharding across the worker pool.
    let batch = Portfolio::new(config());
    let start = Instant::now();
    let batch_reports = batch.check_batch(&jobs);
    let batch_time = start.elapsed();

    println!("== portfolio throughput on paper_suite(Scale::Small), 14 properties ==\n");
    println!(
        "{:<13} {:>4} | {:<13} {:>9} | {:<13} {:>9} {:>10} | agree",
        "ckt_name", "prop", "sequential", "cpu(s)", "racing", "cpu(s)", "winner"
    );
    for ((case, seq), race) in suite.iter().zip(&sequential_reports).zip(&racing_reports) {
        println!(
            "{:<13} {:>4} | {:<13} {:>8.2}s | {:<13} {:>8.2}s {:>10} | {}",
            case.circuit,
            case.property,
            seq.verdict.label(),
            seq.wall_clock.as_secs_f64(),
            race.verdict.label(),
            race.wall_clock.as_secs_f64(),
            race.winner.map(|w| w.to_string()).unwrap_or_default(),
            if race.agreed() { "yes" } else { "NO" },
        );
    }
    let disagreements: usize = batch_reports.iter().map(|r| r.disagreements.len()).sum();
    println!();
    println!(
        "sequential (atpg only, 1 worker): {:>8.2}s",
        sequential_time.as_secs_f64()
    );
    println!(
        "racing     (3 engines, 1 worker): {:>8.2}s",
        racing_time.as_secs_f64()
    );
    println!(
        "batch      (3 engines, {:>2} workers): {:>6.2}s   ({} disagreement(s))",
        batch.config().workers,
        batch_time.as_secs_f64(),
        disagreements,
    );
}
