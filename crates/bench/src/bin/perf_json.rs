//! JSON performance reporter for the implication / CDCL / portfolio hot paths.
//!
//! Usage:
//!
//! ```text
//! cargo run -p wlac-bench --release --bin perf_json               # print metrics JSON
//! cargo run -p wlac-bench --release --bin perf_json -- --check BENCH_2.json
//! cargo run -p wlac-bench --release --bin perf_json -- --industry01-paper
//! ```
//!
//! Without arguments the reporter runs the paper Small suite through the
//! word-level ATPG checker, a pigeonhole CDCL workload and a portfolio batch,
//! and prints one flat JSON object of metrics. With `--check <baseline>` it
//! additionally loads the committed baseline (the `"after"` object of
//! `BENCH_2.json`), compares every regression-tracked metric and exits
//! non-zero when a live metric is more than 3x worse than the baseline —
//! this is the CI bench smoke gate.
//!
//! The binary installs a counting global allocator so `allocs_per_gate_eval`
//! measures real heap traffic of the implication hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wlac_baselines::{Cnf, Lit};
use wlac_bench::run_case;
use wlac_circuits::{paper_suite, Scale};
use wlac_portfolio::Portfolio;

/// Wraps the system allocator and counts allocation calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// One named measurement. `tracked` metrics participate in the CI regression
/// gate (larger = worse); untracked ones are informational.
struct Metric {
    name: &'static str,
    value: f64,
    tracked: bool,
}

#[allow(clippy::needless_range_loop)]
fn php_cnf(pigeons: usize, holes: usize) -> Cnf {
    let mut cnf = Cnf::new();
    let p: Vec<Vec<usize>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.fresh_var()).collect())
        .collect();
    for row in &p {
        cnf.add_clause(row.iter().map(|v| Lit::positive(*v)).collect());
    }
    for j in 0..holes {
        for i1 in 0..pigeons {
            for i2 in i1 + 1..pigeons {
                cnf.add_clause(vec![Lit::negative(p[i1][j]), Lit::negative(p[i2][j])]);
            }
        }
    }
    cnf
}

fn measure_small_suite() -> Vec<Metric> {
    let suite = paper_suite(Scale::Small);
    // Warm up so lazily-initialised runtime structures do not count.
    let _ = run_case(suite.last().expect("non-empty suite"));

    let allocs_before = alloc_calls();
    let start = Instant::now();
    let mut gate_evals = 0u64;
    let mut refinements = 0u64;
    for case in &suite {
        let report = run_case(case);
        gate_evals += report.stats.implication.gate_evaluations;
        refinements += report.stats.implication.refinements;
    }
    let wall = start.elapsed().as_secs_f64();
    let allocs = (alloc_calls() - allocs_before) as f64;
    let evals = gate_evals.max(1) as f64;
    vec![
        Metric {
            name: "atpg_small_wall_s",
            value: wall,
            tracked: true,
        },
        Metric {
            name: "atpg_gate_evals",
            value: evals,
            tracked: false,
        },
        Metric {
            name: "atpg_refinements",
            value: refinements as f64,
            tracked: false,
        },
        Metric {
            name: "implication_ns_per_gate_eval",
            value: wall * 1e9 / evals,
            tracked: true,
        },
        Metric {
            name: "allocs_per_gate_eval",
            value: allocs / evals,
            tracked: true,
        },
    ]
}

fn measure_cdcl() -> Vec<Metric> {
    // PHP(8,7): unsatisfiable, solved only through clause learning; a good
    // end-to-end proxy for propagation + analysis + DB management speed.
    let cnf = php_cnf(8, 7);
    let start = Instant::now();
    let (model, complete) = cnf.solve(2_000_000);
    let wall = start.elapsed().as_secs_f64();
    assert!(complete && model.is_none(), "PHP(8,7) must be proved UNSAT");
    vec![Metric {
        name: "cdcl_php87_wall_s",
        value: wall,
        tracked: true,
    }]
}

fn measure_portfolio() -> Vec<Metric> {
    let suite = paper_suite(Scale::Small);
    let jobs: Vec<_> = suite.iter().map(|c| c.verification.clone()).collect();
    let start = Instant::now();
    let reports = Portfolio::with_defaults().check_batch(&jobs);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(reports.len(), jobs.len());
    vec![Metric {
        name: "portfolio_small_wall_s",
        value: wall,
        tracked: true,
    }]
}

fn measure_industry01_paper() -> Vec<Metric> {
    let suite = paper_suite(Scale::Paper);
    let case = suite
        .iter()
        .find(|c| c.circuit == "industry_01")
        .expect("industry_01 case");
    let start = Instant::now();
    let report = Portfolio::with_defaults().race(&case.verification);
    let wall = start.elapsed().as_secs_f64();
    eprintln!(
        "industry_01 paper-scale race: {} in {:.3}s",
        report.verdict.label(),
        wall
    );
    vec![Metric {
        name: "portfolio_industry01_paper_wall_s",
        value: wall,
        tracked: false,
    }]
}

fn render_json(metrics: &[Metric]) -> String {
    let mut out = String::from("{\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {:.6}{}\n",
            m.name,
            m.value,
            if i + 1 == metrics.len() { "" } else { "," }
        ));
    }
    out.push('}');
    out
}

/// Extracts `"key": number` pairs from the `"after"` object of a baseline
/// file (or from the whole file when no `"after"` object exists). The format
/// is our own flat reporter output, so a scanning parser suffices.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let body = match text.find("\"after\"") {
        Some(pos) => {
            let open = text[pos..].find('{').map(|o| pos + o).unwrap_or(0);
            let close = text[open..]
                .find('}')
                .map(|c| open + c)
                .unwrap_or(text.len());
            &text[open..close]
        }
        None => text,
    };
    let mut out = Vec::new();
    for part in body.split(',') {
        let mut halves = part.splitn(2, ':');
        let (Some(key), Some(value)) = (halves.next(), halves.next()) else {
            continue;
        };
        let key = key
            .trim()
            .trim_matches(|c| c == '"' || c == '{' || c == '\n' || c == ' ');
        if let Ok(v) = value.trim().trim_end_matches('}').trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut industry01 = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => baseline_path = iter.next().cloned(),
            "--industry01-paper" => industry01 = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut metrics = Vec::new();
    metrics.extend(measure_small_suite());
    metrics.extend(measure_cdcl());
    metrics.extend(measure_portfolio());
    if industry01 {
        metrics.extend(measure_industry01_paper());
    }
    println!("{}", render_json(&metrics));

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_baseline(&text);
        let mut failures = Vec::new();
        for m in metrics.iter().filter(|m| m.tracked) {
            let Some((_, base)) = baseline.iter().find(|(k, _)| k == m.name) else {
                continue;
            };
            // Noise floors keep the gate robust on slow shared CI runners:
            // tiny wall-clock workloads and per-eval latencies vary with
            // machine class, while allocs_per_gate_eval is deterministic and
            // carries the gate with no floor at all.
            let floor = if m.name.ends_with("_wall_s") {
                0.05
            } else if m.name.ends_with("_ns_per_gate_eval") {
                1500.0
            } else {
                0.0
            };
            if m.value > (base.max(floor)) * 3.0 {
                failures.push(format!(
                    "{}: live {:.6} > 3x baseline {:.6}",
                    m.name, m.value, base
                ));
            }
        }
        if failures.is_empty() {
            eprintln!("perf check OK against {path}");
        } else {
            for f in &failures {
                eprintln!("PERF REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
