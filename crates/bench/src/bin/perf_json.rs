//! JSON performance reporter for the implication / datapath / CDCL /
//! portfolio hot paths.
//!
//! Usage:
//!
//! ```text
//! cargo run -p wlac-bench --release --bin perf_json               # print metrics JSON
//! cargo run -p wlac-bench --release --bin perf_json -- --check BENCH_3.json
//! cargo run -p wlac-bench --release --bin perf_json -- --industry01-paper
//! ```
//!
//! Without arguments the reporter runs the paper Small suite through the
//! word-level ATPG checker, a datapath-heavy island workload, a pigeonhole
//! CDCL workload, a portfolio batch, the repeated-batch service workload
//! and a cold-vs-restart-warm workload through the network server (which
//! *asserts* that a server rebooted from its snapshots answers the repeat
//! batch from the persisted verdict cache with identical verdicts), and
//! prints one flat JSON object of metrics. With `--check <baseline>` it
//! additionally loads the committed baseline (the `"after"` object of
//! `BENCH_5.json`), compares every regression-tracked metric and exits
//! non-zero when a live metric is more than 3x worse than the baseline —
//! this is the CI bench smoke gate.
//!
//! The binary installs a counting global allocator so `allocs_per_gate_eval`
//! measures real heap traffic of the implication hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wlac_atpg::{AssertionChecker, CheckStats, CheckerOptions, Property, Verification};
use wlac_baselines::{Cnf, Lit};
use wlac_bench::{harness_options, run_case};
use wlac_bv::Bv;
use wlac_circuits::{paper_suite, Scale};
use wlac_netlist::Netlist;
use wlac_portfolio::Portfolio;
use wlac_service::{ServiceConfig, VerificationService};
use wlac_telemetry::{MetricsRegistry, ProgressCell, ProgressHandle};

/// Wraps the system allocator and counts allocation calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// One named measurement. `tracked` metrics participate in the CI regression
/// gate (larger = worse); untracked ones are informational.
struct Metric {
    name: &'static str,
    value: f64,
    tracked: bool,
}

#[allow(clippy::needless_range_loop)]
fn php_cnf(pigeons: usize, holes: usize) -> Cnf {
    let mut cnf = Cnf::new();
    let p: Vec<Vec<usize>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.fresh_var()).collect())
        .collect();
    for row in &p {
        cnf.add_clause(row.iter().map(|v| Lit::positive(*v)).collect());
    }
    for j in 0..holes {
        for i1 in 0..pigeons {
            for i2 in i1 + 1..pigeons {
                cnf.add_clause(vec![Lit::negative(p[i1][j]), Lit::negative(p[i2][j])]);
            }
        }
    }
    cnf
}

fn measure_small_suite() -> Vec<Metric> {
    let suite = paper_suite(Scale::Small);
    // Warm up so lazily-initialised runtime structures do not count.
    let _ = run_case(suite.last().expect("non-empty suite"));

    let allocs_before = alloc_calls();
    let start = Instant::now();
    let mut gate_evals = 0u64;
    let mut refinements = 0u64;
    let mut arith_calls = 0u64;
    let mut decisions = 0u64;
    let mut justify_rechecks = 0u64;
    for case in &suite {
        let report = run_case(case);
        gate_evals += report.stats.implication.gate_evaluations;
        refinements += report.stats.implication.refinements;
        arith_calls += report.stats.arithmetic_calls;
        decisions += report.stats.decisions;
        justify_rechecks += report.stats.justify_gates_rechecked;
    }
    let wall = start.elapsed().as_secs_f64();
    let allocs = (alloc_calls() - allocs_before) as f64;
    let evals = gate_evals.max(1) as f64;
    let mut metrics = vec![
        Metric {
            name: "atpg_small_wall_s",
            value: wall,
            tracked: true,
        },
        Metric {
            name: "atpg_gate_evals",
            value: evals,
            tracked: false,
        },
        Metric {
            name: "atpg_refinements",
            value: refinements as f64,
            tracked: false,
        },
        Metric {
            name: "implication_ns_per_gate_eval",
            value: wall * 1e9 / evals,
            tracked: true,
        },
        Metric {
            name: "allocs_per_gate_eval",
            value: allocs / evals,
            tracked: true,
        },
    ];
    // The Small suite is control-bound (historically zero arithmetic calls);
    // informational only — the dedicated datapath workload below carries the
    // per-call regression gate.
    metrics.push(Metric {
        name: "atpg_arith_calls",
        value: arith_calls as f64,
        tracked: false,
    });
    // Unjustified-gate maintenance cost per decision round. A full rescan
    // per decision would put this near the expanded gate count (hundreds to
    // thousands); the dirty worklist keeps it at the size of the changed
    // region.
    metrics.push(Metric {
        name: "justify_rechecks_per_decision",
        value: justify_rechecks as f64 / decisions.max(1) as f64,
        tracked: true,
    });
    metrics
}

/// The Small suite again with a live [`ProgressCell`] attached to every
/// check, mirroring [`measure_small_suite`] run-for-run (same options, one
/// checker per case, warm-up excluded). Probe publication is a branch plus
/// a handful of relaxed atomics on a pre-allocated cell, so the probed
/// per-gate-eval time and allocation figures are tracked against the same
/// regression thresholds as the unprobed run — if publishing ever grows a
/// lock or a heap allocation, `probed_allocs_per_gate_eval` moves off its
/// deterministic baseline and the gate fails.
fn measure_probed_small_suite(unprobed_ns_per_gate_eval: f64) -> Vec<Metric> {
    let suite = paper_suite(Scale::Small);
    let cell = Arc::new(ProgressCell::new());
    let probed_check = |verification: &Verification| {
        let options = CheckerOptions {
            progress: ProgressHandle::to(cell.clone()),
            ..harness_options()
        };
        AssertionChecker::new(options).check(verification)
    };
    // Warm up exactly like the unprobed measurement.
    let _ = probed_check(&suite.last().expect("non-empty suite").verification);

    let allocs_before = alloc_calls();
    let start = Instant::now();
    let mut gate_evals = 0u64;
    for case in &suite {
        let report = probed_check(&case.verification);
        gate_evals += report.stats.implication.gate_evaluations;
    }
    let wall = start.elapsed().as_secs_f64();
    let allocs = (alloc_calls() - allocs_before) as f64;
    let evals = gate_evals.max(1) as f64;
    let probe = cell.snapshot();
    assert!(
        probe.probes > 0,
        "probed suite must publish at least one progress probe"
    );
    let ns_per_eval = wall * 1e9 / evals;
    vec![
        Metric {
            name: "probed_implication_ns_per_gate_eval",
            value: ns_per_eval,
            tracked: true,
        },
        Metric {
            name: "probed_allocs_per_gate_eval",
            value: allocs / evals,
            tracked: true,
        },
        // Probed / unprobed hot-path latency; ~1.0 when publication is free.
        Metric {
            name: "probe_overhead_ratio",
            value: ns_per_eval / unprobed_ns_per_gate_eval.max(1e-9),
            tracked: false,
        },
        Metric {
            name: "probe_publications",
            value: probe.probes as f64,
            tracked: false,
        },
    ]
}

/// A datapath-heavy design: a 24-bit adder chain folded into `2·(a+…+f)`
/// compared against an odd constant (every island solve is an infeasibility
/// proof), guarded by four OR-pair control constraints so one check walks
/// dozens of control leaves, each triggering a modular island solve.
fn datapath_bench_verification() -> Verification {
    let mut nl = Netlist::new("datapath_bench");
    let width = 24;
    let a = nl.input("a", width);
    let b = nl.input("b", width);
    let c = nl.input("c", width);
    let d = nl.input("d", width);
    let e = nl.input("e", width);
    let f = nl.input("f", width);
    let s1 = nl.add(a, b);
    let s2 = nl.add(s1, c);
    let s3 = nl.add(s2, d);
    let s4 = nl.add(s3, e);
    let s5 = nl.add(s4, f);
    let dbl = nl.add(s5, s5); // always even
    let odd = nl.constant(&Bv::from_u64(width, 0x15_5555)); // odd target
    let hit = nl.eq(dbl, odd);
    let controls: Vec<_> = (0..8).map(|i| nl.input(format!("c{i}"), 1)).collect();
    let pairs: Vec<_> = controls.chunks(2).map(|p| nl.or2(p[0], p[1])).collect();
    let ctrl = nl.and_many(&pairs);
    let bad = nl.and2(ctrl, hit);
    let ok = nl.not(bad);
    nl.mark_output("ok", ok);
    let property = Property::always(&nl, "even_sum_never_odd", ok);
    Verification::new(nl, property)
}

fn measure_datapath() -> Vec<Metric> {
    let verification = datapath_bench_verification();
    let options = |incremental| CheckerOptions {
        max_frames: 1,
        use_induction: false,
        time_limit: Duration::from_secs(60),
        incremental_datapath: incremental,
        ..CheckerOptions::default()
    };
    let run = |incremental| {
        let checker = AssertionChecker::new(options(incremental));
        // Warm-up, then aggregate a fixed number of checks.
        let _ = checker.check(&verification);
        let mut stats = CheckStats::default();
        for _ in 0..10 {
            let report = checker.check(&verification);
            assert!(
                report.result.is_pass(),
                "2·sum is even and can never equal the odd target"
            );
            stats.absorb(&report.stats);
        }
        stats
    };
    let incremental = run(true);
    let scratch = run(false);
    vec![
        Metric {
            name: "datapath_ns_per_arith_call",
            value: incremental.ns_per_arith_call().unwrap_or(f64::NAN),
            tracked: true,
        },
        Metric {
            name: "datapath_arith_calls",
            value: incremental.arithmetic_calls as f64,
            tracked: false,
        },
        Metric {
            name: "datapath_island_cache_hit_rate",
            value: incremental.island_cache_hit_rate().unwrap_or(0.0),
            tracked: false,
        },
        // The from-scratch oracle path on the same workload: the ratio to
        // `datapath_ns_per_arith_call` is the incremental-resolution speedup.
        Metric {
            name: "datapath_scratch_ns_per_arith_call",
            value: scratch.ns_per_arith_call().unwrap_or(f64::NAN),
            tracked: false,
        },
    ]
}

fn measure_cdcl() -> Vec<Metric> {
    // PHP(8,7): unsatisfiable, solved only through clause learning; a good
    // end-to-end proxy for propagation + analysis + DB management speed.
    let cnf = php_cnf(8, 7);
    let start = Instant::now();
    let (model, complete) = cnf.solve(2_000_000);
    let wall = start.elapsed().as_secs_f64();
    assert!(complete && model.is_none(), "PHP(8,7) must be proved UNSAT");
    vec![Metric {
        name: "cdcl_php87_wall_s",
        value: wall,
        tracked: true,
    }]
}

fn measure_portfolio() -> Vec<Metric> {
    let suite = paper_suite(Scale::Small);
    let jobs: Vec<_> = suite.iter().map(|c| c.verification.clone()).collect();
    let start = Instant::now();
    let reports = Portfolio::with_defaults().check_batch(&jobs);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(reports.len(), jobs.len());
    vec![Metric {
        name: "portfolio_small_wall_s",
        value: wall,
        tracked: true,
    }]
}

/// Repeated-batch workload through the verification service: the Small
/// suite submitted twice to one session. The cold run races warm-started
/// engines and fills the knowledge base + verdict cache; the warm run must
/// be answered from the cache. `service_warm_speedup` (cold wall / warm
/// wall) and the cache hit rate are the service's headline numbers.
fn measure_service() -> Vec<Metric> {
    let mut config = ServiceConfig::default();
    config.portfolio.checker.max_frames = 6;
    config.portfolio.bmc_decision_budget = 2_000_000;
    let service = VerificationService::new(config);
    let jobs: Vec<_> = paper_suite(Scale::Small)
        .into_iter()
        .map(|case| case.verification)
        .collect();

    let start = Instant::now();
    let cold = service.wait(service.submit_batch(jobs.clone()));
    let cold_wall = start.elapsed().as_secs_f64();
    assert!(
        cold.iter().all(|r| r.verdict.is_definitive()),
        "cold service run must decide the whole suite"
    );

    let start = Instant::now();
    let warm = service.wait(service.submit_batch(jobs));
    let warm_wall = start.elapsed().as_secs_f64();
    assert!(
        warm.iter().all(|r| r.from_cache),
        "repeated batch must be served from the verdict cache"
    );

    let stats = service.stats();
    vec![
        Metric {
            name: "service_cold_wall_s",
            value: cold_wall,
            tracked: true,
        },
        Metric {
            name: "service_warm_wall_s",
            value: warm_wall,
            tracked: true,
        },
        Metric {
            name: "service_warm_speedup",
            value: cold_wall / warm_wall.max(1e-9),
            tracked: false,
        },
        Metric {
            name: "service_cache_hit_rate",
            value: stats.cache_hit_rate(),
            tracked: false,
        },
        Metric {
            name: "service_clauses_banked",
            value: stats.clauses_banked as f64,
            tracked: false,
        },
    ]
}

/// Cold-vs-restart-warm workload through the network server: a design and
/// its properties are checked over a real TCP socket, the server is shut
/// down gracefully (drain + snapshot), a fresh server boots from the same
/// data directory, and the identical batch is re-submitted. The restarted
/// server must answer every job from the persisted verdict cache with the
/// same verdicts the cold run produced.
fn measure_server_restart() -> Vec<Metric> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{SocketAddr, TcpStream};
    use wlac_server::{Json, Server, ServerConfig};

    const PIPELINE_V: &str = r#"
        module pipeline(input clk, input [7:0] a, input [7:0] b, input start,
                        output ok, output busy, output idle);
          reg [7:0] acc;
          reg [1:0] stage;
          always @(posedge clk) begin
            if (stage == 0) begin
              if (start) begin
                acc <= a + b;
                stage <= 1;
              end
            end else if (stage == 1) begin
              acc <= acc + acc;
              stage <= 2;
            end else
              stage <= 0;
          end
          assign busy = stage != 0;
          assign idle = stage == 0;
          assign ok = stage != 3;  // stage encoding 3 is unreachable
        endmodule
    "#;

    struct Client {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let writer = TcpStream::connect(addr).expect("connect to bench server");
            let reader = BufReader::new(writer.try_clone().expect("clone stream"));
            Client { writer, reader }
        }

        fn call(&mut self, request: Json) -> Json {
            self.writer
                .write_all(format!("{request}\n").as_bytes())
                .expect("send");
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("receive");
            let reply = Json::parse(line.trim_end()).expect("valid reply");
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(true),
                "{request} failed: {reply}"
            );
            reply
        }
    }

    let data_dir = std::env::temp_dir().join(format!("wlac-bench-server-{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();
    let boot = |dir: &std::path::Path| {
        let mut config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: Some(dir.to_path_buf()),
            ..ServerConfig::default()
        };
        config.service.portfolio.checker.max_frames = 6;
        let server = Server::bind(config).expect("bind bench server");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    };
    let run_batch = |addr: SocketAddr, expect_cached: bool| -> (Vec<String>, bool) {
        let mut client = Client::connect(addr);
        let reply = client.call(Json::obj(vec![
            ("op", Json::str("register_design")),
            ("source", Json::str(PIPELINE_V)),
        ]));
        let design = reply
            .get("design")
            .and_then(Json::as_str)
            .expect("design")
            .to_string();
        let job = |kind: &str, monitor: &str| {
            Json::obj(vec![
                ("design", Json::str(design.clone())),
                (
                    "property",
                    Json::obj(vec![
                        ("kind", Json::str(kind)),
                        ("monitor", Json::str(monitor)),
                    ]),
                ),
            ])
        };
        let reply = client.call(Json::obj(vec![
            ("op", Json::str("submit_batch")),
            (
                "jobs",
                Json::Arr(vec![
                    job("always", "ok"),
                    job("eventually", "busy"),
                    job("eventually", "idle"),
                ]),
            ),
        ]));
        let batch = reply.get("batch").and_then(Json::as_u64).expect("batch");
        let reply = client.call(Json::obj(vec![
            ("op", Json::str("wait")),
            ("batch", Json::num(batch)),
        ]));
        let results = reply
            .get("results")
            .and_then(Json::as_arr)
            .expect("results");
        let labels = results
            .iter()
            .map(|r| {
                r.get("verdict")
                    .and_then(|v| v.get("label"))
                    .and_then(Json::as_str)
                    .expect("label")
                    .to_string()
            })
            .collect();
        let all_cached = results
            .iter()
            .all(|r| r.get("from_cache").and_then(Json::as_bool) == Some(true));
        if expect_cached && !all_cached {
            eprintln!("expected cached results, got: {results:?}");
        }
        client.call(Json::obj(vec![("op", Json::str("shutdown"))]));
        (labels, all_cached)
    };

    // Cold session: race, persist, shut down.
    let (addr, handle) = boot(&data_dir);
    let start = Instant::now();
    let (cold_labels, cold_cached) = run_batch(addr, false);
    let cold_wall = start.elapsed().as_secs_f64();
    handle.join().expect("cold server thread");
    assert!(!cold_cached, "cold run must race");
    assert!(
        cold_labels.iter().all(|l| l != "unknown"),
        "cold run must decide every property: {cold_labels:?}"
    );

    // Warm session: a different process-equivalent restarted from disk.
    let (addr, handle) = boot(&data_dir);
    let start = Instant::now();
    let (warm_labels, warm_cached) = run_batch(addr, true);
    let warm_wall = start.elapsed().as_secs_f64();
    handle.join().expect("warm server thread");
    assert!(
        warm_cached,
        "restarted server must answer the repeat batch from the persisted cache"
    );
    assert_eq!(
        cold_labels, warm_labels,
        "verdicts must be identical across the restart"
    );
    let cache_hits = warm_labels.len() as f64;
    std::fs::remove_dir_all(&data_dir).ok();

    vec![
        Metric {
            name: "server_cold_wall_s",
            value: cold_wall,
            tracked: true,
        },
        Metric {
            name: "server_restart_warm_wall_s",
            value: warm_wall,
            tracked: true,
        },
        Metric {
            name: "server_restart_speedup",
            value: cold_wall / warm_wall.max(1e-9),
            tracked: false,
        },
        // > 0 is asserted above; recorded so the committed baseline shows it.
        Metric {
            name: "server_restart_cache_hits",
            value: cache_hits,
            tracked: false,
        },
    ]
}

fn measure_industry01_paper() -> Vec<Metric> {
    let suite = paper_suite(Scale::Paper);
    let case = suite
        .iter()
        .find(|c| c.circuit == "industry_01")
        .expect("industry_01 case");
    let start = Instant::now();
    let report = Portfolio::with_defaults().race(&case.verification);
    let wall = start.elapsed().as_secs_f64();
    eprintln!(
        "industry_01 paper-scale race: {} in {:.3}s",
        report.verdict.label(),
        wall
    );
    vec![Metric {
        name: "portfolio_industry01_paper_wall_s",
        value: wall,
        tracked: false,
    }]
}

/// Renders the measurements through the shared telemetry registry: each
/// metric becomes a gauge and the output is
/// [`MetricsRegistry::render_json`]'s flat object — the same exposition
/// machinery the server's `metrics` op uses, so the baseline files and the
/// live endpoint speak one format. (A side effect worth keeping: non-finite
/// values render as `0` instead of producing invalid JSON; the regression
/// gate still sees the raw value and fails on it.)
fn render_json(metrics: &[Metric]) -> String {
    let registry = MetricsRegistry::new();
    for m in metrics {
        registry.gauge(m.name).set(m.value);
    }
    registry.render_json()
}

/// Extracts `"key": number` pairs from the `"after"` object of a baseline
/// file (or from the whole file when no `"after"` object exists). The format
/// is our own flat reporter output, so a scanning parser suffices.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let body = match text.find("\"after\"") {
        Some(pos) => {
            let open = text[pos..].find('{').map(|o| pos + o).unwrap_or(0);
            let close = text[open..]
                .find('}')
                .map(|c| open + c)
                .unwrap_or(text.len());
            &text[open..close]
        }
        None => text,
    };
    let mut out = Vec::new();
    for part in body.split(',') {
        let mut halves = part.splitn(2, ':');
        let (Some(key), Some(value)) = (halves.next(), halves.next()) else {
            continue;
        };
        let key = key
            .trim()
            .trim_matches(|c| c == '"' || c == '{' || c == '\n' || c == ' ');
        if let Ok(v) = value.trim().trim_end_matches('}').trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut industry01 = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => baseline_path = iter.next().cloned(),
            "--industry01-paper" => industry01 = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut metrics = Vec::new();
    metrics.extend(measure_small_suite());
    let unprobed_ns = metrics
        .iter()
        .find(|m| m.name == "implication_ns_per_gate_eval")
        .map(|m| m.value)
        .unwrap_or(f64::NAN);
    metrics.extend(measure_probed_small_suite(unprobed_ns));
    metrics.extend(measure_datapath());
    metrics.extend(measure_cdcl());
    metrics.extend(measure_portfolio());
    metrics.extend(measure_service());
    metrics.extend(measure_server_restart());
    if industry01 {
        metrics.extend(measure_industry01_paper());
    }
    println!("{}", render_json(&metrics));

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_baseline(&text);
        let mut failures = Vec::new();
        for m in metrics.iter().filter(|m| m.tracked) {
            // A tracked metric that degenerated to NaN/inf (e.g. a workload
            // that stopped exercising its hot path, making the denominator
            // zero) must fail the gate, not silently pass every comparison.
            if !m.value.is_finite() {
                failures.push(format!("{}: live value {} is not finite", m.name, m.value));
                continue;
            }
            let Some((_, base)) = baseline.iter().find(|(k, _)| k == m.name) else {
                continue;
            };
            // Noise floors keep the gate robust on slow shared CI runners:
            // tiny wall-clock workloads and per-eval latencies vary with
            // machine class, while allocs_per_gate_eval is deterministic and
            // carries the gate with no floor at all.
            let floor = if m.name.ends_with("_wall_s") {
                0.05
            } else if m.name.ends_with("_ns_per_gate_eval") {
                1500.0
            } else if m.name.ends_with("_ns_per_arith_call") {
                3000.0
            } else {
                0.0
            };
            if m.value > (base.max(floor)) * 3.0 {
                failures.push(format!(
                    "{}: live {:.6} > 3x baseline {:.6}",
                    m.name, m.value, base
                ));
            }
        }
        if failures.is_empty() {
            eprintln!("perf check OK against {path}");
        } else {
            for f in &failures {
                eprintln!("PERF REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
