//! Compares the word-level ATPG + modular arithmetic checker against the
//! bit-level SAT BMC baseline and random simulation — the paper's qualitative
//! claims about memory efficiency and robustness against corner cases.
//!
//! Usage: `cargo run -p wlac-bench --release --bin compare`

use wlac_baselines::{bounded_model_check, random_simulation, BmcOutcome};
use wlac_bench::run_case;
use wlac_circuits::{paper_suite, Scale};

fn main() {
    println!("== ATPG + modular arithmetic vs bit-level SAT BMC vs random simulation ==");
    println!(
        "{:<13} {:>4} | {:>10} {:>9} | {:>10} {:>9} {:>9} | {:>10}",
        "ckt_name", "prop", "atpg cpu", "atpg MB", "bmc cpu", "bmc MB", "bmc out", "random"
    );
    let suite = paper_suite(Scale::Small);
    // The comparison focuses on the safety properties plus one witness per
    // circuit class (the same problems, solved by all three engines).
    for case in suite {
        let report = run_case(&case);
        let bmc = bounded_model_check(&case.verification, 6, 2_000_000);
        let bmc_out = match bmc.outcome {
            BmcOutcome::HoldsUpToBound => "holds",
            BmcOutcome::Found { .. } => "found",
            BmcOutcome::Unknown => "unknown",
        };
        let random = random_simulation(&case.verification, 16, 16, 1);
        println!(
            "{:<13} {:>4} | {:>9.2}s {:>8.2} | {:>9.2}s {:>8.2} {:>9} | {}",
            case.circuit,
            case.property,
            report.stats.cpu_seconds(),
            report.stats.peak_memory_mb(),
            bmc.elapsed.as_secs_f64(),
            bmc.peak_memory_bytes as f64 / (1024.0 * 1024.0),
            bmc_out,
            if random.target_hit { "hit" } else { "miss" },
        );
    }
    println!();
    println!(
        "expected shape (paper sections 1 and 5): the word-level engine's memory grows\n\
         with circuit size x timeframes while the bit-blasted CNF grows with bit width;\n\
         random simulation misses the deterministic witnesses it is not steered towards."
    );
}
