//! Reproduces the paper's Table 1: circuit statistics of the nine designs.
//!
//! Usage: `cargo run -p wlac-bench --release --bin table1 [-- --scale paper|small]`

use wlac_circuits::{circuit_statistics, paper_table1, Scale};
use wlac_netlist::CircuitStats;

fn main() {
    let scale = if std::env::args().any(|a| a == "small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    println!("== Table 1: circuit statistics (our generators, {scale:?} scale) ==");
    println!("{}", CircuitStats::table_header());
    for stats in circuit_statistics(scale) {
        println!("{stats}");
    }
    println!();
    println!("== Table 1 as reported in the paper (for reference) ==");
    println!("{}", CircuitStats::table_header());
    for stats in paper_table1() {
        println!("{stats}");
    }
    println!();
    println!(
        "note: industry_01/industry_02 are synthetic stand-ins scaled down from the\n\
         proprietary originals; see DESIGN.md section 4 for the substitution rationale."
    );
}
