//! Benches regenerating the paper's evaluation artefacts:
//!
//! * `table2/*` — the fourteen property checks of Table 2 (small scale),
//! * `fig3_adder_implication`, `fig4_comparator_implication` — the worked
//!   implication examples of Figs. 3 and 4,
//! * `fig5_modular_linear_solver`, `section4_example` — the modular linear
//!   solver examples of Section 4.1 / Fig. 5,
//! * `scaling/*` — decoder-size scaling of the ATPG checker vs the
//!   bit-level SAT BMC baseline (the memory/scalability claim).
//!
//! The workspace builds offline, so this is a plain `harness = false` bench
//! with a small built-in timing loop instead of Criterion. Run with
//! `cargo bench -p wlac-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};
use wlac_atpg::{AssertionChecker, CheckerOptions};
use wlac_baselines::bounded_model_check;
use wlac_bench::{harness_options, run_case};
use wlac_bv::arith::{gt3, sub3};
use wlac_bv::Bv3;
use wlac_circuits::{paper_suite, AddrDecoder, AddrDecoderConfig, Scale};
use wlac_modsolve::{LinearSystem, Ring};

/// Calls `f` repeatedly for roughly `budget` (at least 3 times) and prints
/// the mean and minimum wall-clock time per call.
fn bench<T>(name: &str, budget: Duration, mut f: impl FnMut() -> T) {
    // Warm-up call (also seeds the minimum).
    let start = Instant::now();
    black_box(f());
    let first = start.elapsed();
    let mut iters = 1u32;
    let mut total = first;
    let mut min = first;
    while total < budget || iters < 3 {
        let start = Instant::now();
        black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
        iters += 1;
        if iters >= 10_000 {
            break;
        }
    }
    let mean = total / iters;
    println!("{name:<45} iters {iters:>5}   mean {mean:>12?}   min {min:>12?}");
}

fn bench_table2(budget: Duration) {
    for case in paper_suite(Scale::Small) {
        let id = format!("table2/{}_{}", case.circuit, case.property);
        bench(&id, budget, || run_case(&case));
    }
}

fn bench_figures(budget: Duration) {
    let out: Bv3 = "4'b0111".parse().unwrap();
    let addend: Bv3 = "4'b1x1x".parse().unwrap();
    bench("fig3_adder_implication", budget, || sub3(&out, &addend));
    let a: Bv3 = "4'bx01x".parse().unwrap();
    let bb: Bv3 = "4'b1x0x".parse().unwrap();
    bench("fig4_comparator_implication", budget, || gt3(&a, &bb));
    bench("section4_example_2x2_mod8", budget, || {
        let mut sys = LinearSystem::new(Ring::new(3), 2);
        sys.add_equation(&[1, 1], 5);
        sys.add_equation(&[2, 7], 4);
        sys.solve().unwrap()
    });
    // A 2-equation, 4-variable 4-bit system in the shape of Fig. 5's linear
    // adder network (two outputs, four inputs, free variables).
    bench("fig5_modular_linear_solver_4bit", budget, || {
        let mut sys = LinearSystem::new(Ring::new(4), 4);
        sys.add_equation(&[3, 1, 15, 14], 2);
        sys.add_equation(&[1, 2, 14, 0], 10);
        sys.solve().unwrap()
    });
}

fn bench_scaling(budget: Duration) {
    for addr_bits in [2usize, 3, 4] {
        let decoder = AddrDecoder::new(AddrDecoderConfig {
            addr_bits,
            cells: 2,
            cell_width: 8,
        });
        let verification = decoder.p2_selects_mutually_exclusive();
        let mut options = harness_options();
        options.max_frames = 2;
        bench(&format!("scaling/atpg_p2/{addr_bits}"), budget, || {
            AssertionChecker::new(options.clone()).check(&verification)
        });
        bench(&format!("scaling/sat_bmc_p2/{addr_bits}"), budget, || {
            bounded_model_check(&verification, 2, 500_000)
        });
    }
}

fn bench_wide_implication(budget: Duration) {
    // Word-level implication over a 152-bit bus (the industry_02 width):
    // the cost of one adder backward implication stays small because buses
    // are handled as words, not bits.
    let out = Bv3::all_x(152);
    let addend = Bv3::from_bv(&wlac_bv::Bv::ones(152));
    bench("implication_152bit_adder_backward", budget, || {
        sub3(&out, &addend)
    });
    bench("checker_default_options_construction", budget, || {
        CheckerOptions::default()
    });
}

fn main() {
    // Short measurement windows so a full run completes in a few minutes.
    let budget = Duration::from_secs(2);
    println!("wlac paper benches (mean / min wall-clock per call)\n");
    bench_table2(budget);
    bench_figures(budget);
    bench_scaling(budget);
    bench_wide_implication(budget);
}
