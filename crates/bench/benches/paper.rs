//! Criterion benches regenerating the paper's evaluation artefacts:
//!
//! * `table2/*` — the fourteen property checks of Table 2 (small scale),
//! * `fig3_adder_implication`, `fig4_comparator_implication` — the worked
//!   implication examples of Figs. 3 and 4,
//! * `fig5_modular_linear_solver`, `section4_example` — the modular linear
//!   solver examples of Section 4.1 / Fig. 5,
//! * `scaling/*` — decoder-size scaling of the ATPG checker vs the
//!   bit-level SAT BMC baseline (the memory/scalability claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wlac_atpg::{AssertionChecker, CheckerOptions};
use wlac_baselines::bounded_model_check;
use wlac_bench::{harness_options, run_case};
use wlac_bv::arith::{gt3, sub3};
use wlac_bv::Bv3;
use wlac_circuits::{paper_suite, AddrDecoder, AddrDecoderConfig, Scale};
use wlac_modsolve::{LinearSystem, Ring};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for case in paper_suite(Scale::Small) {
        let id = format!("{}_{}", case.circuit, case.property);
        group.bench_function(BenchmarkId::from_parameter(id), |b| {
            b.iter(|| run_case(&case))
        });
    }
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    c.bench_function("fig3_adder_implication", |b| {
        let out: Bv3 = "4'b0111".parse().unwrap();
        let addend: Bv3 = "4'b1x1x".parse().unwrap();
        b.iter(|| sub3(&out, &addend))
    });
    c.bench_function("fig4_comparator_implication", |b| {
        let a: Bv3 = "4'bx01x".parse().unwrap();
        let bb: Bv3 = "4'b1x0x".parse().unwrap();
        b.iter(|| gt3(&a, &bb))
    });
    c.bench_function("section4_example_2x2_mod8", |b| {
        b.iter(|| {
            let mut sys = LinearSystem::new(Ring::new(3), 2);
            sys.add_equation(&[1, 1], 5);
            sys.add_equation(&[2, 7], 4);
            sys.solve().unwrap()
        })
    });
    c.bench_function("fig5_modular_linear_solver_4bit", |b| {
        // A 2-equation, 4-variable 4-bit system in the shape of Fig. 5's
        // linear adder network (two outputs, four inputs, free variables).
        b.iter(|| {
            let mut sys = LinearSystem::new(Ring::new(4), 4);
            sys.add_equation(&[3, 1, 15, 14], 2);
            sys.add_equation(&[1, 2, 14, 0], 10);
            sys.solve().unwrap()
        })
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for addr_bits in [2usize, 3, 4] {
        let decoder = AddrDecoder::new(AddrDecoderConfig {
            addr_bits,
            cells: 2,
            cell_width: 8,
        });
        let verification = decoder.p2_selects_mutually_exclusive();
        group.bench_with_input(
            BenchmarkId::new("atpg_p2", addr_bits),
            &verification,
            |b, v| {
                let mut options = harness_options();
                options.max_frames = 2;
                b.iter(|| AssertionChecker::new(options.clone()).check(v))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sat_bmc_p2", addr_bits),
            &verification,
            |b, v| b.iter(|| bounded_model_check(v, 2, 500_000)),
        );
    }
    group.finish();
}

fn bench_wide_implication(c: &mut Criterion) {
    // Word-level implication over a 152-bit bus (the industry_02 width):
    // the cost of one adder backward implication stays small because buses
    // are handled as words, not bits.
    c.bench_function("implication_152bit_adder_backward", |b| {
        let out = Bv3::all_x(152);
        let addend = Bv3::from_bv(&wlac_bv::Bv::ones(152));
        b.iter(|| sub3(&out, &addend))
    });
    c.bench_function("checker_default_options_construction", |b| {
        b.iter(CheckerOptions::default)
    });
}

/// Short warm-up and measurement windows so a full `cargo bench` run over all
/// table/figure benches completes in a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_table2, bench_figures, bench_scaling, bench_wide_implication
}
criterion_main!(benches);
