//! Hammers the flight recorder from many concurrent writers while a reader
//! snapshots mid-storm, proving the lock-free ring's contracts hold under
//! contention:
//!
//! * the total-recorded counter is exact (every `record` call is counted
//!   once, no lost updates);
//! * the overwrite count is exactly `recorded - capacity` once saturated;
//! * every event a snapshot returns is *valid* — decodable layer and kind,
//!   a payload consistent with what some writer actually wrote — i.e. torn
//!   slots are dropped, never surfaced as garbage;
//! * after the storm, a quiescent snapshot holds exactly the newest
//!   `capacity` events in sequence order with no duplicates.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use wlac_telemetry::{FlightRecorder, RecorderHandle, RecorderKind, RecorderLayer};

const WRITERS: u64 = 8;
const EVENTS_PER_WRITER: u64 = 20_000;
const CAPACITY: usize = 512;

/// Each writer tags its payload so a reader can verify any surfaced event
/// was genuinely written by somebody: payload0 = writer id, payload1 =
/// writer-local index, job = writer id.
#[test]
fn concurrent_writers_keep_counters_and_slots_consistent() {
    let recorder = Arc::new(FlightRecorder::new(CAPACITY));
    let stop = Arc::new(AtomicBool::new(false));

    // A reader snapshots continuously while writers are mid-storm; every
    // event it sees must decode to something a writer really wrote.
    let reader = {
        let recorder = recorder.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for event in recorder.snapshot() {
                    assert!(event.payload[0] < WRITERS, "garbage writer id surfaced");
                    assert!(
                        event.payload[1] < EVENTS_PER_WRITER,
                        "garbage event index surfaced"
                    );
                    assert_eq!(
                        event.job, event.payload[0],
                        "job and writer tag written together must surface together"
                    );
                    assert_eq!(event.layer, RecorderLayer::Service);
                    assert_eq!(event.kind, RecorderKind::Dequeue);
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let handle = RecorderHandle::to(recorder.clone()).with_job(w);
            thread::spawn(move || {
                for i in 0..EVENTS_PER_WRITER {
                    handle.record(RecorderLayer::Service, RecorderKind::Dequeue, w, i);
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer thread");
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().expect("reader thread");
    assert!(snapshots > 0, "the reader must have raced the writers");

    // Counter consistency: no lost ticket claims.
    let total = WRITERS * EVENTS_PER_WRITER;
    assert_eq!(recorder.recorded(), total);
    assert_eq!(recorder.overwrites(), total - CAPACITY as u64);
    assert_eq!(recorder.capacity(), CAPACITY);

    // Quiescent snapshot: exactly the newest `capacity` events, strictly
    // increasing sequence numbers, no duplicates, nothing older than the
    // overwrite horizon.
    let events = recorder.snapshot();
    assert_eq!(events.len(), CAPACITY, "no slot is torn once writers stop");
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "sequence order with no dupes");
    }
    for event in &events {
        assert!(event.seq >= total - CAPACITY as u64);
        assert!(event.seq < total);
    }

    // Per-writer sanity: a writer's surviving events are in its own order.
    for w in 0..WRITERS {
        let indices: Vec<u64> = events
            .iter()
            .filter(|e| e.job == w)
            .map(|e| e.payload[1])
            .collect();
        assert!(
            indices.windows(2).all(|p| p[0] < p[1]),
            "writer {w} events out of order: {indices:?}"
        );
    }
}
