//! Proves the telemetry hot path upholds the workspace's zero-alloc
//! steady-state contract: once handles are registered and the tracer ring is
//! at capacity, recording counters, gauges, histogram samples and trace
//! events performs **zero heap allocations**. Only registration, snapshots
//! and rendering — setup and scrape time — may allocate.
//!
//! Same discipline as `crates/core/tests/alloc_free.rs`: a counting global
//! allocator, a warm-up pass, then the minimum delta over several attempts
//! must be exactly zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use wlac_telemetry::{
    FlightRecorder, MetricsRegistry, RecorderHandle, RecorderKind, RecorderLayer, SpanId, Tracer,
};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn min_alloc_delta(attempts: usize, mut work: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..attempts {
        let before = allocs();
        work();
        best = best.min(allocs() - before);
    }
    best
}

#[test]
fn hot_path_recording_allocates_nothing() {
    // Setup (may allocate): registry, handles, tracer.
    let registry = MetricsRegistry::new();
    let counter = registry.counter("core_decisions_total");
    let gauge = registry.gauge("service_queue_depth");
    let histogram = registry.histogram("request_wall_ns");
    let tracer = Tracer::new(256);
    let recorder = std::sync::Arc::new(FlightRecorder::new(256));
    let handle = RecorderHandle::to(recorder.clone()).with_job(7);

    // Warm-up: fill the tracer ring past capacity so every later push
    // overwrites in place, and touch every histogram bucket once. The flight
    // recorder's ring is pre-allocated at construction, so recording into it
    // is in-place from the first event — but wrap it past capacity anyway so
    // the steady state below exercises the overwrite path.
    let span = tracer.span_start("warmup", SpanId::ROOT);
    for i in 0..512u64 {
        counter.inc();
        gauge.set(i as f64);
        histogram.record(1u64 << (i % 60));
        tracer.event("tick", span, i);
        handle.record(RecorderLayer::Core, RecorderKind::Bound, i, 0);
    }

    // Steady state: pure recording must not allocate.
    let delta = min_alloc_delta(5, || {
        for i in 0..10_000u64 {
            counter.add(2);
            gauge.add(1.0);
            gauge.sub(1.0);
            histogram.record(i.wrapping_mul(2_654_435_761));
            tracer.event("decision", span, i);
            handle.record(RecorderLayer::Service, RecorderKind::Dequeue, i, 1);
        }
    });
    assert_eq!(
        delta, 0,
        "metric/trace recording must be allocation-free after warm-up"
    );
    assert!(counter.get() >= 512 + 5 * 20_000);
    assert!(histogram.count() >= 512 + 5 * 10_000);
    assert!(
        tracer.dropped() > 0,
        "ring must have wrapped during the test"
    );
    assert!(
        recorder.overwrites() > 0,
        "flight-recorder ring must have wrapped during the test"
    );
    assert_eq!(recorder.recorded(), 512 + 5 * 10_000);
}
