//! Live search-progress cells: a lock-free, alloc-free seqlock the core
//! search publishes in-flight effort counters into, and that any observer
//! (the service's progress accessors, the server's `progress`/`subscribe`
//! ops) can snapshot at any moment without perturbing the writer.
//!
//! One [`ProgressCell`] belongs to one engine run: the engine thread is the
//! only writer, readers are arbitrary. Writes follow the same seqlock
//! discipline as the flight recorder's slots — bump the stamp to odd, store
//! the fields, bump the stamp to even — and readers retry until they observe
//! the same even stamp on both sides of the field reads, so a snapshot is
//! never torn. Every store and load is a plain relaxed/acquire-release
//! atomic on a pre-allocated cell: publishing a probe performs **zero heap
//! allocations** and takes no locks, which is what lets the steady-state
//! search path keep its allocation-free contract with probes enabled
//! (`crates/core/tests/alloc_free.rs` enforces it with a counting
//! allocator).
//!
//! The disabled default ([`ProgressHandle::disabled`]) costs one branch per
//! publication site, exactly like [`crate::RecorderHandle`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time snapshot of one engine's search effort.
///
/// Every field comes from counters the search already maintains
/// (`CheckStats`, the phase clock): the probe adds no bookkeeping of its
/// own, only periodic publication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressProbe {
    /// Current unrolling bound (time-frames) the search is exploring;
    /// 0 until the first bound is entered.
    pub bound: u64,
    /// Branch-and-bound decisions taken so far.
    pub decisions: u64,
    /// Conflicts hit so far (implication conflicts and datapath
    /// infeasibility proofs).
    pub conflicts: u64,
    /// Chronological backtracks so far.
    pub backtracks: u64,
    /// Fresh searches started (one per bound advance — the word-level
    /// analogue of a restart).
    pub restarts: u64,
    /// Gate implication evaluations so far.
    pub implications: u64,
    /// Phase-attributed wall-clock nanoseconds so far (0 unless the run is
    /// traced; the phase clock stays dead on the default path).
    pub phase_nanos: u64,
    /// Number of probe publications into the cell (0 = never published).
    pub probes: u64,
}

impl ProgressProbe {
    /// Merges another engine's probe into a per-job aggregate: counters sum,
    /// the bound is the deepest any engine reached.
    pub fn absorb(&mut self, other: &ProgressProbe) {
        let ProgressProbe {
            bound,
            decisions,
            conflicts,
            backtracks,
            restarts,
            implications,
            phase_nanos,
            probes,
        } = other;
        self.bound = self.bound.max(*bound);
        self.decisions += decisions;
        self.conflicts += conflicts;
        self.backtracks += backtracks;
        self.restarts += restarts;
        self.implications += implications;
        self.phase_nanos += phase_nanos;
        self.probes += probes;
    }
}

/// The shared, lock-free cell one engine publishes its progress into.
///
/// Single writer (the engine thread), any number of readers. All state is
/// pre-allocated at construction; publication and snapshotting never
/// allocate.
#[derive(Debug, Default)]
pub struct ProgressCell {
    /// Seqlock stamp: odd while a write is in flight, even when stable.
    stamp: AtomicU64,
    bound: AtomicU64,
    decisions: AtomicU64,
    conflicts: AtomicU64,
    backtracks: AtomicU64,
    restarts: AtomicU64,
    implications: AtomicU64,
    phase_nanos: AtomicU64,
    probes: AtomicU64,
}

impl ProgressCell {
    /// Creates an empty cell (stamp stable, every counter zero).
    pub fn new() -> Self {
        ProgressCell::default()
    }

    /// Opens a write section: readers observing the odd stamp retry.
    fn write_begin(&self) -> u64 {
        let stamp = self.stamp.load(Ordering::Relaxed);
        self.stamp.store(stamp | 1, Ordering::Release);
        stamp
    }

    /// Closes a write section, publishing the stores since
    /// [`ProgressCell::write_begin`].
    fn write_end(&self, stamp: u64) {
        self.stamp
            .store((stamp | 1).wrapping_add(1), Ordering::Release);
    }

    /// Records a bound advance: the search entered frame bound `bound`,
    /// which also counts as a restart (each bound is a fresh search).
    pub fn advance_bound(&self, bound: u64) {
        let stamp = self.write_begin();
        self.bound.store(bound, Ordering::Relaxed);
        let restarts = self.restarts.load(Ordering::Relaxed);
        self.restarts.store(restarts + 1, Ordering::Relaxed);
        self.write_end(stamp);
    }

    /// Publishes the in-flight effort counters (everything except the bound
    /// and restart count, which [`ProgressCell::advance_bound`] owns).
    pub fn publish(
        &self,
        decisions: u64,
        conflicts: u64,
        backtracks: u64,
        implications: u64,
        phase_nanos: u64,
    ) {
        let stamp = self.write_begin();
        self.decisions.store(decisions, Ordering::Relaxed);
        self.conflicts.store(conflicts, Ordering::Relaxed);
        self.backtracks.store(backtracks, Ordering::Relaxed);
        self.implications.store(implications, Ordering::Relaxed);
        self.phase_nanos.store(phase_nanos, Ordering::Relaxed);
        let probes = self.probes.load(Ordering::Relaxed);
        self.probes.store(probes + 1, Ordering::Relaxed);
        self.write_end(stamp);
    }

    /// Stores a complete probe — every field at once, including the bound
    /// and restart count. This is the supervisor-side entry point: when an
    /// engine answers, its final statistics (which may come from a source
    /// that never published live, like the SAT or simulation engines)
    /// overwrite the cell in one write section. The publication count
    /// increments by one; `probe.probes` is ignored.
    pub fn store(&self, probe: &ProgressProbe) {
        let stamp = self.write_begin();
        self.bound.store(probe.bound, Ordering::Relaxed);
        self.decisions.store(probe.decisions, Ordering::Relaxed);
        self.conflicts.store(probe.conflicts, Ordering::Relaxed);
        self.backtracks.store(probe.backtracks, Ordering::Relaxed);
        self.restarts.store(probe.restarts, Ordering::Relaxed);
        self.implications
            .store(probe.implications, Ordering::Relaxed);
        self.phase_nanos.store(probe.phase_nanos, Ordering::Relaxed);
        let probes = self.probes.load(Ordering::Relaxed);
        self.probes.store(probes + 1, Ordering::Relaxed);
        self.write_end(stamp);
    }

    /// Reads a consistent snapshot. Retries while a write is in flight; if
    /// the writer is pathologically fast the last (possibly torn) read is
    /// returned after a bounded number of attempts — progress data is
    /// advisory and a rare torn snapshot only misreports counters for one
    /// tick, it can never corrupt the cell.
    pub fn snapshot(&self) -> ProgressProbe {
        for _ in 0..64 {
            let before = self.stamp.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let probe = self.read_fields();
            let after = self.stamp.load(Ordering::Acquire);
            if before == after {
                return probe;
            }
        }
        self.read_fields()
    }

    fn read_fields(&self) -> ProgressProbe {
        ProgressProbe {
            bound: self.bound.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            backtracks: self.backtracks.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            implications: self.implications.load(Ordering::Relaxed),
            phase_nanos: self.phase_nanos.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }

    /// `true` once at least one probe has been published.
    pub fn has_published(&self) -> bool {
        self.probes.load(Ordering::Relaxed) > 0
    }
}

/// A cloneable handle the search publishes through; the disabled default
/// (no cell attached) makes every publication a single branch, so the cold
/// path stays byte-identical in behaviour and allocation profile.
#[derive(Debug, Clone, Default)]
pub struct ProgressHandle {
    cell: Option<Arc<ProgressCell>>,
}

impl ProgressHandle {
    /// A handle that discards every publication (the default).
    pub fn disabled() -> Self {
        ProgressHandle::default()
    }

    /// A handle publishing into `cell`.
    pub fn to(cell: Arc<ProgressCell>) -> Self {
        ProgressHandle { cell: Some(cell) }
    }

    /// `true` when a cell is attached.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// The attached cell, if any.
    pub fn cell(&self) -> Option<&Arc<ProgressCell>> {
        self.cell.as_ref()
    }

    /// Records a bound advance (no-op when disabled).
    pub fn advance_bound(&self, bound: u64) {
        if let Some(cell) = &self.cell {
            cell.advance_bound(bound);
        }
    }

    /// Publishes in-flight effort counters (no-op when disabled).
    pub fn publish(
        &self,
        decisions: u64,
        conflicts: u64,
        backtracks: u64,
        implications: u64,
        phase_nanos: u64,
    ) {
        if let Some(cell) = &self.cell {
            cell.publish(decisions, conflicts, backtracks, implications, phase_nanos);
        }
    }

    /// Stores a complete probe (no-op when disabled); see
    /// [`ProgressCell::store`].
    pub fn store(&self, probe: &ProgressProbe) {
        if let Some(cell) = &self.cell {
            cell.store(probe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_swallows_everything() {
        let handle = ProgressHandle::disabled();
        assert!(!handle.is_enabled());
        assert!(handle.cell().is_none());
        handle.advance_bound(3);
        handle.publish(1, 2, 3, 4, 5);
    }

    #[test]
    fn publication_round_trips_through_a_snapshot() {
        let cell = Arc::new(ProgressCell::new());
        let handle = ProgressHandle::to(cell.clone());
        assert!(handle.is_enabled());
        assert!(!cell.has_published());
        assert_eq!(cell.snapshot(), ProgressProbe::default());

        handle.advance_bound(1);
        handle.publish(10, 2, 3, 400, 5_000);
        handle.advance_bound(2);
        handle.publish(20, 4, 6, 800, 9_000);

        let probe = cell.snapshot();
        assert_eq!(probe.bound, 2);
        assert_eq!(probe.restarts, 2);
        assert_eq!(probe.decisions, 20);
        assert_eq!(probe.conflicts, 4);
        assert_eq!(probe.backtracks, 6);
        assert_eq!(probe.implications, 800);
        assert_eq!(probe.phase_nanos, 9_000);
        assert_eq!(probe.probes, 2);
        assert!(cell.has_published());
    }

    #[test]
    fn store_overwrites_every_field_and_counts_the_publication() {
        let cell = Arc::new(ProgressCell::new());
        cell.publish(5, 1, 1, 50, 0);
        let final_probe = ProgressProbe {
            bound: 7,
            decisions: 100,
            conflicts: 8,
            backtracks: 9,
            restarts: 7,
            implications: 4_000,
            phase_nanos: 12_345,
            probes: 999, // ignored: the cell owns its publication count
        };
        ProgressHandle::to(cell.clone()).store(&final_probe);
        let probe = cell.snapshot();
        assert_eq!(probe.probes, 2);
        assert_eq!(
            probe,
            ProgressProbe {
                probes: 2,
                ..final_probe
            }
        );
    }

    #[test]
    fn absorb_sums_counters_and_maxes_the_bound() {
        let mut a = ProgressProbe {
            bound: 3,
            decisions: 10,
            conflicts: 1,
            backtracks: 2,
            restarts: 3,
            implications: 100,
            phase_nanos: 50,
            probes: 4,
        };
        let b = ProgressProbe {
            bound: 2,
            decisions: 5,
            conflicts: 2,
            backtracks: 1,
            restarts: 2,
            implications: 40,
            phase_nanos: 25,
            probes: 1,
        };
        a.absorb(&b);
        assert_eq!(a.bound, 3);
        assert_eq!(a.decisions, 15);
        assert_eq!(a.conflicts, 3);
        assert_eq!(a.backtracks, 3);
        assert_eq!(a.restarts, 5);
        assert_eq!(a.implications, 140);
        assert_eq!(a.phase_nanos, 75);
        assert_eq!(a.probes, 5);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_mixed_snapshot() {
        // The writer always publishes decisions == implications; any reader
        // observing a mismatch caught a torn snapshot, which the seqlock
        // must prevent (outside the bounded-retry escape hatch, which this
        // slow writer never triggers).
        let cell = Arc::new(ProgressCell::new());
        let writer_cell = cell.clone();
        let writer = std::thread::spawn(move || {
            for i in 1..=10_000u64 {
                writer_cell.publish(i, 0, 0, i, 0);
            }
        });
        let mut last = 0;
        while last < 10_000 {
            let probe = cell.snapshot();
            assert_eq!(
                probe.decisions, probe.implications,
                "torn snapshot: {probe:?}"
            );
            assert!(probe.decisions >= last, "progress must be monotonic");
            last = probe.decisions;
        }
        writer.join().expect("writer thread");
    }
}
