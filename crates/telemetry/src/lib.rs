//! # wlac-telemetry — the observability core of the workspace
//!
//! Every layer of the checker — the word-level ATPG decision loop, the
//! engine portfolio, the verification service and the network server —
//! reports into the two primitives defined here:
//!
//! * [`MetricsRegistry`] — a name-keyed registry of atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed latency [`Histogram`]s. Handles are
//!   registered once (allocating) and recorded through forever after with
//!   plain relaxed atomics: the hot path takes no locks and performs no heap
//!   allocation, so the zero-alloc steady-state guarantee of the core search
//!   (`crates/core/tests/alloc_free.rs`) survives instrumentation. The
//!   registry renders itself as Prometheus-style text and as a flat JSON
//!   object; `perf_json` and the server's `metrics` op share that code, so
//!   BENCH numbers and live telemetry cannot diverge in format.
//! * [`Tracer`] — a hierarchical span/event recorder backed by a bounded
//!   pre-allocated ring buffer. Names are `&'static str` and payloads are
//!   plain integers, so emitting an event never allocates; when the ring
//!   wraps, the oldest events are dropped and counted. Snapshots export as
//!   JSONL, one event per line.
//! * [`FlightRecorder`] — the always-on black box: a lock-free, alloc-free
//!   ring of compact structured events (layer, kind, job id, monotonic
//!   nanos, two payload words) every layer emits into via a shared
//!   [`RecorderHandle`], so the last N events of system behavior are always
//!   reconstructable for a post-mortem dump or a remote `events` tail.
//! * [`ProgressCell`] — a per-engine seqlock cell the core search publishes
//!   live effort counters into through a [`ProgressHandle`]; observers
//!   snapshot it at any moment (the `progress`/`subscribe` ops) without
//!   locks, allocations or any effect on the search.
//!
//! The crate is std-only and dependency-free by design: it sits below every
//! other crate in the workspace and must never pull the build online.
//!
//! # Examples
//!
//! ```
//! use wlac_telemetry::{MetricsRegistry, Tracer, SpanId};
//!
//! let registry = MetricsRegistry::new();
//! let decisions = registry.counter("core_decisions_total");
//! let latency = registry.histogram("request_wall_ns");
//! decisions.inc();
//! latency.record(1_500);
//! assert!(registry.render_prometheus().contains("core_decisions_total 1"));
//!
//! let tracer = Tracer::new(64);
//! let span = tracer.span_start("search", SpanId::ROOT);
//! tracer.event("decision", span, 7);
//! tracer.span_end(span, "search");
//! assert_eq!(tracer.events().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod progress;
mod recorder;
mod tracer;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry};
pub use progress::{ProgressCell, ProgressHandle, ProgressProbe};
pub use recorder::{FlightEvent, FlightRecorder, RecorderHandle, RecorderKind, RecorderLayer};
pub use tracer::{SpanId, TraceEvent, TraceEventKind, Tracer};
