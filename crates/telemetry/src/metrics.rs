//! Atomic metric primitives and the name-keyed registry.
//!
//! Recording is the hot path: [`Counter::add`], [`Gauge::set`] and
//! [`Histogram::record`] are relaxed-atomic operations with no locks and no
//! heap traffic. Registration and rendering take a `Mutex` and may allocate —
//! they run at setup and scrape time, never inside a search loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous `f64` value (queue depth, utilization, a BENCH metric).
///
/// The float is stored as its bit pattern in an `AtomicU64`; `add`/`sub` use
/// a compare-and-swap loop, so the gauge stays lock-free under contention.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (negative to subtract) with a CAS loop.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Subtract `delta`.
    #[inline]
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of logarithmic buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`, and the last bucket is open-ended.
const BUCKETS: usize = 64;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Recording touches three relaxed atomics (bucket, count+sum, max) — no
/// locks, no allocation — so it is safe inside the zero-alloc decision loop.
/// Quantiles are reconstructed from the bucket counts at scrape time with
/// linear interpolation inside the winning bucket; `max` is exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for 0, otherwise `floor(log2(v)) + 1`.
#[inline]
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive value range `[lo, hi]` covered by bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        i if i >= BUCKETS - 1 => (1u64 << (BUCKETS - 2), u64::MAX),
        i => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q ∈ [0, 1]`, interpolated within the
    /// bucket containing the target rank. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: quantile q covers the first
        // ceil(q * count) samples in sorted order.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let here = bucket.load(Ordering::Relaxed);
            if here == 0 {
                continue;
            }
            if seen + here >= rank {
                let (lo, hi) = bucket_bounds(index);
                // Cap the open top bucket at the observed maximum so the
                // estimate never exceeds any recorded sample.
                let hi = hi.min(self.max());
                let within = (rank - seen) as f64 / here as f64;
                return lo + ((hi.saturating_sub(lo)) as f64 * within) as u64;
            }
            seen += here;
        }
        self.max()
    }

    /// A consistent point-in-time summary of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Scrape-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// One named metric in the registry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A scrape-time value of one named metric, as exposed by
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(f64),
    /// A histogram summary.
    Histogram(HistogramSnapshot),
}

/// Name-keyed registry of counters, gauges and histograms.
///
/// `counter`/`gauge`/`histogram` get-or-create: the first call for a name
/// allocates the metric, later calls return the same handle. Asking for an
/// existing name with a different kind is a programming error and panics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        if let Some((_, metric)) = metrics.iter().find(|(n, _)| n == name) {
            return metric.clone();
        }
        let metric = make();
        metrics.push((name.to_string(), metric.clone()));
        metric
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// All registered metrics with their current values, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let mut out: Vec<(String, MetricValue)> = self
            .metrics
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Prometheus-style text exposition: `# TYPE` lines followed by samples;
    /// histograms render as summaries with `quantile` labels plus `_count`
    /// and `_sum` samples, and the observed maximum as a separately-typed
    /// `_max` gauge.
    ///
    /// A summary family consists of exactly `name{quantile=…}`, `name_count`
    /// and `name_sum`; strict scrapers reject any other sample under its
    /// `# TYPE` declaration, so `_max` — which is not part of the summary
    /// vocabulary — gets its own `# TYPE … gauge` line instead of riding
    /// untyped inside the summary block.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", render_f64(v)));
                }
                MetricValue::Histogram(s) => {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", s.p50));
                    out.push_str(&format!("{name}{{quantile=\"0.9\"}} {}\n", s.p90));
                    out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", s.p99));
                    out.push_str(&format!("{name}_count {}\n", s.count));
                    out.push_str(&format!("{name}_sum {}\n", s.sum));
                    out.push_str(&format!("# TYPE {name}_max gauge\n{name}_max {}\n", s.max));
                }
            }
        }
        out
    }

    /// Flat JSON object exposition: one `"name": value` pair per metric,
    /// histograms flattened to `name_count` / `name_sum` / `name_p50` /
    /// `name_p90` / `name_p99` / `name_max` pairs.
    pub fn render_json(&self) -> String {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => pairs.push((name, v.to_string())),
                MetricValue::Gauge(v) => pairs.push((name, render_f64(v))),
                MetricValue::Histogram(s) => {
                    pairs.push((format!("{name}_count"), s.count.to_string()));
                    pairs.push((format!("{name}_sum"), s.sum.to_string()));
                    pairs.push((format!("{name}_p50"), s.p50.to_string()));
                    pairs.push((format!("{name}_p90"), s.p90.to_string()));
                    pairs.push((format!("{name}_p99"), s.p99.to_string()));
                    pairs.push((format!("{name}_max"), s.max.to_string()));
                }
            }
        }
        let mut out = String::from("{\n");
        for (i, (name, value)) in pairs.iter().enumerate() {
            let comma = if i + 1 < pairs.len() { "," } else { "" };
            out.push_str(&format!("  \"{name}\": {value}{comma}\n"));
        }
        out.push('}');
        out
    }
}

/// JSON-safe float rendering: non-finite values (which valid JSON cannot
/// carry) degrade to 0.
fn render_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(2.5);
        g.add(1.0);
        g.sub(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Bounds are inclusive and partition the u64 range.
        for index in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            assert!(lo <= hi, "bucket {index}");
            assert_eq!(bucket_index(lo), index);
            assert_eq!(bucket_index(hi), index);
        }
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(4), (8, 15));
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let h = Histogram::new();
        // 100 samples: 1..=100. Log buckets blur within a bucket, but the
        // interpolated estimate must stay within the bucket of the true
        // quantile: p50 in [32,64), p90 in [64,128), p99 in [64,128).
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        let p50 = h.quantile(0.50);
        assert!((32..=63).contains(&p50), "p50 = {p50}");
        let p90 = h.quantile(0.90);
        assert!((64..=100).contains(&p90), "p90 = {p90}");
        let p99 = h.quantile(0.99);
        assert!((64..=100).contains(&p99), "p99 = {p99}");
        // The top bucket is capped at the observed max.
        assert!(h.quantile(1.0) <= 100);
        // Degenerate cases.
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0);
        let single = Histogram::new();
        single.record(777);
        assert_eq!(single.max(), 777);
        assert!(single.quantile(0.5) >= 512 && single.quantile(0.5) <= 777);
    }

    #[test]
    fn quantile_rank_is_one_based() {
        let h = Histogram::new();
        h.record(0);
        h.record(1_000_000);
        // The median of {0, big} must come from the first sample's bucket.
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.quantile(1.0) > 0);
    }

    #[test]
    fn registry_dedupes_and_renders() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests_total");
        let b = registry.counter("requests_total");
        a.inc();
        b.inc();
        assert_eq!(registry.counter("requests_total").get(), 2);
        registry.gauge("queue_depth").set(3.0);
        registry.histogram("wall_ns").record(1024);

        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 2"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 3"));
        assert!(text.contains("# TYPE wall_ns summary"));
        assert!(text.contains("wall_ns{quantile=\"0.5\"}"));
        assert!(text.contains("wall_ns_count 1"));
        assert!(text.contains("wall_ns_sum 1024"));
        assert!(text.contains("# TYPE wall_ns_max gauge"));
        assert!(text.contains("wall_ns_max 1024"));

        let json = registry.render_json();
        assert!(json.contains("\"requests_total\": 2"));
        assert!(json.contains("\"queue_depth\": 3"));
        assert!(json.contains("\"wall_ns_count\": 1"));
        assert!(json.contains("\"wall_ns_max\": 1024"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    /// What a strict scraper enforces: every sample belongs to a declared
    /// family, and a summary family carries only `name{quantile=…}`,
    /// `name_count` and `name_sum` samples. The `_max` sample must therefore
    /// arrive as its own typed gauge, never untyped inside the summary.
    #[test]
    fn prometheus_exposition_is_strictly_scrape_valid() {
        let registry = MetricsRegistry::new();
        registry.counter("jobs_total").add(3);
        registry.gauge("depth").set(1.0);
        registry.histogram("wall_ns").record(100);
        registry.histogram("wall_ns").record(900);

        let mut declared: std::collections::HashMap<String, String> =
            std::collections::HashMap::new();
        for line in registry.render_prometheus().lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("type line has a name");
                let kind = parts.next().expect("type line has a kind");
                assert!(parts.next().is_none(), "malformed TYPE line: {line}");
                declared.insert(name.to_string(), kind.to_string());
                continue;
            }
            let mut parts = line.split_whitespace();
            let sample = parts.next().expect("sample line has a name");
            let value = parts.next().expect("sample line has a value");
            assert!(parts.next().is_none(), "malformed sample line: {line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
            let bare = sample.split('{').next().expect("sample name");
            let family = declared
                .iter()
                .find_map(|(name, kind)| {
                    let member = match kind.as_str() {
                        "summary" => {
                            bare == name
                                || bare == format!("{name}_count")
                                || bare == format!("{name}_sum")
                        }
                        _ => bare == name,
                    };
                    member.then_some(kind.as_str())
                })
                .unwrap_or_else(|| panic!("sample {sample} has no TYPE declaration"));
            if sample.contains("{quantile=") {
                assert_eq!(family, "summary", "quantile sample outside a summary");
            }
        }
        assert_eq!(declared.get("wall_ns").map(String::as_str), Some("summary"));
        assert_eq!(
            declared.get("wall_ns_max").map(String::as_str),
            Some("gauge")
        );
    }

    #[test]
    fn json_rendering_is_flat_and_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter("b_total").inc();
        registry.gauge("a_ratio").set(0.25);
        let json = registry.render_json();
        let a = json.find("\"a_ratio\"").unwrap();
        let b = json.find("\"b_total\"").unwrap();
        assert!(a < b, "snapshot must sort by name");
        assert!(json.contains("\"a_ratio\": 0.25"));
    }
}
