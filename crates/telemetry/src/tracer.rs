//! Hierarchical span/event tracing into a bounded, pre-allocated ring.
//!
//! The tracer is opt-in (the core search only emits when
//! `CheckerOptions::trace` is set), but even when active it must not disturb
//! the search: event names are `&'static str`, payloads are integers, and
//! the ring buffer is allocated once at construction — pushing an event
//! takes a short mutex section and never touches the heap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identity of a span; `SpanId::ROOT` is the implicit top-level parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The implicit root parent (no enclosing span).
    pub const ROOT: SpanId = SpanId(0);
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened.
    SpanStart,
    /// A span closed.
    SpanEnd,
    /// An instantaneous event inside a span.
    Event,
}

impl TraceEventKind {
    /// Stable wire spelling used by the JSONL export and the server.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceEventKind::SpanStart => "span_start",
            TraceEventKind::SpanEnd => "span_end",
            TraceEventKind::Event => "event",
        }
    }
}

/// One recorded span boundary or event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span id (for span boundaries) or the id allocated to this event.
    pub id: u64,
    /// Enclosing span id; 0 when emitted at the root.
    pub parent: u64,
    /// Static name, e.g. `"search"`, `"decision"`, `"backtrack"`.
    pub name: &'static str,
    /// Boundary or instantaneous event.
    pub kind: TraceEventKind,
    /// Nanoseconds since the tracer was created.
    pub at_nanos: u64,
    /// Event-specific integer payload (net index, frame number, …).
    pub value: u64,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Bounded span/event recorder. See the module docs for the design.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// A tracer whose ring retains the most recent `capacity` events
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                capacity,
                head: 0,
                dropped: 0,
            }),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, event: TraceEvent) {
        self.ring.lock().expect("tracer ring poisoned").push(event);
    }

    /// Open a span under `parent` and return its id.
    pub fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.push(TraceEvent {
            id,
            parent: parent.0,
            name,
            kind: TraceEventKind::SpanStart,
            at_nanos: self.now_nanos(),
            value: 0,
        });
        SpanId(id)
    }

    /// Close `span`. The name is repeated so a wrapped ring (whose start
    /// event may have been dropped) still reads meaningfully.
    pub fn span_end(&self, span: SpanId, name: &'static str) {
        self.push(TraceEvent {
            id: span.0,
            parent: 0,
            name,
            kind: TraceEventKind::SpanEnd,
            at_nanos: self.now_nanos(),
            value: 0,
        });
    }

    /// Record an instantaneous event under `parent` with an integer payload.
    pub fn event(&self, name: &'static str, parent: SpanId, value: u64) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.push(TraceEvent {
            id,
            parent: parent.0,
            name,
            kind: TraceEventKind::Event,
            at_nanos: self.now_nanos(),
            value,
        });
    }

    /// Chronological snapshot of the retained events (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Number of events evicted because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer ring poisoned").dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer ring poisoned").buf.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export the retained events as JSONL: one JSON object per line with
    /// `at_ns`, `kind`, `name`, `id`, `parent` and `value` members.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&format!(
                "{{\"at_ns\":{},\"kind\":\"{}\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"value\":{}}}\n",
                event.at_nanos,
                event.kind.as_str(),
                event.name,
                event.id,
                event.parent,
                event.value
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_events_attach() {
        let tracer = Tracer::new(16);
        let outer = tracer.span_start("check", SpanId::ROOT);
        let inner = tracer.span_start("search", outer);
        tracer.event("decision", inner, 42);
        tracer.span_end(inner, "search");
        tracer.span_end(outer, "check");

        let events = tracer.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, TraceEventKind::SpanStart);
        assert_eq!(events[1].parent, outer.0);
        assert_eq!(events[2].name, "decision");
        assert_eq!(events[2].parent, inner.0);
        assert_eq!(events[2].value, 42);
        // Timestamps are monotone.
        for pair in events.windows(2) {
            assert!(pair[0].at_nanos <= pair[1].at_nanos);
        }
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let tracer = Tracer::new(4);
        for value in 0..10u64 {
            tracer.event("tick", SpanId::ROOT, value);
        }
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        let values: Vec<u64> = tracer.events().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8, 9], "oldest events are evicted first");
    }

    #[test]
    fn jsonl_export_is_one_object_per_line() {
        let tracer = Tracer::new(8);
        let span = tracer.span_start("search", SpanId::ROOT);
        tracer.event("decision", span, 3);
        tracer.span_end(span, "search");
        let jsonl = tracer.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"at_ns\":"));
        }
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[1].contains("\"value\":3"));
        assert!(lines[2].contains("\"kind\":\"span_end\""));
    }
}
