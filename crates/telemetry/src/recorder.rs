//! The always-on flight recorder: a fixed-capacity, lock-free, alloc-free
//! ring of compact structured events.
//!
//! The [`Tracer`](crate::Tracer) is opt-in and allocation-backed — right for
//! a `trace_check` deep-dive, wrong for "what was the system doing when the
//! worker died". The [`FlightRecorder`] fills that gap: every layer of the
//! stack (core search, portfolio races, service workers, persist/journal,
//! server request loop) emits fixed-size events into one shared ring at all
//! times, so the last N events are always available for a post-mortem dump
//! or a remote `events` tail.
//!
//! Design constraints, in order:
//!
//! * **Never blocks, never allocates.** [`FlightRecorder::record`] is a
//!   ticket claim (`fetch_add`) plus six relaxed/release stores; there is no
//!   mutex anywhere on the write path, so it is safe to call from a panicking
//!   worker, inside the search inner loop, or on the journal fsync path.
//! * **Overwrite-oldest.** The ring never refuses an event; the write cursor
//!   wraps and [`FlightRecorder::overwrites`] counts what was lost.
//! * **Torn reads are detected, not prevented.** Writers stamp each slot
//!   with a per-slot sequence word (0 while mid-write, the unique ticket + 1
//!   when complete) in seqlock fashion; [`FlightRecorder::snapshot`]
//!   re-reads the stamp after decoding and drops any slot that changed under
//!   it. Under `#![forbid(unsafe_code)]` this is the whole concurrency
//!   story: no `UnsafeCell`, just atomics and a validation pass.
//!
//! Call sites hold a [`RecorderHandle`] — the same shape as `TraceSink` and
//! `DurabilityHook`: an `Option<Arc<FlightRecorder>>` that is inert and
//! nearly free when disabled (one branch per call), plus a job id the owner
//! stamps once so every event a worker emits on behalf of a job carries it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which layer of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum RecorderLayer {
    /// The word-level search core (frame bounds, search entry/exit).
    Core = 0,
    /// The engine portfolio (race lifecycle, spawns, answers, cancels).
    Portfolio = 1,
    /// The verification service (job lifecycle, quarantines, respawns).
    Service = 2,
    /// The durability layer (journal appends, quarantines, compactions).
    Persist = 3,
    /// The network front end (request lifecycle, faults, dumps).
    Server = 4,
}

impl RecorderLayer {
    /// All layers, for enumeration and wire filtering.
    pub const ALL: [RecorderLayer; 5] = [
        RecorderLayer::Core,
        RecorderLayer::Portfolio,
        RecorderLayer::Service,
        RecorderLayer::Persist,
        RecorderLayer::Server,
    ];

    /// Stable lower-case name (wire format and dump format).
    pub fn as_str(self) -> &'static str {
        match self {
            RecorderLayer::Core => "core",
            RecorderLayer::Portfolio => "portfolio",
            RecorderLayer::Service => "service",
            RecorderLayer::Persist => "persist",
            RecorderLayer::Server => "server",
        }
    }

    /// Parses a wire-format layer name.
    pub fn parse(s: &str) -> Option<RecorderLayer> {
        RecorderLayer::ALL.into_iter().find(|l| l.as_str() == s)
    }

    fn from_u8(v: u8) -> Option<RecorderLayer> {
        RecorderLayer::ALL.get(v as usize).copied()
    }
}

/// What happened. One flat vocabulary across layers keeps the slot encoding
/// to a single byte; the layer disambiguates (e.g. [`RecorderKind::Fault`]
/// from the service is a quarantine, from persist a torn tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RecorderKind {
    /// A unit of work began (search, race, request…). Payload is
    /// site-specific.
    Start = 0,
    /// The matching unit of work finished. Payload is site-specific
    /// (typically an outcome code and a duration).
    End = 1,
    /// The search advanced its unrolling bound. Payload 0 is the new bound.
    Bound = 2,
    /// An engine was spawned into a race. Payload 0 is the engine index.
    Spawn = 3,
    /// An engine answered. Payload 0 is the engine index, payload 1 is 1 for
    /// a definitive verdict.
    Answer = 4,
    /// The race cancelled its losers.
    Cancel = 5,
    /// A job was dequeued by a worker. Payload 0 is the queue depth left.
    Dequeue = 6,
    /// A job was answered straight from the verdict cache.
    CacheHit = 7,
    /// Something failed and was contained: quarantine, timeout, torn tail,
    /// rejected snapshot, failed autosave. Payload words are site-specific
    /// (e.g. quarantined byte counts).
    Fault = 8,
    /// A lost worker was replaced. Payload 0 is the replacement count.
    Respawn = 9,
    /// A journal record was appended. Payload 0 is the journal length in
    /// bytes after the append.
    Append = 10,
    /// A journal was compacted into a snapshot (reset). Payload 0 is the
    /// bytes discarded.
    Compact = 11,
    /// A durable artifact was written (snapshot, post-mortem dump). Payload
    /// 0 is the byte size.
    Persisted = 12,
}

impl RecorderKind {
    /// All kinds, for enumeration.
    pub const ALL: [RecorderKind; 13] = [
        RecorderKind::Start,
        RecorderKind::End,
        RecorderKind::Bound,
        RecorderKind::Spawn,
        RecorderKind::Answer,
        RecorderKind::Cancel,
        RecorderKind::Dequeue,
        RecorderKind::CacheHit,
        RecorderKind::Fault,
        RecorderKind::Respawn,
        RecorderKind::Append,
        RecorderKind::Compact,
        RecorderKind::Persisted,
    ];

    /// Stable lower-case name (wire format and dump format).
    pub fn as_str(self) -> &'static str {
        match self {
            RecorderKind::Start => "start",
            RecorderKind::End => "end",
            RecorderKind::Bound => "bound",
            RecorderKind::Spawn => "spawn",
            RecorderKind::Answer => "answer",
            RecorderKind::Cancel => "cancel",
            RecorderKind::Dequeue => "dequeue",
            RecorderKind::CacheHit => "cache_hit",
            RecorderKind::Fault => "fault",
            RecorderKind::Respawn => "respawn",
            RecorderKind::Append => "append",
            RecorderKind::Compact => "compact",
            RecorderKind::Persisted => "persisted",
        }
    }

    fn from_u8(v: u8) -> Option<RecorderKind> {
        RecorderKind::ALL.get(v as usize).copied()
    }
}

/// One decoded flight-recorder event, as returned by
/// [`FlightRecorder::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (0-based claim ticket): total order across all
    /// writers, with gaps exactly where a snapshot caught a slot mid-write.
    pub seq: u64,
    /// Emitting layer.
    pub layer: RecorderLayer,
    /// Event kind.
    pub kind: RecorderKind,
    /// The job (or connection) this event belongs to; 0 when unattributed.
    pub job: u64,
    /// Nanoseconds since the recorder was created (monotonic).
    pub at_nanos: u64,
    /// Two site-specific payload words.
    pub payload: [u64; 2],
}

/// One ring slot: a per-slot seqlock. `stamp` is 0 while a writer is mid-
/// flight and `ticket + 1` once the slot is complete; readers re-check it
/// after decoding and discard the slot on any change.
struct Slot {
    stamp: AtomicU64,
    meta: AtomicU64,
    job: AtomicU64,
    at_nanos: AtomicU64,
    payload0: AtomicU64,
    payload1: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            job: AtomicU64::new(0),
            at_nanos: AtomicU64::new(0),
            payload0: AtomicU64::new(0),
            payload1: AtomicU64::new(0),
        }
    }
}

/// The always-on event ring. See the module docs for the design; see
/// [`RecorderHandle`] for how call sites hold one.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    epoch: Instant,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` events (clamped to at
    /// least 1). Memory: 48 bytes per slot, allocated once, never resized.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds since the recorder was created; saturates at `u64::MAX`.
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one event. Lock-free and alloc-free: a ticket claim plus six
    /// atomic stores. Safe from any thread, including one that is panicking.
    pub fn record(&self, layer: RecorderLayer, kind: RecorderKind, job: u64, p0: u64, p1: u64) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Mark the slot torn while its fields are mixed generations; readers
        // skip stamp == 0. Release so the marker is visible before the field
        // stores can be observed out of order.
        slot.stamp.store(0, Ordering::Release);
        slot.meta
            .store((layer as u64) | ((kind as u64) << 8), Ordering::Relaxed);
        slot.job.store(job, Ordering::Relaxed);
        slot.at_nanos.store(self.now_nanos(), Ordering::Relaxed);
        slot.payload0.store(p0, Ordering::Relaxed);
        slot.payload1.store(p1, Ordering::Relaxed);
        // Publish: the unique ticket (+1, so 0 stays "torn/empty") is the
        // generation a reader validates against.
        slot.stamp.store(ticket + 1, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events lost to the overwrite-oldest policy.
    pub fn overwrites(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Decodes the ring into chronological order (by claim ticket). Slots a
    /// concurrent writer had mid-flight — or tore while this snapshot was
    /// decoding them — are dropped, so the result can be shorter than
    /// [`FlightRecorder::capacity`] even on a full ring. Allocates; the
    /// write path never calls this.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let before = slot.stamp.load(Ordering::Acquire);
            if before == 0 {
                continue; // never written, or a writer is mid-flight
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let job = slot.job.load(Ordering::Relaxed);
            let at_nanos = slot.at_nanos.load(Ordering::Relaxed);
            let payload = [
                slot.payload0.load(Ordering::Relaxed),
                slot.payload1.load(Ordering::Relaxed),
            ];
            if slot.stamp.load(Ordering::Acquire) != before {
                continue; // torn under us; the writer's version wins
            }
            let (Some(layer), Some(kind)) = (
                RecorderLayer::from_u8((meta & 0xff) as u8),
                RecorderKind::from_u8(((meta >> 8) & 0xff) as u8),
            ) else {
                continue; // unreadable meta from a racing generation
            };
            events.push(FlightEvent {
                seq: before - 1,
                layer,
                kind,
                job,
                at_nanos,
                payload,
            });
        }
        events.sort_by_key(|e| e.seq);
        events
    }
}

/// A cloneable, optionally-disabled reference to a [`FlightRecorder`], plus
/// the job id the owner stamps on every event it emits.
///
/// The same pattern as `TraceSink` and `DurabilityHook`: configuration
/// structs hold one, it defaults to disabled, and a disabled handle costs a
/// single branch per call. [`RecorderHandle::with_job`] derives a handle
/// bound to a specific job so deep layers (the search core, the race) emit
/// correlated events without knowing where the id came from.
#[derive(Clone, Default)]
pub struct RecorderHandle {
    recorder: Option<Arc<FlightRecorder>>,
    job: u64,
}

impl RecorderHandle {
    /// A handle that records nothing (the default).
    pub fn disabled() -> RecorderHandle {
        RecorderHandle::default()
    }

    /// A handle that records into `recorder`, with job id 0.
    pub fn to(recorder: Arc<FlightRecorder>) -> RecorderHandle {
        RecorderHandle {
            recorder: Some(recorder),
            job: 0,
        }
    }

    /// `true` when events will actually be recorded.
    pub fn is_active(&self) -> bool {
        self.recorder.is_some()
    }

    /// This handle's job id (0 when unattributed).
    pub fn job(&self) -> u64 {
        self.job
    }

    /// A copy of this handle that stamps `job` on every event.
    pub fn with_job(&self, job: u64) -> RecorderHandle {
        RecorderHandle {
            recorder: self.recorder.clone(),
            job,
        }
    }

    /// The underlying recorder, when active (for snapshots and counters).
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Records one event stamped with this handle's job id. No-op (one
    /// branch) when disabled.
    #[inline]
    pub fn record(&self, layer: RecorderLayer, kind: RecorderKind, p0: u64, p1: u64) {
        if let Some(recorder) = &self.recorder {
            recorder.record(layer, kind, self.job, p0, p1);
        }
    }
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderHandle")
            .field("active", &self.recorder.is_some())
            .field("job", &self.job)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let rec = FlightRecorder::new(8);
        rec.record(RecorderLayer::Service, RecorderKind::Start, 7, 1, 2);
        rec.record(RecorderLayer::Core, RecorderKind::Bound, 7, 3, 0);
        rec.record(RecorderLayer::Service, RecorderKind::End, 7, 0, 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, RecorderKind::Start);
        assert_eq!(events[1].layer, RecorderLayer::Core);
        assert_eq!(events[1].payload, [3, 0]);
        assert_eq!(events[2].seq, 2);
        assert!(events.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.overwrites(), 0);
    }

    #[test]
    fn overwrites_oldest_and_counts_losses() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.record(RecorderLayer::Server, RecorderKind::Start, i, i, 0);
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.overwrites(), 6);
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        // Only the newest four survive, still in order.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn disabled_handle_is_inert() {
        let handle = RecorderHandle::disabled();
        assert!(!handle.is_active());
        handle.record(RecorderLayer::Core, RecorderKind::Bound, 1, 2);
        assert!(handle.recorder().is_none());
    }

    #[test]
    fn with_job_stamps_events() {
        let rec = Arc::new(FlightRecorder::new(8));
        let handle = RecorderHandle::to(rec.clone()).with_job(42);
        assert_eq!(handle.job(), 42);
        handle.record(RecorderLayer::Portfolio, RecorderKind::Spawn, 0, 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].job, 42);
    }

    #[test]
    fn layer_and_kind_names_round_trip() {
        for layer in RecorderLayer::ALL {
            assert_eq!(RecorderLayer::parse(layer.as_str()), Some(layer));
        }
        let mut names: Vec<&str> = RecorderKind::ALL.iter().map(|k| k.as_str()).collect();
        names.dedup();
        assert_eq!(names.len(), RecorderKind::ALL.len());
    }
}
