//! # wlac-service — persistent verification sessions with cross-property
//! learning
//!
//! The paper's checker decides one assertion at a time; real deployments
//! check hundreds of properties against the same design, and every cold
//! `check_batch` re-derives the same structural facts per property. This
//! crate is the layer that amortises that work: a long-lived
//! [`VerificationService`] owns
//!
//! * a **design registry** keyed by structural hash ([`design_hash`]) — a
//!   netlist registered twice is the same design and shares everything
//!   below;
//! * a per-design [`KnowledgeBase`]: design-valid CDCL clauses lifted to
//!   frame-relative form (replayable at any unrolling bound), ESTG conflict
//!   cubes and modular-solver infeasibility facts from the ATPG search, and
//!   the per-design engine win/loss history driving the scheduling
//!   predictor;
//! * a **verdict cache** keyed by (design hash, property hash, config) that
//!   answers repeat queries without spawning a single engine;
//! * a **work-queue front door** — [`VerificationService::submit_batch`],
//!   [`VerificationService::poll`], [`VerificationService::results`] — with
//!   a worker pool sharding jobs across CPUs.
//!
//! Learning is strictly effort-shaping, never verdict-shaping: clauses are
//! only exported when their derivation stayed inside the design's transition
//! structure (taint-tracked in the CDCL solver), datapath facts replay only
//! exact-keyed infeasibility proofs, and the ESTG merely reorders decisions.
//! `tests/service.rs` (workspace root) proves warm and cold runs agree on
//! every verdict across the circuits suite. A knowledge base offered from
//! outside is validated against the design hash and structure and rejected
//! — [`KnowledgeError`] — rather than trusted.
//!
//! # Examples
//!
//! ```
//! use wlac_service::{ServiceConfig, VerificationService};
//! use wlac_atpg::{Property, Verification};
//! use wlac_bv::Bv;
//! use wlac_netlist::Netlist;
//!
//! // One design, two properties sharing its knowledge base.
//! let mut nl = Netlist::new("sat_counter");
//! let (q, ff) = nl.dff_deferred(8, Some(Bv::zero(8)));
//! let one = nl.constant(&Bv::from_u64(8, 1));
//! let plus = nl.add(q, one);
//! let ten = nl.constant(&Bv::from_u64(8, 10));
//! let at_ten = nl.eq(q, ten);
//! let next = nl.mux(at_ten, ten, plus);
//! nl.connect_dff_data(ff, next);
//! let eleven = nl.constant(&Bv::from_u64(8, 11));
//! let below = nl.lt(q, eleven);
//! let five = nl.constant(&Bv::from_u64(8, 5));
//! let hits_five = nl.eq(q, five);
//!
//! let p1 = Verification::new(nl.clone(), Property::always(&nl, "below_11", below));
//! let p2 = Verification::new(nl.clone(), Property::eventually(&nl, "reach_5", hits_five));
//!
//! let service = VerificationService::new(ServiceConfig::default());
//! let batch = service.submit_batch(vec![p1.clone(), p2]);
//! let results = service.wait(batch);
//! assert!(results[0].verdict.is_pass());
//! assert!(!results[0].from_cache);
//!
//! // The same query again is a pure cache hit: no engine spawns.
//! let again = service.submit_batch(vec![p1]);
//! let results = service.wait(again);
//! assert!(results[0].from_cache);
//! assert_eq!(results[0].engines_spawned, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The serving path must degrade, not die: every fallible unwrap is a
// potential crash a fault can reach, so they are banned outside tests
// (see clippy.toml for the test exemption).
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod durability;
mod faultreport;
mod hash;
mod knowledge;
mod session;

pub use durability::{DurabilityHook, DurabilityRecord, DurabilitySink};
pub use faultreport::{FaultReport, FaultReportHook, FaultSink};
pub use hash::{config_fingerprint, design_hash, property_hash, DesignHash, PropertyHash};
pub use knowledge::{
    ClauseBank, KnowledgeBase, KnowledgeError, KnowledgeStats, DEFAULT_CLAUSE_CAP,
};
pub use session::{
    BatchId, BatchProgress, BatchStatus, JobProgress, JobResult, ServiceConfig, ServiceStats,
    VerdictRecord, VerificationService, DEFAULT_CACHE_CAPACITY, DEFAULT_RETAINED_BATCHES,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wlac_atpg::{Property, Verification};
    use wlac_bv::Bv;
    use wlac_netlist::Netlist;
    use wlac_portfolio::{PortfolioConfig, Verdict};

    /// A counter wrapping at `wrap`, asserted to stay below `limit`.
    fn counter(limit: u64, wrap: u64, name: &str) -> Verification {
        let mut nl = Netlist::new("counter");
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let plus = nl.add(q, one);
        let wrap_net = nl.constant(&Bv::from_u64(4, wrap));
        let at_wrap = nl.eq(q, wrap_net);
        let zero = nl.constant(&Bv::zero(4));
        let next = nl.mux(at_wrap, zero, plus);
        nl.connect_dff_data(ff, next);
        let limit_net = nl.constant(&Bv::from_u64(4, limit));
        let ok = nl.lt(q, limit_net);
        nl.mark_output("ok", ok);
        let property = Property::always(&nl, name, ok);
        Verification::new(nl, property)
    }

    fn quick_config() -> ServiceConfig {
        let mut config = ServiceConfig::default();
        config.portfolio.checker.time_limit = Duration::from_secs(20);
        config.workers = 2;
        config
    }

    #[test]
    fn batch_results_come_back_in_job_order() {
        let service = VerificationService::new(quick_config());
        let batch = service.submit_batch(vec![
            counter(12, 5, "j0"),
            counter(5, 12, "j1"),
            counter(9, 4, "j2"),
        ]);
        let results = service.wait(batch);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].property, "j0");
        assert!(results[0].verdict.is_pass());
        assert!(matches!(results[1].verdict, Verdict::Violated { .. }));
        assert!(results[2].verdict.is_pass());
        let status = service.poll(batch).expect("known batch");
        assert!(status.done());
        assert_eq!(status.total, 3);
    }

    #[test]
    fn repeat_submission_hits_the_cache_without_engines() {
        let service = VerificationService::new(quick_config());
        let first = service.submit_batch(vec![counter(12, 5, "p"), counter(5, 12, "q")]);
        let cold = service.wait(first);
        assert!(cold.iter().all(|r| !r.from_cache));

        let second = service.submit_batch(vec![counter(12, 5, "p"), counter(5, 12, "q")]);
        let warm = service.wait(second);
        assert!(warm.iter().all(|r| r.from_cache));
        assert!(warm.iter().all(|r| r.engines_spawned == 0));
        // Cached verdicts agree with the raced ones.
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(
                std::mem::discriminant(&c.verdict),
                std::mem::discriminant(&w.verdict)
            );
        }
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 2);
        assert!(stats.cache_hit_rate() > 0.0);
        assert_eq!(stats.designs, 2, "two distinct structures were registered");
    }

    #[test]
    fn same_structure_shares_one_design_entry() {
        let service = VerificationService::new(quick_config());
        let a = service.register_design(&counter(12, 5, "x").netlist);
        let b = service.register_design(&counter(12, 5, "y").netlist);
        assert_eq!(a, b);
        assert_eq!(service.stats().designs, 1);
    }

    #[test]
    fn racing_accumulates_knowledge_for_the_design() {
        let service = VerificationService::new(quick_config());
        let verification = counter(5, 12, "v");
        let design = design_hash(&verification.netlist);
        let batch = service.submit_batch(vec![verification]);
        let _ = service.wait(batch);
        let kb = service.export_knowledge(design).expect("registered design");
        assert_eq!(kb.design(), design);
        // The ATPG engine ran and contributed search knowledge.
        let stats = service.knowledge_stats(design).expect("stats");
        assert_eq!(stats.races_absorbed, 1);
        assert_eq!(stats.clauses_rejected, 0);
    }

    #[test]
    fn poll_reports_progress_and_unknown_batches() {
        let service = VerificationService::new(quick_config());
        let batch = service.submit_batch(Vec::new());
        let status = service.poll(batch).expect("known batch");
        assert!(status.done());
        assert_eq!(status.total, 0);
        assert!(service.results(batch).expect("empty batch done").is_empty());
        let bogus = service.poll(BatchId::from_raw(9999));
        assert!(bogus.is_none());
    }

    #[test]
    fn import_of_a_poisoned_store_is_rejected() {
        let service = VerificationService::new(quick_config());
        let verification = counter(12, 5, "v");
        let design = service.register_design(&verification.netlist);

        // A store bound to a different design is rejected outright.
        let other = counter(12, 6, "w");
        let foreign = KnowledgeBase::new(design_hash(&other.netlist));
        assert!(matches!(
            service.import_knowledge(design, &foreign),
            Err(KnowledgeError::DesignMismatch { .. })
        ));

        // A clean round-trip works.
        let exported = service.export_knowledge(design).expect("registered");
        assert!(service.import_knowledge(design, &exported).is_ok());
    }

    #[test]
    fn verdict_cache_is_lru_bounded() {
        let mut config = quick_config();
        config.cache_capacity = 2;
        let service = VerificationService::new(config);
        // Three distinct queries through a 2-entry cache: one eviction.
        let batch = service.submit_batch(vec![
            counter(12, 5, "a"),
            counter(9, 4, "b"),
            counter(5, 12, "c"),
        ]);
        let _ = service.wait(batch);
        let stats = service.stats();
        assert_eq!(stats.cached_verdicts, 2);
        assert_eq!(stats.cache_evictions, 1);
        assert_eq!(stats.cache_misses, 3);
    }

    #[test]
    fn retrieved_batches_are_retired_beyond_the_bound() {
        let mut config = quick_config();
        config.retained_batches = 1;
        let service = VerificationService::new(config);
        let first = service.submit_batch(vec![counter(12, 5, "a")]);
        let _ = service.wait(first);
        assert!(service.poll(first).is_some(), "within the retention bound");
        let second = service.submit_batch(vec![counter(12, 5, "b")]);
        let _ = service.wait(second);
        // Retrieving the second batch pushed the first past the bound.
        assert!(service.poll(first).is_none(), "oldest retrieved evicted");
        assert!(service.poll(second).is_some());
        // An unretrieved batch is never evicted, no matter how many
        // retrievals happen after it.
        let third = service.submit_batch(vec![counter(12, 5, "c")]);
        for _ in 0..3 {
            let again = service.submit_batch(vec![counter(12, 5, "b")]);
            let _ = service.wait(again);
        }
        assert!(service.poll(third).is_some(), "unretrieved batch survives");
        let _ = service.wait(third);
    }

    #[test]
    fn verdicts_export_and_reimport_across_sessions() {
        let service = VerificationService::new(quick_config());
        let pass = counter(12, 5, "p");
        let fail = counter(5, 12, "q");
        let design_pass = design_hash(&pass.netlist);
        let design_fail = design_hash(&fail.netlist);
        let cold = service.wait(service.submit_batch(vec![pass.clone(), fail.clone()]));
        let pass_records = service.export_verdicts(design_pass).expect("registered");
        let fail_records = service.export_verdicts(design_fail).expect("registered");
        assert_eq!(pass_records.len(), 1);
        assert_eq!(fail_records.len(), 1);
        assert!(fail_records[0].verdict.trace().is_some(), "violation trace");

        // A fresh session warm-started from the exported records answers the
        // same queries from the cache, with identical verdicts.
        let restarted = VerificationService::new(quick_config());
        restarted.register_design(&pass.netlist);
        restarted.register_design(&fail.netlist);
        assert_eq!(restarted.import_verdicts(design_pass, &pass_records), Ok(1));
        assert_eq!(restarted.import_verdicts(design_fail, &fail_records), Ok(1));
        let warm = restarted.wait(restarted.submit_batch(vec![pass, fail]));
        assert!(warm.iter().all(|r| r.from_cache));
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(
                std::mem::discriminant(&c.verdict),
                std::mem::discriminant(&w.verdict)
            );
        }

        // A record whose trace names a foreign net is rejected outright.
        let mut poisoned = fail_records.clone();
        if let Verdict::Violated { trace } = &mut poisoned[0].verdict {
            trace
                .initial_state
                .push((wlac_netlist::NetId::from_index(9999), Bv::zero(4)));
        }
        assert!(matches!(
            restarted.import_verdicts(design_fail, &poisoned),
            Err(KnowledgeError::MalformedVerdict { index: 0 })
        ));

        // Unregistered designs cannot receive verdicts.
        assert!(restarted
            .import_verdicts(DesignHash(42), &pass_records)
            .is_err());
    }

    #[test]
    fn metrics_registry_tracks_jobs_cache_and_core_effort() {
        let registry = std::sync::Arc::new(wlac_telemetry::MetricsRegistry::new());
        let service = VerificationService::with_metrics(quick_config(), registry.clone());
        let batch = service.submit_batch(vec![counter(12, 5, "p"), counter(5, 12, "q")]);
        let _ = service.wait(batch);
        let again = service.submit_batch(vec![counter(12, 5, "p")]);
        let _ = service.wait(again);

        assert_eq!(registry.counter("service_jobs_submitted_total").get(), 3);
        assert_eq!(registry.counter("service_jobs_completed_total").get(), 3);
        assert_eq!(registry.counter("service_cache_hits_total").get(), 1);
        assert_eq!(registry.counter("service_cache_misses_total").get(), 2);
        assert_eq!(registry.histogram("service_job_wall_ns").count(), 3);
        // Idle service: the queue is drained and no worker is mid-job. The
        // busy gauge is decremented *after* a job's completion is published
        // (waiters can win that race), so poll briefly for it to settle.
        let settles_to_zero = |gauge: &str| {
            for _ in 0..400 {
                if registry.gauge(gauge).get() == 0.0 {
                    return true;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            false
        };
        assert!(settles_to_zero("service_queue_depth"));
        assert!(settles_to_zero("service_workers_busy"));
        // The raced jobs spawned the ATPG engine, whose search effort is
        // aggregated into the core counters.
        // (Decisions can legitimately be zero — implication alone decides
        // these tiny counters — but implication always evaluates gates.)
        assert!(registry.counter("core_gate_evaluations_total").get() > 0);
        // The portfolio layer shares the same registry.
        assert_eq!(registry.counter("portfolio_races_total").get(), 2);
    }

    #[test]
    fn progress_surface_streams_completions_and_final_probes() {
        let service = VerificationService::new(quick_config());
        let batch = service.submit_batch(vec![counter(12, 5, "p0"), counter(5, 12, "p1")]);
        // Stream completions through the subscriber primitive instead of
        // blocking on the whole batch.
        let mut seen = 0;
        while seen < 2 {
            seen = service
                .wait_batch_change(batch, seen, Duration::from_secs(30))
                .expect("known batch");
        }
        let slots = service.batch_slots(batch).expect("known batch");
        assert_eq!(slots.len(), 2);
        for slot in &slots {
            let (result, probe) = slot.as_ref().expect("completed slot");
            assert!(result.verdict.is_definitive(), "{:?}", result.verdict);
            assert!(probe.bound > 0, "final probe carries the verdict's depth");
            assert!(probe.probes > 0, "every raced job publishes probes");
        }
        // The streaming reads never retired the batch.
        assert_eq!(service.results(batch).expect("batch done").len(), 2);
        let progress = service.batch_progress(batch).expect("retained batch");
        assert!(progress.done());
        assert!(progress.running.is_empty());
        let stats = service.stats();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.running_jobs, 0);
        assert!(service.running_jobs().is_empty());
        // Unknown handles answer None across the whole progress surface.
        let bogus = BatchId::from_raw(9_999);
        assert!(service.batch_progress(bogus).is_none());
        assert!(service.batch_slots(bogus).is_none());
        assert!(service
            .wait_batch_change(bogus, 0, Duration::from_millis(1))
            .is_none());
    }

    #[test]
    fn cache_hits_synthesize_a_final_probe_from_the_verdict() {
        let service = VerificationService::new(quick_config());
        let cold = service.submit_batch(vec![counter(12, 5, "p")]);
        let _ = service.wait(cold);
        let warm = service.submit_batch(vec![counter(12, 5, "p")]);
        let results = service.wait(warm);
        assert!(results[0].from_cache);
        let slots = service.batch_slots(warm).expect("retained batch");
        let (_, probe) = slots[0].as_ref().expect("completed");
        assert!(
            probe.bound > 0,
            "cache hits still report the verdict's depth: {probe:?}"
        );
    }

    #[test]
    fn prediction_can_be_disabled() {
        let mut config = quick_config();
        config.predict = false;
        config.portfolio = PortfolioConfig::default();
        let service = VerificationService::new(config);
        let batch = service.submit_batch(vec![counter(12, 5, "p")]);
        let results = service.wait(batch);
        assert_eq!(
            results[0].engines_spawned, 3,
            "full portfolio without predictor"
        );
    }
}
