//! The long-lived verification session: design registry, work queue, worker
//! pool and verdict cache.
//!
//! A [`VerificationService`] is the front door for batch traffic. Callers
//! [`VerificationService::submit_batch`] jobs, [`VerificationService::poll`]
//! for progress and fetch [`VerificationService::results`]; a pool of worker
//! threads drains the queue. Per job the worker
//!
//! 1. answers from the **verdict cache** when the exact (design hash,
//!    property hash, config) triple was decided before — no engine spawns at
//!    all;
//! 2. otherwise builds a [`WarmStart`] from the design's [`KnowledgeBase`]
//!    (replayed CDCL clauses, ESTG conflict cubes, datapath infeasibility
//!    facts) and asks the scheduling predictor which engines to spawn
//!    (falling back to full racing while the design has no history);
//! 3. races the portfolio, absorbs the harvest back into the knowledge base
//!    and caches the verdict.

use crate::durability::{DurabilityHook, DurabilityRecord};
use crate::faultreport::{FaultReport, FaultReportHook};
use crate::hash::{config_fingerprint, design_hash, property_hash, DesignHash, PropertyHash};
use crate::knowledge::{KnowledgeBase, KnowledgeError, KnowledgeStats};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wlac_atpg::Verification;
use wlac_faultinject::{CondvarExt, FaultPlan, FaultSite, LockExt};
use wlac_netlist::Netlist;
use wlac_portfolio::{
    predict_engines, Engine, EngineStats, NetlistFeatures, Portfolio, PortfolioConfig,
    PortfolioReport, RaceProgress, Verdict, WarmStart,
};
use wlac_telemetry::{MetricsRegistry, ProgressProbe, RecorderHandle, RecorderKind, RecorderLayer};

/// Handle to a submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchId(u64);

impl BatchId {
    /// The raw handle value (stable within one session), e.g. for logging or
    /// an RPC wire format.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`BatchId::raw`]. A value that never came from
    /// this session simply resolves to no batch.
    pub fn from_raw(raw: u64) -> Self {
        BatchId(raw)
    }
}

impl std::fmt::Display for BatchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch#{}", self.0)
    }
}

/// Progress of one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStatus {
    /// Jobs in the batch.
    pub total: usize,
    /// Jobs finished (from cache or by racing).
    pub completed: usize,
}

impl BatchStatus {
    /// `true` when every job has a result.
    pub fn done(&self) -> bool {
        self.completed == self.total
    }
}

/// A live snapshot of one in-flight job: identity plus the aggregated
/// progress probe of its engine race, read lock-free from the race's
/// [`RaceProgress`] cells.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Session-unique job id (the one stamped into flight-recorder events).
    pub job: u64,
    /// Batch the job belongs to.
    pub batch: BatchId,
    /// Position within its batch.
    pub index: usize,
    /// Property name.
    pub property: String,
    /// Design the job runs against.
    pub design: DesignHash,
    /// Wall-clock time since the job was dequeued.
    pub elapsed: Duration,
    /// The engine currently deepest into the search, when any engine has
    /// published.
    pub leading: Option<Engine>,
    /// Aggregated effort counters across the race's engines.
    pub probe: ProgressProbe,
}

/// A point-in-time view of one batch: completion counts plus a live
/// [`JobProgress`] for each of its jobs still racing.
#[derive(Debug, Clone)]
pub struct BatchProgress {
    /// Jobs in the batch.
    pub total: usize,
    /// Jobs finished.
    pub completed: usize,
    /// The batch's in-flight jobs (dequeued, racing, not yet completed).
    pub running: Vec<JobProgress>,
}

impl BatchProgress {
    /// `true` when every job has a result.
    pub fn done(&self) -> bool {
        self.completed == self.total
    }
}

/// The result of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Property name (from the submitted verification).
    pub property: String,
    /// Design the job ran against.
    pub design: DesignHash,
    /// The combined verdict.
    pub verdict: Verdict,
    /// Engine that produced the verdict (`None` for cache hits and undecided
    /// jobs).
    pub winner: Option<Engine>,
    /// `true` when the verdict came straight from the cache.
    pub from_cache: bool,
    /// Engines actually spawned (0 for cache hits; fewer than the full
    /// portfolio once the predictor has history).
    pub engines_spawned: usize,
    /// Wall-clock time from dequeue to result.
    pub wall: Duration,
}

/// Default bound of the verdict cache (entries across all designs).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default number of already-retrieved batches kept for late `poll` /
/// `results` calls.
pub const DEFAULT_RETAINED_BATCHES: usize = 1024;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Portfolio configuration used for every race (its `workers` field is
    /// ignored — sharding happens at the service level).
    pub portfolio: PortfolioConfig,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Consult the scheduling predictor (`false` always races the full
    /// configured portfolio).
    pub predict: bool,
    /// Verdict-cache bound; the least-recently-used entry is evicted when a
    /// new verdict would exceed it. Zero disables caching entirely.
    pub cache_capacity: usize,
    /// How many already-retrieved batches to keep for late `poll`/`results`
    /// calls before the oldest are evicted. Unretrieved batches are never
    /// evicted.
    pub retained_batches: usize,
    /// Hard wall-clock budget per job. Applied to the portfolio's
    /// `job_budget` unless that is already set; a job exceeding it completes
    /// as [`Verdict::Timeout`] and frees its worker. `None` (the default)
    /// leaves jobs unbounded.
    pub job_budget: Option<Duration>,
    /// Fault-injection plan threaded through workers, engines and autosaves.
    /// The disabled default is free; chaos tests arm it.
    pub faults: FaultPlan,
    /// Durability hook: every completed raced job is offered to the attached
    /// [`DurabilitySink`](crate::DurabilitySink) *before* its result is
    /// published, so a write-ahead journal sees the record ahead of any
    /// acknowledgement. The disabled default is free.
    pub durability: DurabilityHook,
    /// Flight-recorder handle: workers stamp dequeue/cache-hit/fault/finish
    /// events (and thread a per-job handle through every race) into the
    /// attached ring. The disabled default is free.
    pub recorder: RecorderHandle,
    /// Fault-report hook: every contained fault (quarantine, timeout) is
    /// described to the attached [`FaultSink`](crate::FaultSink) — the
    /// server's post-mortem dump writer. The disabled default is free.
    pub fault_report: FaultReportHook,
}

impl ServiceConfig {
    /// Defaults: the default portfolio, one worker per available CPU,
    /// prediction on, a [`DEFAULT_CACHE_CAPACITY`]-entry verdict cache.
    pub fn new() -> Self {
        ServiceConfig {
            portfolio: PortfolioConfig::default(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            predict: true,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            retained_batches: DEFAULT_RETAINED_BATCHES,
            job_budget: None,
            faults: FaultPlan::disabled(),
            durability: DurabilityHook::disabled(),
            recorder: RecorderHandle::disabled(),
            fault_report: FaultReportHook::disabled(),
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new()
    }
}

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Registered designs.
    pub designs: usize,
    /// Jobs answered from the verdict cache.
    pub cache_hits: u64,
    /// Jobs that had to race engines.
    pub cache_misses: u64,
    /// Races that ran a predictor-trimmed portfolio.
    pub predicted_races: u64,
    /// Verdicts evicted from the cache by the LRU bound.
    pub cache_evictions: u64,
    /// Verdicts currently cached (≤ the configured capacity).
    pub cached_verdicts: usize,
    /// Clauses currently banked across all designs.
    pub clauses_banked: u64,
    /// Datapath infeasibility facts recorded across all designs.
    pub datapath_facts: u64,
    /// ESTG conflicts recorded across all designs.
    pub estg_conflicts: u64,
    /// Jobs whose processing panicked and were quarantined (completed with
    /// an error verdict; the worker survived).
    pub quarantined_jobs: u64,
    /// Jobs that exceeded their wall-clock budget and completed as
    /// [`Verdict::Timeout`].
    pub timed_out_jobs: u64,
    /// Worker threads the supervisor respawned after a loss.
    pub workers_respawned: u64,
    /// Worker threads currently alive (spawned minus finished). Below the
    /// configured pool size it means a lost worker has not been respawned
    /// yet — the readiness signal the server's health op watches.
    pub workers_alive: usize,
    /// Jobs queued but not yet dequeued by a worker.
    pub queue_depth: usize,
    /// Jobs dequeued and currently racing engines.
    pub running_jobs: usize,
}

impl ServiceStats {
    /// Cache hit rate over all completed jobs (0 when nothing completed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One registered design: the canonical netlist, its predictor features and
/// its learning store.
struct DesignEntry {
    netlist: Netlist,
    features: NetlistFeatures,
    knowledge: Mutex<KnowledgeBase>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    design: DesignHash,
    property: PropertyHash,
    config: u64,
}

#[derive(Clone)]
struct CachedVerdict {
    verdict: Verdict,
    winner: Option<Engine>,
}

/// One exported verdict-cache entry: everything needed to re-answer the
/// exact (design, property, config) query in a later session.
#[derive(Debug, Clone)]
pub struct VerdictRecord {
    /// Hash of the property within the design.
    pub property: PropertyHash,
    /// Fingerprint of the verdict-affecting portfolio configuration.
    pub config: u64,
    /// The cached (always definitive) verdict.
    pub verdict: Verdict,
    /// The engine that produced it, when known.
    pub winner: Option<Engine>,
}

/// Structural validation of a verdict offered from outside (a persisted
/// snapshot): any attached trace must name existing nets with values of the
/// exact net width, and only definitive verdicts are cacheable. An `Unknown`
/// must never shadow a future run that could decide the job, and a trace
/// over foreign nets would panic (or silently lie) on replay.
pub(crate) fn verdict_is_well_formed(verdict: &Verdict, netlist: &Netlist) -> bool {
    if !verdict.is_definitive() {
        return false;
    }
    let Some(trace) = verdict.trace() else {
        return true;
    };
    let ok = |pairs: &[(wlac_netlist::NetId, wlac_bv::Bv)]| {
        pairs.iter().all(|(net, value)| {
            net.index() < netlist.net_count() && value.width() == netlist.net_width(*net)
        })
    };
    ok(&trace.initial_state) && trace.inputs.iter().all(|cycle| ok(cycle))
}

/// Bounded verdict cache with least-recently-used eviction.
///
/// Lookups and inserts stamp the entry with a logical clock; when an insert
/// would exceed the capacity, the entry with the oldest stamp is evicted.
/// The eviction scan is linear, which is fine at cache-bound sizes: one scan
/// per insert-at-capacity is noise next to the race the insert just
/// absorbed.
struct VerdictCache {
    entries: HashMap<CacheKey, (CachedVerdict, u64)>,
    capacity: usize,
    clock: u64,
    evictions: u64,
}

impl VerdictCache {
    fn new(capacity: usize) -> Self {
        VerdictCache {
            entries: HashMap::new(),
            capacity,
            clock: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<CachedVerdict> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(cached, stamp)| {
            *stamp = clock;
            cached.clone()
        })
    }

    fn insert(&mut self, key: CacheKey, cached: CachedVerdict) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(key, (cached, self.clock));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn export_design(&self, design: DesignHash) -> Vec<VerdictRecord> {
        let mut records: Vec<VerdictRecord> = self
            .entries
            .iter()
            .filter(|(key, _)| key.design == design)
            .map(|(key, (cached, _))| VerdictRecord {
                property: key.property,
                config: key.config,
                verdict: cached.verdict.clone(),
                winner: cached.winner,
            })
            .collect();
        // Deterministic order regardless of hash-map iteration.
        records.sort_by_key(|r| (r.property.0, r.config));
        records
    }
}

struct QueuedJob {
    /// Session-unique id stamped into every flight-recorder event the job
    /// emits (service, portfolio and core layers alike), so a post-mortem
    /// can pull one job's full event trail out of the shared ring.
    job_id: u64,
    batch: u64,
    index: usize,
    design: DesignHash,
    verification: Arc<Verification>,
    key: CacheKey,
}

struct BatchState {
    results: Vec<Option<JobResult>>,
    /// The final progress probe of each completed slot, published together
    /// with the result so a subscriber can always emit a closing progress
    /// event before the verdict (cache hits synthesize theirs from the
    /// verdict's frame depth).
    progress: Vec<Option<ProgressProbe>>,
    completed: usize,
    /// Results have been handed out at least once; only retrieved batches
    /// are eligible for retirement.
    retrieved: bool,
    /// Threads currently blocked in [`VerificationService::wait`] on this
    /// batch; retirement never evicts a batch someone is waiting on.
    waiters: usize,
}

/// Batch bookkeeping: the live states plus a retirement queue bounding how
/// many already-retrieved batches stay around for late `poll`/`results`
/// calls. Without the bound a long-lived server leaks one `BatchState`
/// (including full counter-example traces) per submission, forever.
struct BatchTable {
    states: HashMap<u64, BatchState>,
    retired: VecDeque<u64>,
}

impl BatchTable {
    fn new() -> Self {
        BatchTable {
            states: HashMap::new(),
            retired: VecDeque::new(),
        }
    }

    /// Marks a batch as retrieved and evicts the oldest retrieved batches
    /// beyond `cap` (skipping any with active waiters).
    fn retire(&mut self, batch: u64, cap: usize) {
        if let Some(state) = self.states.get_mut(&batch) {
            if !state.retrieved {
                state.retrieved = true;
                self.retired.push_back(batch);
            }
        }
        let mut scan = self.retired.len();
        while self.retired.len() > cap && scan > 0 {
            scan -= 1;
            let Some(oldest) = self.retired.pop_front() else {
                break;
            };
            match self.states.get(&oldest) {
                Some(state) if state.waiters > 0 => self.retired.push_back(oldest),
                _ => {
                    self.states.remove(&oldest);
                }
            }
        }
    }
}

/// Bookkeeping for one in-flight (dequeued, racing) job: identity plus the
/// race's live progress cells. Registered before the race spawns, removed on
/// completion; observers snapshot concurrently without touching the race.
struct RunningJob {
    job_id: u64,
    batch: u64,
    index: usize,
    property: String,
    design: DesignHash,
    started: Instant,
    progress: RaceProgress,
}

struct Shared {
    config: ServiceConfig,
    registry: Mutex<HashMap<DesignHash, Arc<DesignEntry>>>,
    cache: Mutex<VerdictCache>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    /// In-flight jobs by job id, for the live-progress surface.
    running: Mutex<HashMap<u64, Arc<RunningJob>>>,
    batches: Mutex<BatchTable>,
    batch_cv: Condvar,
    next_batch: AtomicU64,
    /// Job ids start at 1 so 0 can mean "not job-scoped" in recorder events.
    next_job: AtomicU64,
    shutdown: AtomicBool,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    predicted_races: AtomicU64,
    quarantined: AtomicU64,
    timeouts: AtomicU64,
    respawned: AtomicU64,
    /// Handles of every worker ever spawned (respawns append). Kept in the
    /// shared state so the respawn sentinel can register replacements; the
    /// service's `Drop` pops and joins them without holding the lock.
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

/// Re-arms the worker pool when a worker thread dies: constructed on the
/// worker's stack, its `Drop` runs during the unwind of any panic that
/// escapes the per-job fence (the [`FaultSite::WorkerLoss`] class) and spawns
/// a replacement — unless the service is shutting down, in which case dying
/// is the plan.
struct RespawnSentinel {
    shared: Arc<Shared>,
}

impl Drop for RespawnSentinel {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.shared.shutdown.load(Ordering::Acquire) {
            self.shared.respawned.fetch_add(1, Ordering::Relaxed);
            if let Some(metrics) = &self.shared.metrics {
                metrics.counter("service_workers_respawned_total").inc();
            }
            self.shared.config.recorder.record(
                RecorderLayer::Service,
                RecorderKind::Respawn,
                self.shared.respawned.load(Ordering::Relaxed),
                0,
            );
            spawn_worker(&self.shared);
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>) {
    let worker = Arc::clone(shared);
    let handle = std::thread::spawn(move || {
        let _sentinel = RespawnSentinel {
            shared: Arc::clone(&worker),
        };
        worker_loop(&worker);
    });
    shared.worker_handles.lock_recover().push(handle);
}

/// A persistent verification session. See the module docs.
///
/// Dropping the service shuts the worker pool down; queued-but-unstarted
/// jobs are abandoned (their batches never complete), so [`wait`] for any
/// batch whose results matter before dropping.
///
/// [`wait`]: VerificationService::wait
pub struct VerificationService {
    shared: Arc<Shared>,
}

impl VerificationService {
    /// Starts a session with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        VerificationService::start(config, None)
    }

    /// Starts a session that publishes its telemetry — queue depth and
    /// worker-utilisation gauges, cache and job counters, per-job wall-clock
    /// histograms, the raced portfolios' attribution and the aggregated core
    /// search counters — into `registry`. Metrics are write-only for the
    /// service: they never influence scheduling, caching or verdicts.
    pub fn with_metrics(config: ServiceConfig, registry: Arc<MetricsRegistry>) -> Self {
        VerificationService::start(config, Some(registry))
    }

    fn start(mut config: ServiceConfig, metrics: Option<Arc<MetricsRegistry>>) -> Self {
        // Normalise once: the service-level budget and fault plan are
        // threaded into the portfolio configuration every race (and the
        // cache fingerprint) will see, so cache keys and effective behaviour
        // always agree.
        if config.portfolio.job_budget.is_none() {
            config.portfolio.job_budget = config.job_budget;
        }
        if config.faults.is_armed() && !config.portfolio.checker.faults.is_armed() {
            config.portfolio.checker.faults = config.faults.clone();
        }
        let workers = config.workers.max(1);
        let cache = VerdictCache::new(config.cache_capacity);
        let shared = Arc::new(Shared {
            config,
            registry: Mutex::new(HashMap::new()),
            cache: Mutex::new(cache),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            running: Mutex::new(HashMap::new()),
            batches: Mutex::new(BatchTable::new()),
            batch_cv: Condvar::new(),
            next_batch: AtomicU64::new(0),
            next_job: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            predicted_races: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            worker_handles: Mutex::new(Vec::new()),
            metrics,
        });
        for _ in 0..workers {
            spawn_worker(&shared);
        }
        VerificationService { shared }
    }

    /// Starts a session with the default configuration.
    pub fn with_defaults() -> Self {
        VerificationService::new(ServiceConfig::default())
    }

    /// Registers a design and returns its structural hash. Re-registering an
    /// identical structure is a no-op returning the same hash; submitting a
    /// job registers its design automatically.
    pub fn register_design(&self, netlist: &Netlist) -> DesignHash {
        let hash = design_hash(netlist);
        let mut registry = self.shared.registry.lock_recover();
        registry.entry(hash).or_insert_with(|| {
            Arc::new(DesignEntry {
                netlist: netlist.clone(),
                features: NetlistFeatures::of(netlist),
                knowledge: Mutex::new(KnowledgeBase::new(hash)),
            })
        });
        hash
    }

    /// Submits a batch of verification jobs; returns immediately with a
    /// handle for [`VerificationService::poll`] /
    /// [`VerificationService::results`] / [`VerificationService::wait`].
    pub fn submit_batch(&self, jobs: Vec<Verification>) -> BatchId {
        let batch = self.shared.next_batch.fetch_add(1, Ordering::Relaxed);
        let config_hash = config_fingerprint(&self.shared.config.portfolio);
        {
            let mut batches = self.shared.batches.lock_recover();
            batches.states.insert(
                batch,
                BatchState {
                    results: (0..jobs.len()).map(|_| None).collect(),
                    progress: (0..jobs.len()).map(|_| None).collect(),
                    completed: 0,
                    retrieved: false,
                    waiters: 0,
                },
            );
        }
        if jobs.is_empty() {
            self.shared.batch_cv.notify_all();
            return BatchId(batch);
        }
        let mut queued = Vec::with_capacity(jobs.len());
        for (index, verification) in jobs.into_iter().enumerate() {
            let design = self.register_design(&verification.netlist);
            let key = CacheKey {
                design,
                property: property_hash(&verification),
                config: config_hash,
            };
            queued.push(QueuedJob {
                job_id: self.shared.next_job.fetch_add(1, Ordering::Relaxed),
                batch,
                index,
                design,
                verification: Arc::new(verification),
                key,
            });
        }
        if let Some(metrics) = &self.shared.metrics {
            metrics
                .counter("service_jobs_submitted_total")
                .add(queued.len() as u64);
            metrics
                .gauge("service_queue_depth")
                .add(queued.len() as f64);
        }
        {
            let mut queue = self.shared.queue.lock_recover();
            queue.extend(queued);
        }
        self.shared.queue_cv.notify_all();
        BatchId(batch)
    }

    /// Progress of a batch; `None` for an unknown (or retired) handle.
    pub fn poll(&self, batch: BatchId) -> Option<BatchStatus> {
        let batches = self.shared.batches.lock_recover();
        batches.states.get(&batch.0).map(|state| BatchStatus {
            total: state.results.len(),
            completed: state.completed,
        })
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock_recover().len()
    }

    /// Live snapshots of every in-flight job (dequeued, racing engines, not
    /// yet completed), in job-id order. Snapshotting reads the races' live
    /// progress cells lock-free; it never perturbs the searches.
    pub fn running_jobs(&self) -> Vec<JobProgress> {
        let running: Vec<Arc<RunningJob>> = {
            let map = self.shared.running.lock_recover();
            map.values().cloned().collect()
        };
        let mut jobs: Vec<JobProgress> = running.iter().map(|r| job_progress(r)).collect();
        jobs.sort_by_key(|j| j.job);
        jobs
    }

    /// Live progress of one batch: completion counts plus a [`JobProgress`]
    /// for each of its jobs currently racing. `None` for an unknown (or
    /// retired) handle.
    pub fn batch_progress(&self, batch: BatchId) -> Option<BatchProgress> {
        let (total, completed) = {
            let batches = self.shared.batches.lock_recover();
            let state = batches.states.get(&batch.0)?;
            (state.results.len(), state.completed)
        };
        let mut running: Vec<JobProgress> = {
            let map = self.shared.running.lock_recover();
            map.values()
                .filter(|r| r.batch == batch.0)
                .map(|r| job_progress(r))
                .collect()
        };
        running.sort_by_key(|j| j.index);
        Some(BatchProgress {
            total,
            completed,
            running,
        })
    }

    /// The per-slot completed results of a batch, each paired with its final
    /// progress probe, in job order (`None` slots are still pending). Unlike
    /// [`VerificationService::results`] this never blocks, works on a
    /// partially complete batch, and does *not* retire it — the streaming
    /// (`subscribe`) read path, which must be able to observe a batch
    /// repeatedly as it fills in.
    pub fn batch_slots(&self, batch: BatchId) -> Option<Vec<Option<(JobResult, ProgressProbe)>>> {
        let batches = self.shared.batches.lock_recover();
        let state = batches.states.get(&batch.0)?;
        Some(
            state
                .results
                .iter()
                .zip(&state.progress)
                .map(|(result, probe)| {
                    result
                        .as_ref()
                        .map(|r| (r.clone(), probe.unwrap_or_default()))
                })
                .collect(),
        )
    }

    /// Blocks until the batch's completed-job count differs from `seen` or
    /// `timeout` elapses, and returns the current count either way. `None`
    /// for an unknown (or retired) handle. The streaming wait primitive: a
    /// subscriber sleeps here between its progress ticks and is woken the
    /// moment any job of the batch completes.
    pub fn wait_batch_change(
        &self,
        batch: BatchId,
        seen: usize,
        timeout: Duration,
    ) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut batches = self.shared.batches.lock_recover();
        batches.states.get_mut(&batch.0)?.waiters += 1;
        let result = loop {
            // The state cannot be evicted while `waiters > 0`.
            let Some(state) = batches.states.get(&batch.0) else {
                break None;
            };
            if state.completed != seen {
                break Some(state.completed);
            }
            let (guard, timed_out) = self
                .shared
                .batch_cv
                .wait_deadline_recover(batches, deadline);
            batches = guard;
            if timed_out {
                break batches.states.get(&batch.0).map(|s| s.completed);
            }
        };
        if let Some(state) = batches.states.get_mut(&batch.0) {
            state.waiters -= 1;
        }
        result
    }

    /// The results of a finished batch in job order; `None` while any job is
    /// still pending (or for an unknown handle).
    ///
    /// Retrieving results marks the batch *retrieved*; the service keeps at
    /// most [`ServiceConfig::retained_batches`] retrieved batches around for
    /// late `poll`/`results` calls, evicting the oldest beyond that — a
    /// long-lived server would otherwise leak every batch (traces included)
    /// it ever answered.
    pub fn results(&self, batch: BatchId) -> Option<Vec<JobResult>> {
        let mut batches = self.shared.batches.lock_recover();
        let state = batches.states.get(&batch.0)?;
        if state.completed < state.results.len() {
            return None;
        }
        let results = state.results.iter().filter_map(|r| r.clone()).collect();
        batches.retire(batch.0, self.shared.config.retained_batches);
        Some(results)
    }

    /// Blocks until every job of the batch has a result, then returns them
    /// in job order (retiring the batch like
    /// [`VerificationService::results`]).
    ///
    /// # Panics
    ///
    /// Panics on an unknown (or already retired-and-evicted) batch handle.
    pub fn wait(&self, batch: BatchId) -> Vec<JobResult> {
        match self.wait_deadline(batch, None) {
            Some(results) => results,
            None => panic!("wait on unknown batch {batch}"),
        }
    }

    /// Like [`VerificationService::wait`], but gives up after `timeout`.
    /// Returns `None` when the batch is unknown *or* still incomplete at the
    /// deadline — the caller's worker is freed either way, which is the
    /// point: a server thread must never block unboundedly on a batch a hung
    /// engine may never finish.
    pub fn wait_timeout(&self, batch: BatchId, timeout: Duration) -> Option<Vec<JobResult>> {
        self.wait_deadline(batch, Some(Instant::now() + timeout))
    }

    fn wait_deadline(&self, batch: BatchId, deadline: Option<Instant>) -> Option<Vec<JobResult>> {
        let mut batches = self.shared.batches.lock_recover();
        batches.states.get_mut(&batch.0)?.waiters += 1;
        loop {
            {
                // The state cannot be evicted while `waiters > 0`; treat a
                // missing entry as a timed-out wait rather than panicking in
                // a worker that holds the batches lock.
                let state = batches.states.get_mut(&batch.0)?;
                if state.completed == state.results.len() {
                    state.waiters -= 1;
                    let results = state.results.iter().filter_map(|r| r.clone()).collect();
                    batches.retire(batch.0, self.shared.config.retained_batches);
                    return Some(results);
                }
            }
            match deadline {
                None => batches = self.shared.batch_cv.wait_recover(batches),
                Some(deadline) => {
                    let (guard, timed_out) = self
                        .shared
                        .batch_cv
                        .wait_deadline_recover(batches, deadline);
                    batches = guard;
                    if timed_out {
                        // Final re-check: a completion may have raced the
                        // deadline.
                        if let Some(state) = batches.states.get_mut(&batch.0) {
                            if state.completed == state.results.len() {
                                continue;
                            }
                            state.waiters -= 1;
                        }
                        return None;
                    }
                }
            }
        }
    }

    /// A snapshot of the session counters.
    pub fn stats(&self) -> ServiceStats {
        let (cache_evictions, cached_verdicts) = {
            let cache = self.shared.cache.lock_recover();
            (cache.evictions, cache.len())
        };
        let workers_alive = {
            let handles = self.shared.worker_handles.lock_recover();
            handles.iter().filter(|h| !h.is_finished()).count()
        };
        let queue_depth = self.shared.queue.lock_recover().len();
        let running_jobs = self.shared.running.lock_recover().len();
        let registry = self.shared.registry.lock_recover();
        let mut stats = ServiceStats {
            designs: registry.len(),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.shared.cache_misses.load(Ordering::Relaxed),
            predicted_races: self.shared.predicted_races.load(Ordering::Relaxed),
            cache_evictions,
            cached_verdicts,
            quarantined_jobs: self.shared.quarantined.load(Ordering::Relaxed),
            timed_out_jobs: self.shared.timeouts.load(Ordering::Relaxed),
            workers_respawned: self.shared.respawned.load(Ordering::Relaxed),
            workers_alive,
            queue_depth,
            running_jobs,
            ..ServiceStats::default()
        };
        for entry in registry.values() {
            let kb = entry.knowledge.lock_recover();
            stats.clauses_banked += kb.clauses.len() as u64;
            stats.datapath_facts += kb.search.datapath_facts.len() as u64;
            stats.estg_conflicts += kb.search.estg.recorded();
        }
        stats
    }

    /// The per-design knowledge statistics (clauses offered/banked/rejected,
    /// races absorbed) for a registered design.
    pub fn knowledge_stats(&self, design: DesignHash) -> Option<KnowledgeStats> {
        let registry = self.shared.registry.lock_recover();
        registry
            .get(&design)
            .map(|e| e.knowledge.lock_recover().stats)
    }

    /// Exports a clone of a design's knowledge base (e.g. to persist across
    /// sessions).
    pub fn export_knowledge(&self, design: DesignHash) -> Option<KnowledgeBase> {
        let registry = self.shared.registry.lock_recover();
        registry
            .get(&design)
            .map(|e| e.knowledge.lock_recover().clone())
    }

    /// Imports an externally persisted knowledge base for a registered
    /// design, after full validation (design-hash binding plus structural
    /// well-formedness of every clause).
    ///
    /// # Errors
    ///
    /// [`KnowledgeError`] when the store is bound to another design, fails
    /// validation, or the design is not registered (reported as a mismatch
    /// against the offered binding).
    pub fn import_knowledge(
        &self,
        design: DesignHash,
        knowledge: &KnowledgeBase,
    ) -> Result<(), KnowledgeError> {
        let entry = {
            let registry = self.shared.registry.lock_recover();
            registry
                .get(&design)
                .cloned()
                .ok_or(KnowledgeError::DesignMismatch {
                    found: knowledge.design(),
                    expected: design,
                })?
        };
        let mut kb = entry.knowledge.lock_recover();
        kb.import(knowledge, &entry.netlist)
    }

    /// Exports the cached verdicts of one design (deterministic order), e.g.
    /// to persist alongside its knowledge base. `None` for an unregistered
    /// design.
    pub fn export_verdicts(&self, design: DesignHash) -> Option<Vec<VerdictRecord>> {
        {
            let registry = self.shared.registry.lock_recover();
            registry.get(&design)?;
        }
        let cache = self.shared.cache.lock_recover();
        Some(cache.export_design(design))
    }

    /// Imports externally persisted verdicts for a registered design after
    /// structural validation (traces must name existing nets at their exact
    /// widths; only definitive verdicts are accepted). Returns the number of
    /// verdicts now cached.
    ///
    /// Imported entries populate the same LRU cache as live verdicts, so the
    /// capacity bound applies to them too.
    ///
    /// # Errors
    ///
    /// [`KnowledgeError::DesignMismatch`] when the design is not registered,
    /// [`KnowledgeError::MalformedVerdict`] (nothing imported) when any
    /// record fails validation.
    pub fn import_verdicts(
        &self,
        design: DesignHash,
        records: &[VerdictRecord],
    ) -> Result<usize, KnowledgeError> {
        let entry = {
            let registry = self.shared.registry.lock_recover();
            registry
                .get(&design)
                .cloned()
                .ok_or(KnowledgeError::DesignMismatch {
                    found: design,
                    expected: design,
                })?
        };
        for (index, record) in records.iter().enumerate() {
            if !verdict_is_well_formed(&record.verdict, &entry.netlist) {
                return Err(KnowledgeError::MalformedVerdict { index });
            }
        }
        let mut cache = self.shared.cache.lock_recover();
        for record in records {
            cache.insert(
                CacheKey {
                    design,
                    property: record.property,
                    config: record.config,
                },
                CachedVerdict {
                    verdict: record.verdict.clone(),
                    winner: record.winner,
                },
            );
        }
        Ok(records.len())
    }

    /// Blocks until the job queue is empty and every dequeued job has
    /// completed — the graceful-shutdown drain: no submission is abandoned
    /// half-raced, and everything learned has been absorbed.
    ///
    /// New submissions during the drain extend it.
    pub fn drain(&self) {
        let mut batches = self.shared.batches.lock_recover();
        loop {
            let queued = {
                let queue = self.shared.queue.lock_recover();
                queue.len()
            };
            let pending: usize = batches
                .states
                .values()
                .map(|state| state.results.len() - state.completed)
                .sum();
            if queued == 0 && pending == 0 {
                return;
            }
            batches = self.shared.batch_cv.wait_recover(batches);
        }
    }

    /// Like [`VerificationService::drain`], but gives up after `timeout`.
    /// Returns `true` when the service fully drained, `false` when work was
    /// still outstanding at the deadline — the bounded-shutdown path: a hung
    /// job must not hold the process hostage forever.
    pub fn drain_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut batches = self.shared.batches.lock_recover();
        loop {
            let queued = self.shared.queue.lock_recover().len();
            let pending: usize = batches
                .states
                .values()
                .map(|state| state.results.len() - state.completed)
                .sum();
            if queued == 0 && pending == 0 {
                return true;
            }
            let (guard, timed_out) = self
                .shared
                .batch_cv
                .wait_deadline_recover(batches, deadline);
            batches = guard;
            if timed_out {
                let queued = self.shared.queue.lock_recover().len();
                let pending: usize = batches
                    .states
                    .values()
                    .map(|state| state.results.len() - state.completed)
                    .sum();
                return queued == 0 && pending == 0;
            }
        }
    }
}

impl Drop for VerificationService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        // Pop-then-join without holding the lock: a panicking worker's
        // respawn sentinel takes the same lock to register its replacement,
        // and any late replacement lands in the vector for a later
        // iteration to pick up.
        loop {
            let handle = self.shared.worker_handles.lock_recover().pop();
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (job, depth) = {
            let mut queue = shared.queue.lock_recover();
            loop {
                if let Some(job) = queue.pop_front() {
                    break (job, queue.len());
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.queue_cv.wait_recover(queue);
            }
        };
        if let Some(metrics) = &shared.metrics {
            metrics.gauge("service_queue_depth").sub(1.0);
            metrics.gauge("service_workers_busy").add(1.0);
        }
        shared.config.recorder.with_job(job.job_id).record(
            RecorderLayer::Service,
            RecorderKind::Dequeue,
            depth as u64,
            job.batch,
        );
        let start = Instant::now();
        // The per-job panic fence: *anything* that unwinds out of job
        // processing — an engine bug, poisoned bookkeeping, an injected
        // `WorkerPanic` — quarantines that one job (completed with an error
        // verdict so its batch still finishes) and leaves the worker alive
        // for the next job.
        let fenced =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| process_job(shared, &job)));
        if let Err(payload) = fenced {
            quarantine_job(shared, &job, start.elapsed(), payload.as_ref());
        }
        if let Some(metrics) = &shared.metrics {
            metrics.gauge("service_workers_busy").sub(1.0);
        }
        // Injected worker loss: a panic *outside* the fence kills this
        // thread after the job is fully recorded; the respawn sentinel
        // replaces it.
        shared.config.faults.panic_point(FaultSite::WorkerLoss);
    }
}

/// Completes a job whose processing panicked: an error verdict (never
/// cached, never persisted), a counter, a metric, a flight-recorder event
/// and a fault report — and nothing else. The batch completes; the pool
/// survives.
fn quarantine_job(shared: &Shared, job: &QueuedJob, wall: Duration, payload: &dyn std::any::Any) {
    shared.quarantined.fetch_add(1, Ordering::Relaxed);
    if let Some(metrics) = &shared.metrics {
        metrics.counter("service_jobs_quarantined_total").inc();
    }
    shared.config.recorder.with_job(job.job_id).record(
        RecorderLayer::Service,
        RecorderKind::Fault,
        job.batch,
        wall.as_nanos() as u64,
    );
    // The fault report runs inside the worker's fault path (see the
    // `faultreport` module docs); describe the panic payload when it is a
    // string, the common case for both real panics and injected ones.
    let detail = if let Some(message) = payload.downcast_ref::<&str>() {
        format!("job panicked: {message}")
    } else if let Some(message) = payload.downcast_ref::<String>() {
        format!("job panicked: {message}")
    } else {
        "job panicked (non-string payload)".to_string()
    };
    shared.config.fault_report.emit(&FaultReport {
        fault: "job_quarantined",
        job: job.job_id,
        batch: job.batch,
        index: job.index,
        design: job.design,
        property: &job.verification.property.name,
        detail,
        wall,
    });
    let result = JobResult {
        property: job.verification.property.name.clone(),
        design: job.design,
        verdict: Verdict::Unknown {
            reason: "job panicked; quarantined".into(),
        },
        winner: None,
        from_cache: false,
        engines_spawned: 0,
        wall,
    };
    record_job_metrics(shared, &result, None);
    complete_job(shared, job, result, ProgressProbe::default());
}

/// Publishes one finished job into the registry: completion/cache counters,
/// the job's wall clock, and — for raced jobs — the core search counters
/// aggregated from every ATPG run of the portfolio.
fn record_job_metrics(shared: &Shared, result: &JobResult, report: Option<&PortfolioReport>) {
    let Some(metrics) = &shared.metrics else {
        return;
    };
    metrics.counter("service_jobs_completed_total").inc();
    if result.from_cache {
        metrics.counter("service_cache_hits_total").inc();
    } else {
        metrics.counter("service_cache_misses_total").inc();
    }
    metrics
        .histogram("service_job_wall_ns")
        .record(result.wall.as_nanos() as u64);
    let Some(report) = report else {
        return;
    };
    for run in &report.runs {
        if let EngineStats::Atpg(stats) = &run.stats {
            metrics.counter("core_decisions_total").add(stats.decisions);
            metrics
                .counter("core_backtracks_total")
                .add(stats.backtracks);
            metrics
                .counter("core_gate_evaluations_total")
                .add(stats.implication.gate_evaluations);
            metrics
                .counter("core_arithmetic_calls_total")
                .add(stats.arithmetic_calls);
            metrics
                .counter("core_datapath_fact_hits_total")
                .add(stats.datapath_fact_hits);
            metrics
                .counter("core_justify_gates_rechecked_total")
                .add(stats.justify_gates_rechecked);
        }
    }
}

fn process_job(shared: &Shared, job: &QueuedJob) {
    let start = Instant::now();
    // Injected worker panic: unwinds into the per-job fence before any
    // bookkeeping, exercising the quarantine path.
    shared.config.faults.panic_point(FaultSite::WorkerPanic);

    // 1. Verdict cache: a repeat query spawns no engine at all.
    let cached = {
        let mut cache = shared.cache.lock_recover();
        cache.get(&job.key)
    };
    if let Some(hit) = cached {
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.config.recorder.with_job(job.job_id).record(
            RecorderLayer::Service,
            RecorderKind::CacheHit,
            job.batch,
            0,
        );
        let result = JobResult {
            property: job.verification.property.name.clone(),
            design: job.design,
            verdict: hit.verdict,
            winner: hit.winner,
            from_cache: true,
            engines_spawned: 0,
            wall: start.elapsed(),
        };
        // No engine ran; synthesize the closing probe from the cached
        // verdict's frame depth so subscribers still see depth-before-verdict.
        let probe = ProgressProbe {
            bound: verdict_bound(&result.verdict),
            probes: 1,
            ..ProgressProbe::default()
        };
        record_job_metrics(shared, &result, None);
        complete_job(shared, job, result, probe);
        return;
    }
    shared.cache_misses.fetch_add(1, Ordering::Relaxed);

    // A design submit_batch registered can only be missing if state was
    // lost to a fault; complete the job with an error verdict rather than
    // panicking the worker over it.
    let Some(entry) = ({
        let registry = shared.registry.lock_recover();
        registry.get(&job.design).cloned()
    }) else {
        let result = JobResult {
            property: job.verification.property.name.clone(),
            design: job.design,
            verdict: Verdict::Unknown {
                reason: "design no longer registered".into(),
            },
            winner: None,
            from_cache: false,
            engines_spawned: 0,
            wall: start.elapsed(),
        };
        record_job_metrics(shared, &result, None);
        complete_job(shared, job, result, ProgressProbe::default());
        return;
    };

    // 2. Warm start from the knowledge base + predictor scheduling.
    let full_portfolio = shared.config.portfolio.engines.len();
    let warm = {
        let kb = entry.knowledge.lock_recover();
        let engines = if shared.config.predict {
            Some(predict_engines(&entry.features, Some(&kb.history)))
        } else {
            None
        };
        WarmStart {
            clauses: kb.clauses.to_seeds(),
            knowledge: kb.search.clone(),
            engines,
        }
    };
    let engines_spawned = warm
        .engines
        .as_ref()
        .map(|e| e.len())
        .unwrap_or(full_portfolio);
    if engines_spawned < full_portfolio {
        shared.predicted_races.fetch_add(1, Ordering::Relaxed);
    }

    // Register the race's live-progress cells before any engine spawns:
    // from here until completion, `progress` observers see this job as
    // running and can snapshot its probes lock-free.
    let running = Arc::new(RunningJob {
        job_id: job.job_id,
        batch: job.batch,
        index: job.index,
        property: job.verification.property.name.clone(),
        design: job.design,
        started: start,
        progress: RaceProgress::new(),
    });
    shared
        .running
        .lock_recover()
        .insert(job.job_id, Arc::clone(&running));

    // 3. Race, absorb, cache. The race is fenced with `catch_unwind`: an
    // engine panic (propagated through the portfolio's scoped threads) must
    // complete the job as `Unknown` instead of killing this worker — a dead
    // worker would shrink the pool for the rest of the session and leave
    // the batch incomplete, hanging every `wait` on it. No service lock is
    // held across the race, so unwinding cannot poison shared state.
    let raced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut portfolio = Portfolio::new(shared.config.portfolio.clone());
        if let Some(metrics) = &shared.metrics {
            portfolio = portfolio.with_metrics(Arc::clone(metrics));
        }
        // The per-job handle stamps this job's id into every portfolio- and
        // core-layer event of the race.
        let recorder = shared.config.recorder.with_job(job.job_id);
        portfolio.race_warm_probed(&job.verification, &warm, &recorder, &running.progress)
    }));
    let (report, harvest) = match raced {
        Ok(outcome) => outcome,
        Err(_) => {
            let result = JobResult {
                property: job.verification.property.name.clone(),
                design: job.design,
                verdict: Verdict::Unknown {
                    reason: "engine panicked".into(),
                },
                winner: None,
                from_cache: false,
                engines_spawned,
                wall: start.elapsed(),
            };
            record_job_metrics(shared, &result, None);
            complete_job(shared, job, result, running.progress.aggregate());
            return;
        }
    };
    if matches!(report.verdict, Verdict::Timeout { .. }) {
        shared.timeouts.fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = &shared.metrics {
            metrics.counter("service_jobs_timed_out_total").inc();
        }
        shared.config.recorder.with_job(job.job_id).record(
            RecorderLayer::Service,
            RecorderKind::Fault,
            job.batch,
            start.elapsed().as_nanos() as u64,
        );
        let budget = shared
            .config
            .portfolio
            .job_budget
            .or(shared.config.job_budget);
        shared.config.fault_report.emit(&FaultReport {
            fault: "job_timeout",
            job: job.job_id,
            batch: job.batch,
            index: job.index,
            design: job.design,
            property: &job.verification.property.name,
            detail: match budget {
                Some(budget) => format!("job exceeded its {budget:?} wall-clock budget"),
                None => "job timed out".to_string(),
            },
            wall: start.elapsed(),
        });
    }
    {
        let mut kb = entry.knowledge.lock_recover();
        kb.absorb(&harvest, &entry.netlist);
    }
    // Write-ahead durability: the journal record is emitted *before* the
    // result is published anywhere — the verdict cache included, since the
    // moment the insert lands a concurrent identical query can be answered
    // (and acknowledged) from it. So anything a client ever saw acknowledged
    // is on disk. Deltas only (see `durability` module docs): the ESTG
    // harvest contains its warm seed, but boot-time replay merges —
    // journaling the difference keeps replay idempotent over any snapshot
    // generation.
    if shared.config.durability.is_armed() {
        let estg_delta: Vec<_> = harvest
            .knowledge
            .as_ref()
            .map(|knowledge| {
                knowledge
                    .estg
                    .entries()
                    .filter_map(|((net, value), count)| {
                        let added =
                            count.saturating_sub(warm.knowledge.estg.conflict_count(net, value));
                        (added > 0).then_some((net, value, added))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let verdict = report.verdict.is_definitive().then(|| VerdictRecord {
            property: job.key.property,
            config: job.key.config,
            verdict: report.verdict.clone(),
            winner: report.winner,
        });
        shared.config.durability.emit(&DurabilityRecord {
            design: job.design,
            netlist: &entry.netlist,
            verdict,
            clauses: &harvest.clauses,
            estg_delta,
            ran: &harvest.ran,
            winner: harvest.winner,
        });
    }
    // Only definitive verdicts are worth replaying; an `Unknown` (budget,
    // cancellation) must not shadow a future run that could decide the job.
    if report.verdict.is_definitive() {
        shared.cache.lock_recover().insert(
            job.key,
            CachedVerdict {
                verdict: report.verdict.clone(),
                winner: report.winner,
            },
        );
    }
    shared.config.recorder.with_job(job.job_id).record(
        RecorderLayer::Service,
        RecorderKind::End,
        job.batch,
        start.elapsed().as_nanos() as u64,
    );
    let result = JobResult {
        property: report.property.clone(),
        design: job.design,
        verdict: report.verdict.clone(),
        winner: report.winner,
        from_cache: false,
        engines_spawned,
        wall: start.elapsed(),
    };
    record_job_metrics(shared, &result, Some(&report));
    complete_job(shared, job, result, running.progress.aggregate());
}

/// Snapshots one in-flight job into the public progress view.
fn job_progress(running: &RunningJob) -> JobProgress {
    JobProgress {
        job: running.job_id,
        batch: BatchId(running.batch),
        index: running.index,
        property: running.property.clone(),
        design: running.design,
        elapsed: running.started.elapsed(),
        leading: running.progress.leading_engine(),
        probe: running.progress.aggregate(),
    }
}

/// The frame depth a verdict vouches for: explored frames for bounded
/// passes, the trace length for trace-backed answers, 0 when the verdict
/// says nothing about depth.
fn verdict_bound(verdict: &Verdict) -> u64 {
    match verdict {
        Verdict::Holds { frames, .. } | Verdict::WitnessAbsent { frames } => *frames as u64,
        Verdict::Violated { trace } | Verdict::WitnessFound { trace } => trace.len() as u64,
        Verdict::Unknown { .. } | Verdict::Timeout { .. } => 0,
    }
}

/// Records a job's result and final progress probe, deregisters it from the
/// running set and wakes waiters. Tolerant by design: a batch evicted under
/// fault, or a slot an earlier (panicked-then-quarantined) attempt already
/// filled, is left alone — completion must never panic, because it runs
/// inside *and* outside the per-job fence.
fn complete_job(shared: &Shared, job: &QueuedJob, result: JobResult, mut probe: ProgressProbe) {
    shared.running.lock_recover().remove(&job.job_id);
    // A subscriber's closing progress event should carry the depth the
    // verdict vouches for even when no engine published live (cache hits,
    // instant answers).
    if probe.bound == 0 {
        probe.bound = verdict_bound(&result.verdict);
    }
    if let Some(metrics) = &shared.metrics {
        metrics
            .counter("core_progress_probes_total")
            .add(probe.probes);
    }
    let mut batches = shared.batches.lock_recover();
    if let Some(state) = batches.states.get_mut(&job.batch) {
        if state.results[job.index].is_none() {
            state.results[job.index] = Some(result);
            state.progress[job.index] = Some(probe);
            state.completed += 1;
        }
    }
    drop(batches);
    shared.batch_cv.notify_all();
}
