//! The fault-report hook: how contained failures leave the service for a
//! post-mortem.
//!
//! The service quarantines panicking jobs and times out over-budget ones,
//! but it knows nothing about files or dump formats — the same separation
//! as [`DurabilitySink`](crate::DurabilitySink). When a fault path fires,
//! the worker offers a borrowed [`FaultReport`] — the fault's stable name,
//! the triggering job's descriptor and what is known about its execution —
//! to an optional [`FaultSink`]. The server implements the sink with its
//! post-mortem dump writer; the disabled default costs one `Option` check
//! per fault (and faults are already the cold path).
//!
//! Sinks must never panic and must not block for long: they run on the
//! worker thread, inside the fault path itself — a sink that hangs turns
//! one contained failure into a stuck worker.

use crate::hash::DesignHash;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Everything the service knows about one contained fault, borrowed from
/// the faulting worker's stack. A sink that needs the data beyond the call
/// must copy it.
#[derive(Debug)]
pub struct FaultReport<'a> {
    /// Stable fault-path name: `job_quarantined`, `job_timeout`.
    pub fault: &'static str,
    /// The flight-recorder job id the faulting job's events are stamped
    /// with (0 when the fault is not job-scoped).
    pub job: u64,
    /// The batch the job belonged to.
    pub batch: u64,
    /// The job's index within its batch.
    pub index: usize,
    /// The design the job ran against.
    pub design: DesignHash,
    /// The property's monitor-net name.
    pub property: &'a str,
    /// Human-readable detail (panic payload, budget).
    pub detail: String,
    /// Wall-clock time the job had consumed when the fault was contained.
    pub wall: Duration,
}

/// A destination for [`FaultReport`]s — implemented by the server's
/// post-mortem dump writer.
pub trait FaultSink: Send + Sync {
    /// Reports one contained fault. Failures are the sink's to count and
    /// swallow.
    fn fault(&self, report: &FaultReport<'_>);
}

/// The optional sink as configuration: `Clone` + `Debug` so
/// [`ServiceConfig`](crate::ServiceConfig) keeps deriving both, inert and
/// free by default — the [`DurabilityHook`](crate::DurabilityHook) pattern.
#[derive(Clone, Default)]
pub struct FaultReportHook {
    sink: Option<Arc<dyn FaultSink>>,
}

impl FaultReportHook {
    /// No sink: faults are contained and counted, but not reported (the
    /// default).
    pub fn disabled() -> Self {
        FaultReportHook::default()
    }

    /// Routes every contained fault through `sink`.
    pub fn new(sink: Arc<dyn FaultSink>) -> Self {
        FaultReportHook { sink: Some(sink) }
    }

    /// `true` when a sink is attached.
    pub fn is_armed(&self) -> bool {
        self.sink.is_some()
    }

    pub(crate) fn emit(&self, report: &FaultReport<'_>) {
        if let Some(sink) = &self.sink {
            sink.fault(report);
        }
    }
}

impl fmt::Debug for FaultReportHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultReportHook")
            .field("armed", &self.sink.is_some())
            .finish()
    }
}
