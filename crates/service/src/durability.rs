//! The durability hook: how completed work leaves the service for disk.
//!
//! The service itself knows nothing about files or formats. When a raced job
//! finishes, it offers everything the race produced — the definitive verdict
//! (if any), the harvested frame clauses, the ESTG conflict *delta* and the
//! engine-history delta — to an optional [`DurabilitySink`] *before* the
//! result is published to waiters. A write-ahead journal (see
//! `wlac-persist`) implements the sink; the disabled default costs one
//! `Option` check per job.
//!
//! Deltas, not absolutes: [`KnowledgeBase::absorb`] *replaces* the ESTG with
//! the harvest (which already contains the warm seed), while a boot-time
//! replay *merges* into whatever a newer snapshot restored. Journaling the
//! absolute ESTG would double-count every seed conflict on replay, so the
//! record carries only what this race added over its warm start. Replay is
//! therefore harmless-idempotent: verdicts and clauses deduplicate exactly,
//! and an ESTG/history over-count after an unlucky crash merely reorders
//! decision heuristics — never verdicts.
//!
//! [`KnowledgeBase::absorb`]: crate::KnowledgeBase::absorb

use crate::hash::DesignHash;
use crate::session::VerdictRecord;
use std::fmt;
use std::sync::Arc;
use wlac_baselines::FrameClause;
use wlac_netlist::{NetId, Netlist};
use wlac_portfolio::Engine;

/// Everything one completed raced job contributes to durable state.
///
/// Borrowed from the worker's stack at emission time; a sink that needs the
/// data beyond the call must serialize or clone it.
pub struct DurabilityRecord<'a> {
    /// The design the job ran against.
    pub design: DesignHash,
    /// The design's canonical netlist — a sink opening a fresh journal
    /// embeds it so recovery is self-contained even before any snapshot
    /// exists.
    pub netlist: &'a Netlist,
    /// The cache entry this job created: present exactly when the verdict
    /// was definitive (and therefore cached and acknowledgeable as
    /// replayable).
    pub verdict: Option<VerdictRecord>,
    /// Design-valid frame clauses harvested from the race.
    pub clauses: &'a [FrameClause],
    /// ESTG conflicts this race added *over its warm seed*:
    /// `(net, value, additional_count)` with `additional_count > 0`.
    pub estg_delta: Vec<(NetId, bool, u64)>,
    /// Engines the race actually spawned (the engine-history delta, replayed
    /// via `EngineHistory::record`).
    pub ran: &'a [Engine],
    /// The engine that won, when any did.
    pub winner: Option<Engine>,
}

impl fmt::Debug for DurabilityRecord<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurabilityRecord")
            .field("design", &self.design)
            .field("verdict", &self.verdict.is_some())
            .field("clauses", &self.clauses.len())
            .field("estg_delta", &self.estg_delta.len())
            .field("ran", &self.ran.len())
            .finish()
    }
}

/// A destination for [`DurabilityRecord`]s — implemented by the write-ahead
/// journal in `wlac-persist`.
///
/// Called on the worker thread after the job's knowledge is absorbed,
/// *before* the result is published anywhere — the verdict cache included,
/// since a concurrent identical query can be acknowledged from the cache the
/// moment an insert lands: a sink that writes ahead guarantees every
/// acknowledged result is on disk. Sinks must never panic for I/O reasons —
/// durability degrades, serving continues — and should do their own error
/// accounting.
pub trait DurabilitySink: Send + Sync {
    /// Records one completed job. Failures are the sink's to count and
    /// swallow.
    fn record(&self, record: &DurabilityRecord<'_>);
}

/// The optional sink as configuration: `Clone` + `Debug` so
/// [`ServiceConfig`](crate::ServiceConfig) keeps deriving both, inert and
/// free by default — the [`FaultPlan`](wlac_faultinject::FaultPlan) pattern.
#[derive(Clone, Default)]
pub struct DurabilityHook {
    sink: Option<Arc<dyn DurabilitySink>>,
}

impl DurabilityHook {
    /// No sink: jobs complete without any durability work (the default).
    pub fn disabled() -> Self {
        DurabilityHook::default()
    }

    /// Routes every completed raced job through `sink`.
    pub fn new(sink: Arc<dyn DurabilitySink>) -> Self {
        DurabilityHook { sink: Some(sink) }
    }

    /// `true` when a sink is attached.
    pub fn is_armed(&self) -> bool {
        self.sink.is_some()
    }

    pub(crate) fn emit(&self, record: &DurabilityRecord<'_>) {
        if let Some(sink) = &self.sink {
            sink.record(record);
        }
    }
}

impl fmt::Debug for DurabilityHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurabilityHook")
            .field("armed", &self.sink.is_some())
            .finish()
    }
}
