//! The per-design cross-property knowledge base.
//!
//! One [`KnowledgeBase`] accumulates everything every engine learns about one
//! design, across all properties and batches of a session:
//!
//! * a [`ClauseBank`] of design-valid, frame-relative CDCL clauses lifted out
//!   of SAT BMC runs (deduplicated, depth-minimised, capacity-capped),
//! * the ATPG [`SearchKnowledge`] — ESTG conflict cubes and modular-solver
//!   infeasibility facts,
//! * the [`EngineHistory`] feeding the scheduling predictor.
//!
//! Every knowledge base is **bound to a design hash**. Imports are validated
//! against both the hash and the netlist structure; anything malformed — a
//! clause naming a non-existent net, a bit beyond a net's width, a frame
//! beyond its recorded depth, or a store claiming to describe a different
//! design — is rejected with [`KnowledgeError`] rather than trusted.

use crate::hash::DesignHash;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use wlac_atpg::SearchKnowledge;
use wlac_baselines::{FrameClause, FrameLit};
use wlac_netlist::Netlist;
use wlac_portfolio::{EngineHistory, Harvest};

/// Why a knowledge import was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnowledgeError {
    /// The store is bound to a different design than the target.
    DesignMismatch {
        /// Hash the store claims to describe.
        found: DesignHash,
        /// Hash of the design it was offered to.
        expected: DesignHash,
    },
    /// A frame clause fails structural validation against the design.
    MalformedClause {
        /// Index of the offending clause in the imported store.
        index: usize,
    },
    /// An imported cached verdict fails structural validation against the
    /// design (a trace naming a non-existent net, a value of the wrong
    /// width, or a non-definitive verdict).
    MalformedVerdict {
        /// Index of the offending record in the imported batch.
        index: usize,
    },
}

impl fmt::Display for KnowledgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnowledgeError::DesignMismatch { found, expected } => write!(
                f,
                "knowledge base is bound to design {found}, not {expected}"
            ),
            KnowledgeError::MalformedClause { index } => {
                write!(f, "frame clause #{index} fails structural validation")
            }
            KnowledgeError::MalformedVerdict { index } => {
                write!(f, "cached verdict #{index} fails structural validation")
            }
        }
    }
}

impl Error for KnowledgeError {}

/// Deduplicating, subsuming, capacity-capped store of design-valid frame
/// clauses.
///
/// Clauses are canonicalised (literals sorted) before lookup; a duplicate
/// keeps the **smaller** learn depth only when it was genuinely learned at
/// that depth (smaller depth ⇒ valid at more shifts, and the recorded depth
/// is part of the clause's validity claim, so it is never invented).
///
/// On insert the bank also runs subsumption both ways: a new clause whose
/// literal set is a superset of a banked clause (at a depth no smaller than
/// the banked one, so the banked clause replays at every shift the new one
/// would) adds no pruning power and is rejected; conversely a new clause
/// drops every banked clause it subsumes, so each banked clause is a
/// maximal-pruning representative.
#[derive(Debug, Clone)]
pub struct ClauseBank {
    clauses: HashMap<Box<[FrameLit]>, u32>,
    cap: usize,
    subsumed: u64,
}

/// `true` when every literal of `sub` occurs in `sup` (both sorted,
/// duplicate-free). The clause `sub` then implies the clause `sup`.
fn lits_subsume(sub: &[FrameLit], sup: &[FrameLit]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut it = sup.iter();
    'outer: for lit in sub {
        for candidate in it.by_ref() {
            if candidate == lit {
                continue 'outer;
            }
            if candidate > lit {
                return false;
            }
        }
        return false;
    }
    true
}

impl ClauseBank {
    /// Creates an empty bank holding at most `cap` clauses.
    pub fn new(cap: usize) -> Self {
        ClauseBank {
            clauses: HashMap::new(),
            cap,
            subsumed: 0,
        }
    }

    /// Banked clauses dropped so far because a newly inserted clause
    /// subsumed them.
    pub fn subsumed_drops(&self) -> u64 {
        self.subsumed
    }

    /// Number of banked clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` when the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Inserts one clause; returns `true` when it was new (or improved an
    /// existing clause's depth). Full banks reject new entries — pruning
    /// power saturates long before the cap, and a bounded bank keeps
    /// warm-start injection cost predictable.
    ///
    /// The bank is dumb storage: structural validation against the design is
    /// the owner's job ([`KnowledgeBase::absorb`] validates before banking,
    /// [`KnowledgeBase::import`] rejects a store containing anything
    /// malformed).
    pub fn insert(&mut self, clause: &FrameClause) -> bool {
        let mut lits: Vec<FrameLit> = clause.lits.clone();
        lits.sort_by_key(|l| (l.frame, l.net, l.bit, l.negated));
        lits.dedup();
        let key: Box<[FrameLit]> = lits.into_boxed_slice();
        let improved = match self.clauses.get_mut(&key) {
            Some(depth) if clause.depth < *depth => {
                *depth = clause.depth;
                true
            }
            Some(_) => return false,
            None => {
                // A banked clause that subsumes the new one (subset of its
                // literals, replayable at least as widely) makes it
                // redundant.
                if self
                    .clauses
                    .iter()
                    .any(|(banked, depth)| *depth <= clause.depth && lits_subsume(banked, &key))
                {
                    return false;
                }
                false
            }
        };
        // Drop every banked clause the new (or newly deepened) one subsumes
        // — each is weaker (superset of literals) and no more replayable.
        let before = self.clauses.len();
        self.clauses.retain(|banked, depth| {
            **banked == *key || !(clause.depth <= *depth && lits_subsume(&key, banked))
        });
        self.subsumed += (before - self.clauses.len()) as u64;
        if improved {
            return true;
        }
        if self.clauses.len() < self.cap {
            self.clauses.insert(key, clause.depth);
            true
        } else {
            false
        }
    }

    /// Materialises the bank as replayable seed clauses.
    pub fn to_seeds(&self) -> Vec<FrameClause> {
        let mut seeds: Vec<FrameClause> = self
            .clauses
            .iter()
            .map(|(lits, depth)| FrameClause {
                depth: *depth,
                lits: lits.to_vec(),
            })
            .collect();
        // Deterministic injection order regardless of hash-map iteration.
        seeds.sort_by(|a, b| (a.depth, &a.lits).cmp(&(b.depth, &b.lits)));
        seeds
    }
}

/// Aggregate effectiveness counters of one knowledge base.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KnowledgeStats {
    /// Clauses offered by harvests (before deduplication).
    pub clauses_offered: u64,
    /// Clauses actually banked (new or depth-improved).
    pub clauses_banked: u64,
    /// Harvest clauses dropped by structural validation (should be zero for
    /// honest engines; counted rather than trusted).
    pub clauses_rejected: u64,
    /// Races absorbed into this base.
    pub races_absorbed: u64,
}

/// The per-design learning store. See the module docs.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    design: DesignHash,
    /// Design-valid frame-relative CDCL clauses for BMC warm starts.
    pub clauses: ClauseBank,
    /// ATPG search knowledge (ESTG conflict cubes, datapath facts).
    pub search: SearchKnowledge,
    /// Engine win/loss history for the scheduling predictor.
    pub history: EngineHistory,
    /// Effectiveness counters.
    pub stats: KnowledgeStats,
}

/// Default clause-bank capacity per design.
pub const DEFAULT_CLAUSE_CAP: usize = 1024;

impl KnowledgeBase {
    /// Creates an empty knowledge base bound to `design`.
    pub fn new(design: DesignHash) -> Self {
        KnowledgeBase {
            design,
            clauses: ClauseBank::new(DEFAULT_CLAUSE_CAP),
            search: SearchKnowledge::new(),
            history: EngineHistory::new(),
            stats: KnowledgeStats::default(),
        }
    }

    /// The design this base is bound to.
    pub fn design(&self) -> DesignHash {
        self.design
    }

    /// Absorbs one race's harvest. Harvested clauses are re-validated against
    /// the design structure before banking — an engine bug can at worst drop
    /// a clause, never poison the bank.
    pub fn absorb(&mut self, harvest: &Harvest, netlist: &Netlist) {
        self.stats.races_absorbed += 1;
        for clause in &harvest.clauses {
            self.stats.clauses_offered += 1;
            if !clause.is_well_formed(netlist) {
                self.stats.clauses_rejected += 1;
                continue;
            }
            if self.clauses.insert(clause) {
                self.stats.clauses_banked += 1;
            }
        }
        if let Some(knowledge) = &harvest.knowledge {
            // The harvest bundle is the seed the race started from *plus*
            // this run's delta, so the ESTG is replaced, not merged —
            // merging would re-add the seed counts on every race and grow
            // them geometrically. (Concurrent races on one design may each
            // replace with their own seed+delta; losing a rival's delta is
            // fine for an ordering heuristic and keeps counts bounded by
            // real conflict work.) The facts set is a union: idempotent.
            self.search.estg = knowledge.estg.clone();
            self.search.datapath_facts.merge(&knowledge.datapath_facts);
        }
        self.history.record(&harvest.ran, harvest.winner);
    }

    /// Imports a knowledge base (e.g. persisted from an earlier session)
    /// after full validation: the design binding must match and every clause
    /// must be structurally well-formed for `netlist`.
    ///
    /// Only the clause bank and the ESTG history cross the trust boundary.
    /// Datapath infeasibility facts are **not** imported: they replay
    /// verdict-affecting conclusions without re-solving and cannot be
    /// re-validated structurally here, so an external store — whose design
    /// binding is ultimately self-asserted — is never trusted with them.
    /// They are cheap to re-derive on the first warm race.
    ///
    /// # Errors
    ///
    /// Returns [`KnowledgeError`] — and leaves `self` untouched — when the
    /// store is bound to a different design or contains a malformed clause.
    pub fn import(
        &mut self,
        other: &KnowledgeBase,
        netlist: &Netlist,
    ) -> Result<(), KnowledgeError> {
        if other.design != self.design {
            return Err(KnowledgeError::DesignMismatch {
                found: other.design,
                expected: self.design,
            });
        }
        let seeds = other.clauses.to_seeds();
        for (index, clause) in seeds.iter().enumerate() {
            if !clause.is_well_formed(netlist) {
                return Err(KnowledgeError::MalformedClause { index });
            }
        }
        for clause in &seeds {
            if self.clauses.insert(clause) {
                self.stats.clauses_banked += 1;
            }
            self.stats.clauses_offered += 1;
        }
        // ESTG conflict counts only reorder decisions, so a foreign history
        // is at worst useless — merge it. Datapath facts are deliberately
        // NOT imported: a fact replays an infeasibility verdict without
        // re-solving, the design binding of an external store is
        // self-asserted, and facts (unlike clauses) cannot be structurally
        // re-validated here — trusting them would let a forged store flip
        // verdicts. They are cheap to re-derive, so the session re-learns
        // them on the first warm race instead.
        self.search.estg.merge(&other.search.estg);
        // Engine win/loss history is scheduling pressure only (the predictor
        // always keeps a complete engine), so a persisted history merges —
        // this is what lets a restarted server skip the exploration races.
        self.history.merge(&other.history);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_bv::Bv;
    use wlac_netlist::NetId;

    fn tiny_netlist() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let s = nl.add(a, b);
        nl.mark_output("s", s);
        nl
    }

    fn lit(frame: u32, net: usize, bit: u32, negated: bool) -> FrameLit {
        FrameLit {
            frame,
            net: NetId::from_index(net),
            bit,
            negated,
        }
    }

    fn clause(depth: u32, lits: Vec<FrameLit>) -> FrameClause {
        FrameClause { depth, lits }
    }

    #[test]
    fn bank_dedups_and_keeps_the_smaller_depth() {
        let mut bank = ClauseBank::new(8);
        let c = clause(3, vec![lit(0, 0, 1, false), lit(1, 1, 0, true)]);
        assert!(bank.insert(&c));
        // Same literals in a different order: a duplicate.
        let shuffled = clause(3, vec![lit(1, 1, 0, true), lit(0, 0, 1, false)]);
        assert!(!bank.insert(&shuffled));
        assert_eq!(bank.len(), 1);
        // Learned again at a smaller depth: the stronger claim wins.
        let earlier = clause(2, vec![lit(0, 0, 1, false), lit(1, 1, 0, true)]);
        assert!(bank.insert(&earlier));
        assert_eq!(bank.to_seeds()[0].depth, 2);
        // A larger depth never weakens the stored claim.
        let later = clause(5, vec![lit(0, 0, 1, false), lit(1, 1, 0, true)]);
        assert!(!bank.insert(&later));
        assert_eq!(bank.to_seeds()[0].depth, 2);
    }

    #[test]
    fn bank_subsumption_drops_weaker_clauses() {
        let mut bank = ClauseBank::new(8);
        // Hand-built pair: the longer clause is banked first, then a shorter
        // clause over a subset of its literals arrives at the same depth.
        let long = clause(2, vec![lit(0, 0, 1, false), lit(1, 1, 0, true)]);
        let short = clause(2, vec![lit(0, 0, 1, false)]);
        assert!(bank.insert(&long));
        assert!(bank.insert(&short));
        // The short clause implies the long one and replays at the same
        // shifts, so only the short one survives.
        assert_eq!(bank.len(), 1);
        assert_eq!(bank.to_seeds(), vec![short.clone()]);
        assert_eq!(bank.subsumed_drops(), 1);

        // Re-offering the long clause is now rejected as redundant.
        assert!(!bank.insert(&long));
        assert_eq!(bank.len(), 1);

        // A superset clause at a *smaller* depth is NOT subsumed: the banked
        // subset cannot be injected into unrollings shallower than its own
        // learn depth, so the wider-replayable clause must be kept.
        let shallow_long = clause(1, vec![lit(0, 0, 1, false), lit(1, 1, 0, true)]);
        assert!(bank.insert(&shallow_long));
        assert_eq!(bank.len(), 2);

        // And a shallow subset sweeps out both: it is stronger than the
        // superset and at least as replayable as everything banked.
        let shallow_short = clause(1, vec![lit(0, 0, 1, false)]);
        assert!(bank.insert(&shallow_short));
        assert_eq!(bank.to_seeds(), vec![shallow_short]);
    }

    #[test]
    fn bank_cap_is_enforced() {
        let mut bank = ClauseBank::new(2);
        for i in 0..5 {
            bank.insert(&clause(1, vec![lit(0, 0, i, false)]));
        }
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn absorb_rejects_malformed_clauses_quietly() {
        let nl = tiny_netlist();
        let mut kb = KnowledgeBase::new(crate::hash::design_hash(&nl));
        let harvest = Harvest {
            clauses: vec![
                clause(1, vec![lit(0, 0, 1, false)]),  // fine: bit 1 of 4-bit a
                clause(1, vec![lit(0, 99, 0, false)]), // net out of range
                clause(1, vec![lit(0, 0, 9, false)]),  // bit beyond width
                clause(1, vec![lit(5, 0, 0, false)]),  // frame beyond depth
            ],
            knowledge: None,
            winner: None,
            ran: Vec::new(),
        };
        kb.absorb(&harvest, &nl);
        assert_eq!(kb.clauses.len(), 1);
        assert_eq!(kb.stats.clauses_rejected, 3);
        assert_eq!(kb.stats.clauses_banked, 1);
    }

    #[test]
    fn absorbing_a_seeded_harvest_replaces_rather_than_doubles_the_estg() {
        use wlac_atpg::SearchKnowledge;
        use wlac_netlist::NetId;

        let nl = tiny_netlist();
        let mut kb = KnowledgeBase::new(crate::hash::design_hash(&nl));
        let net = NetId::from_index(0);
        // Simulate many races: each harvest is "seed + delta", i.e. the
        // knowledge base's current ESTG plus one new conflict.
        for round in 1..=50u64 {
            let mut bundle = SearchKnowledge::new();
            bundle.estg = kb.search.estg.clone();
            bundle.estg.record_conflict(net, true);
            let harvest = Harvest {
                clauses: Vec::new(),
                knowledge: Some(bundle),
                winner: None,
                ran: Vec::new(),
            };
            kb.absorb(&harvest, &nl);
            // Linear growth (one new conflict per race), never geometric.
            assert_eq!(
                kb.search.estg.conflict_count(net, true),
                round,
                "round {round}"
            );
        }
    }

    #[test]
    fn import_rejects_wrong_design_and_poisoned_clauses() {
        let nl = tiny_netlist();
        let hash = crate::hash::design_hash(&nl);
        let mut kb = KnowledgeBase::new(hash);

        // Wrong design binding.
        let mut other_nl = tiny_netlist();
        let extra = other_nl.constant(&Bv::from_u64(4, 7));
        other_nl.mark_output("extra", extra);
        let foreign = KnowledgeBase::new(crate::hash::design_hash(&other_nl));
        assert!(matches!(
            kb.import(&foreign, &nl),
            Err(KnowledgeError::DesignMismatch { .. })
        ));

        // Right binding but a poisoned clause: rejected, nothing imported.
        let mut poisoned = KnowledgeBase::new(hash);
        poisoned
            .clauses
            .insert(&clause(1, vec![lit(0, 99, 0, false)]));
        assert!(matches!(
            kb.import(&poisoned, &nl),
            Err(KnowledgeError::MalformedClause { .. })
        ));
        assert!(kb.clauses.is_empty());

        // A clean store imports.
        let mut clean = KnowledgeBase::new(hash);
        clean.clauses.insert(&clause(1, vec![lit(0, 0, 0, true)]));
        assert!(kb.import(&clean, &nl).is_ok());
        assert_eq!(kb.clauses.len(), 1);
    }
}
