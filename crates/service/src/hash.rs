//! Structural identity of designs, properties and configurations.
//!
//! Everything the learning store knows is only valid for a *structurally
//! identical* netlist: the ESTG and datapath facts key on nets of the
//! deterministic time-frame expansion, and frame-relative clauses name
//! original net ids. [`design_hash`] fingerprints exactly the structure those
//! stores depend on — net widths, gate kinds/pins/outputs, primary inputs and
//! outputs — so a knowledge base bound to a hash can be safely rejected when
//! presented with any other design.

use std::fmt;
use wlac_atpg::Verification;
use wlac_netlist::{GateKind, Netlist};
use wlac_portfolio::PortfolioConfig;

/// 64-bit FNV-1a, the workspace-standard offline hash.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Structural fingerprint of a design. Two netlists with the same hash are
/// treated as the same design by the registry and may share a knowledge base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DesignHash(pub u64);

impl fmt::Display for DesignHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{:016x}", self.0)
    }
}

/// Fingerprint of a property (monitor, temporal kind, environment) *within*
/// a particular design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PropertyHash(pub u64);

impl fmt::Display for PropertyHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:016x}", self.0)
    }
}

fn hash_gate_kind(h: &mut Fnv, kind: &GateKind) {
    // A stable tag per kind plus every semantic payload bit.
    let tag: u8 = match kind {
        GateKind::Const(_) => 0,
        GateKind::Not => 1,
        GateKind::And => 2,
        GateKind::Or => 3,
        GateKind::Xor => 4,
        GateKind::Buf => 5,
        GateKind::ReduceAnd => 6,
        GateKind::ReduceOr => 7,
        GateKind::ReduceXor => 8,
        GateKind::Add => 9,
        GateKind::Sub => 10,
        GateKind::Mul => 11,
        GateKind::Shl => 12,
        GateKind::Shr => 13,
        GateKind::Eq => 14,
        GateKind::Ne => 15,
        GateKind::Lt => 16,
        GateKind::Le => 17,
        GateKind::Gt => 18,
        GateKind::Ge => 19,
        GateKind::Mux => 20,
        GateKind::Concat => 21,
        GateKind::Slice { .. } => 22,
        GateKind::ZeroExt => 23,
        GateKind::Dff { .. } => 24,
    };
    h.byte(tag);
    match kind {
        GateKind::Const(v) => {
            h.usize(v.width());
            for bit in 0..v.width() {
                h.byte(v.bit(bit) as u8);
            }
        }
        GateKind::Slice { lo } => h.usize(*lo),
        GateKind::Dff { init } => match init {
            None => h.byte(0),
            Some(v) => {
                h.byte(1);
                h.usize(v.width());
                for bit in 0..v.width() {
                    h.byte(v.bit(bit) as u8);
                }
            }
        },
        _ => {}
    }
}

/// Structural hash of a netlist: net widths, gates (kind, pins, output),
/// primary inputs and outputs. Names are deliberately excluded — they do not
/// affect checking semantics.
pub fn design_hash(netlist: &Netlist) -> DesignHash {
    let mut h = Fnv::new();
    h.usize(netlist.net_count());
    for net in netlist.nets() {
        h.usize(netlist.net_width(net));
    }
    h.usize(netlist.gate_count());
    for (_, gate) in netlist.gates() {
        hash_gate_kind(&mut h, &gate.kind);
        h.usize(gate.inputs.len());
        for input in gate.inputs.iter() {
            h.usize(input.index());
        }
        h.usize(gate.output.index());
    }
    h.usize(netlist.inputs().len());
    for input in netlist.inputs() {
        h.usize(input.index());
    }
    h.usize(netlist.outputs().len());
    for (_, net) in netlist.outputs() {
        h.usize(net.index());
    }
    DesignHash(h.finish())
}

/// Hash of the property-specific part of a verification job: the monitor
/// net, the temporal kind and the environment constraints (the design itself
/// is keyed separately by [`design_hash`]).
pub fn property_hash(verification: &Verification) -> PropertyHash {
    let mut h = Fnv::new();
    h.byte(match verification.property.kind {
        wlac_atpg::PropertyKind::Always => 0,
        wlac_atpg::PropertyKind::Eventually => 1,
    });
    h.usize(verification.property.monitor.index());
    h.usize(verification.environment.len());
    for env in &verification.environment {
        h.usize(env.index());
    }
    PropertyHash(h.finish())
}

/// Fingerprint of the verdict-affecting parts of a portfolio configuration.
/// Two jobs may share a cached verdict only when this matches: the bound,
/// induction, budgets and random-simulation parameters all shape what a
/// verdict can say.
pub fn config_fingerprint(config: &PortfolioConfig) -> u64 {
    let mut h = Fnv::new();
    h.usize(config.checker.max_frames);
    h.byte(config.checker.use_induction as u8);
    h.byte(config.checker.use_arithmetic_solver as u8);
    h.usize(config.checker.backtrack_limit);
    h.usize(config.checker.decision_limit);
    h.u64(config.checker.time_limit.as_millis() as u64);
    h.u64(config.bmc_decision_budget);
    h.usize(config.random_runs);
    h.usize(config.random_cycles);
    h.u64(config.random_seed);
    // The job budget bounds what a race can conclude (like the per-engine
    // time limit above): a verdict earned under one budget must not answer
    // a query made under another.
    h.u64(
        config
            .job_budget
            .map(|b| b.as_millis() as u64)
            .unwrap_or(u64::MAX),
    );
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::Property;
    use wlac_bv::Bv;

    fn counter(wrap: u64) -> Netlist {
        let mut nl = Netlist::new("counter");
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let plus = nl.add(q, one);
        let wrap_net = nl.constant(&Bv::from_u64(4, wrap));
        let at_wrap = nl.eq(q, wrap_net);
        let zero = nl.constant(&Bv::zero(4));
        let next = nl.mux(at_wrap, zero, plus);
        nl.connect_dff_data(ff, next);
        nl.mark_output("q", q);
        nl
    }

    #[test]
    fn identical_structure_hashes_identically() {
        assert_eq!(design_hash(&counter(5)), design_hash(&counter(5)));
        // A different constant is a different design.
        assert_ne!(design_hash(&counter(5)), design_hash(&counter(6)));
    }

    #[test]
    fn names_do_not_affect_the_hash() {
        // Same structure under different design/net names hashes identically.
        let mut a = Netlist::new("first");
        let x = a.input("x", 4);
        let y = a.input("y", 4);
        let sum = a.add(x, y);
        a.mark_output("sum", sum);
        let mut b = Netlist::new("second");
        let p = b.input("p", 4);
        let q = b.input("q", 4);
        let total = b.add(p, q);
        b.mark_output("total", total);
        assert_eq!(design_hash(&a), design_hash(&b));
    }

    #[test]
    fn property_hash_distinguishes_kind_and_monitor() {
        let mut nl = counter(5);
        let q = nl.outputs()[0].1;
        let three = nl.constant(&Bv::from_u64(4, 3));
        let m1 = nl.eq(q, three);
        let m2 = nl.ne(q, three);
        let v1 = Verification::new(nl.clone(), Property::always(&nl, "a", m1));
        let v2 = Verification::new(nl.clone(), Property::always(&nl, "b", m2));
        let v3 = Verification::new(nl.clone(), Property::eventually(&nl, "c", m1));
        let v4 = Verification::new(nl.clone(), Property::always(&nl, "d", m1)).with_environment(m2);
        assert_ne!(property_hash(&v1), property_hash(&v2));
        assert_ne!(property_hash(&v1), property_hash(&v3));
        assert_ne!(property_hash(&v1), property_hash(&v4));
        assert_eq!(property_hash(&v1), property_hash(&v1.clone()));
    }

    #[test]
    fn config_fingerprint_tracks_the_bound() {
        let a = PortfolioConfig::default();
        let mut b = PortfolioConfig::default();
        b.checker.max_frames += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
    }
}
