//! # wlac-rng — a minimal deterministic pseudo-random number generator
//!
//! The WLAC workspace builds in offline environments, so it cannot pull the
//! `rand` crate from a registry. This crate provides the small slice of
//! functionality the workspace actually needs: a seedable, reproducible
//! 64-bit generator for the random-simulation baseline and for randomised
//! tests.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — the same construction `rand`'s `StdRng` historically used for
//! small-state seeding. It is **not** cryptographically secure; it only needs
//! to be fast, well-distributed and reproducible across platforms.
//!
//! # Examples
//!
//! ```
//! use wlac_rng::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(7);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! // Same seed, same stream.
//! assert_eq!(Rng64::seed_from_u64(7).next_u64(), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: [u64; 4],
}

/// SplitMix64 step used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { state }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniformly random value in `0..bound` (`bound` must be non-zero).
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a non-zero bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected sample: retry (rare unless bound is close to 2^64).
        }
    }

    /// A uniformly random value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = Rng64::seed_from_u64(1);
        for bound in [1u64, 2, 3, 10, 1 << 33, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        for _ in 0..200 {
            let v = rng.next_range(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(rng.next_range(3, 3), 3);
    }

    #[test]
    fn small_bounds_hit_every_value() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[rng.next_below(6) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues reached: {seen:?}");
    }
}
