//! Concrete (two-valued) semantics of the word-level primitives.

use wlac_bv::Bv;
use wlac_netlist::GateKind;

/// Evaluates one word-level primitive on concrete input values.
///
/// `output_width` is the width of the gate's output net (needed by gates
/// whose output width is not determined by the inputs alone, such as
/// slices, zero extensions and concatenations).
///
/// # Panics
///
/// Panics when the number of inputs does not match the gate kind. (Shape
/// errors are prevented earlier by [`wlac_netlist::Netlist::add_gate`].)
///
/// # Examples
///
/// ```
/// use wlac_bv::Bv;
/// use wlac_netlist::GateKind;
/// use wlac_sim::eval_gate;
///
/// let a = Bv::from_u64(4, 9);
/// let b = Bv::from_u64(4, 11);
/// assert_eq!(eval_gate(&GateKind::Add, &[a.clone(), b.clone()], 4).to_u64(), Some(4));
/// assert_eq!(eval_gate(&GateKind::Gt, &[b, a], 1).to_u64(), Some(1));
/// ```
pub fn eval_gate(kind: &GateKind, inputs: &[Bv], output_width: usize) -> Bv {
    let bit = |b: bool| Bv::from_bool(b);
    match kind {
        GateKind::Const(v) => v.clone(),
        GateKind::Buf => inputs[0].clone(),
        GateKind::Not => inputs[0].not(),
        GateKind::And => inputs
            .iter()
            .skip(1)
            .fold(inputs[0].clone(), |acc, v| acc.and(v)),
        GateKind::Or => inputs
            .iter()
            .skip(1)
            .fold(inputs[0].clone(), |acc, v| acc.or(v)),
        GateKind::Xor => inputs
            .iter()
            .skip(1)
            .fold(inputs[0].clone(), |acc, v| acc.xor(v)),
        GateKind::ReduceAnd => bit(inputs[0].count_ones() == inputs[0].width()),
        GateKind::ReduceOr => bit(!inputs[0].is_zero()),
        GateKind::ReduceXor => bit(inputs[0].count_ones() % 2 == 1),
        GateKind::Add => inputs[0].add(&inputs[1]),
        GateKind::Sub => inputs[0].sub(&inputs[1]),
        GateKind::Mul => inputs[0].mul(&inputs[1]),
        GateKind::Shl => {
            let amount = shift_amount(&inputs[1], inputs[0].width());
            inputs[0].shl(amount)
        }
        GateKind::Shr => {
            let amount = shift_amount(&inputs[1], inputs[0].width());
            inputs[0].shr(amount)
        }
        GateKind::Eq => bit(inputs[0] == inputs[1]),
        GateKind::Ne => bit(inputs[0] != inputs[1]),
        GateKind::Lt => bit(inputs[0] < inputs[1]),
        GateKind::Le => bit(inputs[0] <= inputs[1]),
        GateKind::Gt => bit(inputs[0] > inputs[1]),
        GateKind::Ge => bit(inputs[0] >= inputs[1]),
        GateKind::Mux => {
            if inputs[0].is_zero() {
                inputs[2].clone()
            } else {
                inputs[1].clone()
            }
        }
        GateKind::Concat => inputs[0].concat(&inputs[1]),
        GateKind::Slice { lo } => inputs[0].slice(*lo, output_width),
        GateKind::ZeroExt => inputs[0].resize(output_width),
        GateKind::Dff { .. } => inputs[0].clone(),
    }
}

fn shift_amount(amount: &Bv, width: usize) -> usize {
    amount
        .to_u64()
        .map(|v| v.min(width as u64) as usize)
        .unwrap_or(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(width: usize, v: u64) -> Bv {
        Bv::from_u64(width, v)
    }

    #[test]
    fn boolean_gates() {
        assert_eq!(
            eval_gate(&GateKind::And, &[b(4, 0b1100), b(4, 0b1010)], 4),
            b(4, 0b1000)
        );
        assert_eq!(
            eval_gate(&GateKind::Or, &[b(4, 0b1100), b(4, 0b1010), b(4, 1)], 4),
            b(4, 0b1111)
        );
        assert_eq!(eval_gate(&GateKind::Not, &[b(4, 0b1100)], 4), b(4, 0b0011));
        assert_eq!(eval_gate(&GateKind::ReduceOr, &[b(4, 0)], 1), b(1, 0));
        assert_eq!(eval_gate(&GateKind::ReduceAnd, &[b(4, 0xf)], 1), b(1, 1));
        assert_eq!(eval_gate(&GateKind::ReduceXor, &[b(4, 0b0111)], 1), b(1, 1));
    }

    #[test]
    fn arithmetic_gates_wrap() {
        assert_eq!(eval_gate(&GateKind::Add, &[b(4, 9), b(4, 11)], 4), b(4, 4));
        assert_eq!(eval_gate(&GateKind::Sub, &[b(4, 3), b(4, 5)], 4), b(4, 14));
        assert_eq!(eval_gate(&GateKind::Mul, &[b(4, 4), b(4, 7)], 4), b(4, 12));
    }

    #[test]
    fn shifts_saturate_amount() {
        assert_eq!(eval_gate(&GateKind::Shl, &[b(8, 3), b(8, 2)], 8), b(8, 12));
        assert_eq!(eval_gate(&GateKind::Shr, &[b(8, 12), b(8, 2)], 8), b(8, 3));
        assert_eq!(eval_gate(&GateKind::Shl, &[b(8, 3), b(8, 200)], 8), b(8, 0));
    }

    #[test]
    fn comparators_and_mux() {
        assert_eq!(eval_gate(&GateKind::Lt, &[b(4, 2), b(4, 11)], 1), b(1, 1));
        assert_eq!(eval_gate(&GateKind::Ge, &[b(4, 2), b(4, 11)], 1), b(1, 0));
        assert_eq!(eval_gate(&GateKind::Eq, &[b(4, 7), b(4, 7)], 1), b(1, 1));
        assert_eq!(
            eval_gate(&GateKind::Mux, &[b(1, 1), b(4, 5), b(4, 9)], 4),
            b(4, 5)
        );
        assert_eq!(
            eval_gate(&GateKind::Mux, &[b(1, 0), b(4, 5), b(4, 9)], 4),
            b(4, 9)
        );
    }

    #[test]
    fn structural_gates() {
        assert_eq!(
            eval_gate(&GateKind::Concat, &[b(4, 0xd), b(8, 0xab)], 12),
            b(12, 0xdab)
        );
        assert_eq!(
            eval_gate(&GateKind::Slice { lo: 4 }, &[b(12, 0xdab)], 4),
            b(4, 0xa)
        );
        assert_eq!(eval_gate(&GateKind::ZeroExt, &[b(4, 0xd)], 8), b(8, 0xd));
    }
}
