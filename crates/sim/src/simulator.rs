//! Cycle-based simulation of word-level netlists.

use crate::eval::eval_gate;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use wlac_bv::Bv;
use wlac_netlist::{GateKind, NetId, Netlist};

/// Error returned when the netlist cannot be simulated (combinational cycle)
/// or an input vector is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateError {
    message: String,
}

impl SimulateError {
    fn new(message: impl Into<String>) -> Self {
        SimulateError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.message)
    }
}

impl Error for SimulateError {}

/// Values of every net for each simulated cycle.
#[derive(Debug, Clone)]
pub struct SimRun {
    frames: Vec<Vec<Bv>>,
}

impl SimRun {
    /// Number of simulated cycles.
    pub fn cycles(&self) -> usize {
        self.frames.len()
    }

    /// Value of `net` during `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` or the net index is out of range.
    pub fn value(&self, cycle: usize, net: NetId) -> &Bv {
        &self.frames[cycle][net.index()]
    }

    /// All net values during `cycle`.
    pub fn frame(&self, cycle: usize) -> &[Bv] {
        &self.frames[cycle]
    }
}

/// A cycle-accurate simulator for a sequential word-level netlist.
///
/// Unknown inputs default to zero, flip-flops start at their declared initial
/// value (or zero when unconstrained), and each call to [`Simulator::step`]
/// evaluates one clock cycle.
///
/// # Examples
///
/// ```
/// use wlac_bv::Bv;
/// use wlac_netlist::Netlist;
/// use wlac_sim::Simulator;
///
/// # fn main() -> Result<(), wlac_sim::SimulateError> {
/// // A 4-bit counter with synchronous enable.
/// let mut nl = Netlist::new("counter");
/// let en = nl.input("en", 1);
/// let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
/// let one = nl.constant(&Bv::from_u64(4, 1));
/// let plus = nl.add(q, one);
/// let next = nl.mux(en, plus, q);
/// nl.connect_dff_data(ff, next);
/// nl.mark_output("count", q);
///
/// let mut sim = Simulator::new(&nl)?;
/// for _ in 0..3 {
///     sim.step(&[(en, Bv::from_u64(1, 1))])?;
/// }
/// assert_eq!(sim.net_value(q).to_u64(), Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<wlac_netlist::GateId>,
    /// Current value of every net (combinational nets refreshed per step).
    values: Vec<Bv>,
    /// Next-state value latched for each flip-flop gate.
    pending_state: Vec<(usize, Bv)>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator and resets the state to the initial values.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist has a combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, SimulateError> {
        let order = netlist
            .combinational_order()
            .map_err(|e| SimulateError::new(e.to_string()))?;
        let values = netlist
            .nets()
            .map(|n| Bv::zero(netlist.net_width(n)))
            .collect();
        let mut sim = Simulator {
            netlist,
            order,
            values,
            pending_state: Vec::new(),
        };
        sim.reset();
        Ok(sim)
    }

    /// Resets every flip-flop to its initial value (zero when unconstrained)
    /// and clears all other nets to zero.
    pub fn reset(&mut self) {
        for v in &mut self.values {
            *v = Bv::zero(v.width());
        }
        for (_, gate) in self.netlist.gates() {
            if let GateKind::Dff { init } = &gate.kind {
                let width = self.netlist.net_width(gate.output);
                self.values[gate.output.index()] = init.clone().unwrap_or_else(|| Bv::zero(width));
            }
        }
        self.pending_state.clear();
    }

    /// Overrides the current value of a flip-flop output (used to start from
    /// an arbitrary state, e.g. when replaying an ATPG counter-example whose
    /// initial state is not the reset state).
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the net width.
    pub fn set_state(&mut self, net: NetId, value: Bv) {
        assert_eq!(
            self.netlist.net_width(net),
            value.width(),
            "state width mismatch"
        );
        self.values[net.index()] = value;
    }

    /// The current value of a net (combinational nets reflect the values
    /// computed by the most recent [`Simulator::step`]).
    pub fn net_value(&self, net: NetId) -> &Bv {
        &self.values[net.index()]
    }

    /// Simulates one clock cycle with the given primary-input values.
    /// Missing inputs keep their previous value (zero initially).
    ///
    /// # Errors
    ///
    /// Returns an error when an input width does not match its net.
    pub fn step(&mut self, inputs: &[(NetId, Bv)]) -> Result<(), SimulateError> {
        for (net, value) in inputs {
            if self.netlist.net_width(*net) != value.width() {
                return Err(SimulateError::new(format!(
                    "input {net} expects width {}, got {}",
                    self.netlist.net_width(*net),
                    value.width()
                )));
            }
            self.values[net.index()] = value.clone();
        }
        // Combinational evaluation in topological order.
        for gate_id in &self.order {
            let gate = self.netlist.gate(*gate_id);
            let inputs: Vec<Bv> = gate
                .inputs
                .iter()
                .map(|n| self.values[n.index()].clone())
                .collect();
            let out_w = self.netlist.net_width(gate.output);
            self.values[gate.output.index()] = eval_gate(&gate.kind, &inputs, out_w);
        }
        // Latch flip-flop next states, then commit (two-phase to model
        // simultaneous clocking).
        self.pending_state.clear();
        for (_, gate) in self.netlist.gates() {
            if gate.kind.is_flip_flop() {
                let next = self.values[gate.inputs[0].index()].clone();
                self.pending_state.push((gate.output.index(), next));
            }
        }
        for (net, value) in self.pending_state.drain(..) {
            self.values[net] = value;
        }
        Ok(())
    }

    /// Evaluates only the combinational logic for the current state and the
    /// given inputs, without clocking the flip-flops. Returns the value of
    /// every net.
    pub fn evaluate_combinational(
        &mut self,
        inputs: &[(NetId, Bv)],
    ) -> Result<Vec<Bv>, SimulateError> {
        for (net, value) in inputs {
            if self.netlist.net_width(*net) != value.width() {
                return Err(SimulateError::new(format!(
                    "input {net} expects width {}, got {}",
                    self.netlist.net_width(*net),
                    value.width()
                )));
            }
            self.values[net.index()] = value.clone();
        }
        for gate_id in &self.order {
            let gate = self.netlist.gate(*gate_id);
            let ins: Vec<Bv> = gate
                .inputs
                .iter()
                .map(|n| self.values[n.index()].clone())
                .collect();
            let out_w = self.netlist.net_width(gate.output);
            self.values[gate.output.index()] = eval_gate(&gate.kind, &ins, out_w);
        }
        Ok(self.values.clone())
    }
}

/// Simulates `netlist` for several cycles from its reset state and records
/// every net value per cycle.
///
/// `inputs_per_cycle[t]` maps input nets to their value during cycle `t`;
/// missing inputs default to zero. `state_overrides` replaces selected
/// flip-flop outputs before the first cycle.
///
/// # Errors
///
/// Propagates [`SimulateError`] from construction or stepping.
pub fn simulate(
    netlist: &Netlist,
    state_overrides: &[(NetId, Bv)],
    inputs_per_cycle: &[HashMap<NetId, Bv>],
) -> Result<SimRun, SimulateError> {
    let mut sim = Simulator::new(netlist)?;
    for (net, value) in state_overrides {
        sim.set_state(*net, value.clone());
    }
    let mut frames = Vec::with_capacity(inputs_per_cycle.len());
    for cycle_inputs in inputs_per_cycle {
        let inputs: Vec<(NetId, Bv)> = cycle_inputs.iter().map(|(n, v)| (*n, v.clone())).collect();
        // Record the pre-clock (combinational) view of the cycle.
        let values = sim.evaluate_combinational(&inputs)?;
        frames.push(values);
        sim.step(&inputs)?;
    }
    Ok(SimRun { frames })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new("counter");
        let en = nl.input("en", 1);
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let plus = nl.add(q, one);
        let next = nl.mux(en, plus, q);
        nl.connect_dff_data(ff, next);
        nl.mark_output("count", q);
        (nl, en, q)
    }

    #[test]
    fn counter_counts_only_when_enabled() {
        let (nl, en, q) = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[(en, Bv::from_u64(1, 1))]).unwrap();
        sim.step(&[(en, Bv::from_u64(1, 0))]).unwrap();
        sim.step(&[(en, Bv::from_u64(1, 1))]).unwrap();
        assert_eq!(sim.net_value(q).to_u64(), Some(2));
    }

    #[test]
    fn counter_wraps_modulo_16() {
        let (nl, en, q) = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        for _ in 0..20 {
            sim.step(&[(en, Bv::from_u64(1, 1))]).unwrap();
        }
        assert_eq!(sim.net_value(q).to_u64(), Some(4));
    }

    #[test]
    fn reset_and_state_override() {
        let (nl, en, q) = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_state(q, Bv::from_u64(4, 9));
        sim.step(&[(en, Bv::from_u64(1, 1))]).unwrap();
        assert_eq!(sim.net_value(q).to_u64(), Some(10));
        sim.reset();
        assert_eq!(sim.net_value(q).to_u64(), Some(0));
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let (nl, en, _) = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        assert!(sim.step(&[(en, Bv::from_u64(2, 1))]).is_err());
    }

    #[test]
    fn simulate_records_per_cycle_values() {
        let (nl, en, q) = counter();
        let one = Bv::from_u64(1, 1);
        let cycles: Vec<HashMap<NetId, Bv>> = (0..3)
            .map(|_| {
                let mut m = HashMap::new();
                m.insert(en, one.clone());
                m
            })
            .collect();
        let run = simulate(&nl, &[], &cycles).unwrap();
        assert_eq!(run.cycles(), 3);
        // The recorded value is the pre-clock (current state) view.
        assert_eq!(run.value(0, q).to_u64(), Some(0));
        assert_eq!(run.value(1, q).to_u64(), Some(1));
        assert_eq!(run.value(2, q).to_u64(), Some(2));
        assert_eq!(run.frame(2).len(), nl.net_count());
    }

    #[test]
    fn combinational_evaluation_does_not_clock() {
        let (nl, en, q) = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        let values = sim
            .evaluate_combinational(&[(en, Bv::from_u64(1, 1))])
            .unwrap();
        assert_eq!(values[q.index()].to_u64(), Some(0));
        assert_eq!(sim.net_value(q).to_u64(), Some(0));
    }
}
