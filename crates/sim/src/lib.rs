//! # wlac-sim — concrete simulation of word-level netlists
//!
//! A small cycle-based simulator used by the WLAC assertion checker to
//! validate counter-examples and witness sequences produced by the
//! word-level ATPG engine, and by the random-simulation baseline.
//!
//! See [`Simulator`] for cycle-accurate sequential simulation and
//! [`eval_gate`] for the concrete semantics of each primitive.
//!
//! # Examples
//!
//! ```
//! use wlac_bv::Bv;
//! use wlac_netlist::Netlist;
//! use wlac_sim::Simulator;
//!
//! # fn main() -> Result<(), wlac_sim::SimulateError> {
//! let mut nl = Netlist::new("xor_pipe");
//! let a = nl.input("a", 8);
//! let b = nl.input("b", 8);
//! let x = nl.xor2(a, b);
//! let q = nl.dff(x, Some(Bv::zero(8)));
//! nl.mark_output("q", q);
//!
//! let mut sim = Simulator::new(&nl)?;
//! sim.step(&[(a, Bv::from_u64(8, 0x0f)), (b, Bv::from_u64(8, 0xf0))])?;
//! assert_eq!(sim.net_value(q).to_u64(), Some(0xff));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod simulator;

pub use eval::eval_gate;
pub use simulator::{simulate, SimRun, SimulateError, Simulator};
