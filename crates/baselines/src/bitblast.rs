//! Bit-blasting of word-level netlists to CNF, and a SAT-based bounded model
//! checker in the style of Biere et al. (reference [13] of the paper).
//!
//! This is the bit-level baseline the paper compares against conceptually:
//! every word-level primitive is expanded into single-bit clauses (Tseitin
//! encoding), so the formula size — and the solver's memory — grows with the
//! bit width, whereas the word-level ATPG engine keeps buses as single
//! entities.

use crate::sat::{Cnf, Lit};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};
use wlac_atpg::{CancelToken, PropertyKind, Trace, Verification};
use wlac_bv::Bv;
use wlac_netlist::{GateKind, NetId, Netlist, Unrolling};

/// Error produced when a netlist contains a primitive the bit-blaster does
/// not support (multipliers and data-dependent shifts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedGateError {
    /// Mnemonic of the unsupported gate.
    pub gate: String,
}

impl fmt::Display for UnsupportedGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bit-blasting does not support `{}` gates", self.gate)
    }
}

impl Error for UnsupportedGateError {}

/// CNF encoding of a (combinational) netlist: one SAT variable per net bit.
#[derive(Debug)]
pub struct BitBlaster {
    /// The CNF formula.
    pub cnf: Cnf,
    bits: HashMap<NetId, Vec<Lit>>,
    /// `var_origin[var] = (net, bit)` for the net-bit variables (a contiguous
    /// prefix of the variable space — Tseitin auxiliaries come later and have
    /// no entry). Used to lift learned clauses back to net level.
    var_origin: Vec<(NetId, u32)>,
}

impl BitBlaster {
    /// Encodes the given combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedGateError`] for multipliers and variable shifts.
    pub fn encode(netlist: &Netlist) -> Result<Self, UnsupportedGateError> {
        let mut this = BitBlaster {
            cnf: Cnf::new(),
            bits: HashMap::new(),
            var_origin: Vec::new(),
        };
        for net in netlist.nets() {
            let lits = (0..netlist.net_width(net))
                .map(|bit| {
                    let var = this.cnf.fresh_var();
                    debug_assert_eq!(var, this.var_origin.len());
                    this.var_origin.push((net, bit as u32));
                    Lit::positive(var)
                })
                .collect();
            this.bits.insert(net, lits);
        }
        for (_, gate) in netlist.gates() {
            this.encode_gate(netlist, gate)?;
        }
        Ok(this)
    }

    /// The literal of bit `bit` of `net`.
    pub fn bit(&self, net: NetId, bit: usize) -> Lit {
        self.bits[&net][bit]
    }

    /// Maps a CNF variable back to its `(net, bit)` origin; `None` for
    /// Tseitin auxiliary variables.
    pub fn net_bit_of_var(&self, var: usize) -> Option<(NetId, u32)> {
        self.var_origin.get(var).copied()
    }

    /// Reads the value of `net` out of a SAT model (one truth value per CNF
    /// variable, as returned by [`Cnf::solve`]).
    pub fn decode_net(&self, model: &[bool], net: NetId) -> Bv {
        let lits = &self.bits[&net];
        let words: Vec<u64> = lits
            .chunks(64)
            .map(|chunk| {
                chunk.iter().enumerate().fold(0u64, |acc, (i, lit)| {
                    let value = model[lit.var()] ^ lit.is_negative();
                    acc | ((value as u64) << i)
                })
            })
            .collect();
        Bv::from_words(lits.len(), &words)
    }

    /// Adds unit clauses forcing `net` to the concrete value `value`.
    pub fn constrain_value(&mut self, net: NetId, value: &Bv) {
        for i in 0..value.width() {
            let lit = self.bit(net, i);
            self.cnf
                .add_clause(vec![if value.bit(i) { lit } else { lit.negated() }]);
        }
    }

    fn equal(&mut self, a: Lit, b: Lit) {
        self.cnf.add_structural_clause(vec![a.negated(), b]);
        self.cnf.add_structural_clause(vec![a, b.negated()]);
    }

    fn constant(&mut self, lit: Lit, value: bool) {
        self.cnf
            .add_structural_clause(vec![if value { lit } else { lit.negated() }]);
    }

    fn and_gate(&mut self, out: Lit, inputs: &[Lit]) {
        let mut clause = vec![out];
        for i in inputs {
            self.cnf.add_structural_clause(vec![out.negated(), *i]);
            clause.push(i.negated());
        }
        self.cnf.add_structural_clause(clause);
    }

    fn or_gate(&mut self, out: Lit, inputs: &[Lit]) {
        let mut clause = vec![out.negated()];
        for i in inputs {
            self.cnf.add_structural_clause(vec![out, i.negated()]);
            clause.push(*i);
        }
        self.cnf.add_structural_clause(clause);
    }

    fn xor_gate(&mut self, out: Lit, a: Lit, b: Lit) {
        self.cnf.add_structural_clause(vec![out.negated(), a, b]);
        self.cnf
            .add_structural_clause(vec![out.negated(), a.negated(), b.negated()]);
        self.cnf.add_structural_clause(vec![out, a.negated(), b]);
        self.cnf.add_structural_clause(vec![out, a, b.negated()]);
    }

    fn fresh(&mut self) -> Lit {
        Lit::positive(self.cnf.fresh_var())
    }

    fn not_of(&mut self, a: Lit) -> Lit {
        let out = self.fresh();
        self.equal(out, a.negated());
        out
    }

    fn xor_chain(&mut self, inputs: &[Lit]) -> Lit {
        let mut acc = inputs[0];
        for lit in &inputs[1..] {
            let next = self.fresh();
            self.xor_gate(next, acc, *lit);
            acc = next;
        }
        acc
    }

    fn adder(&mut self, a: &[Lit], b: &[Lit], carry_in: Option<Lit>) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        let mut carry = match carry_in {
            Some(c) => c,
            None => {
                let c = self.fresh();
                self.constant(c, false);
                c
            }
        };
        for i in 0..a.len() {
            let axb = self.fresh();
            self.xor_gate(axb, a[i], b[i]);
            let sum = self.fresh();
            self.xor_gate(sum, axb, carry);
            // Majority carry-out.
            let cout = self.fresh();
            for (x, y) in [(a[i], b[i]), (a[i], carry), (b[i], carry)] {
                self.cnf
                    .add_structural_clause(vec![cout, x.negated(), y.negated()]);
                self.cnf.add_structural_clause(vec![cout.negated(), x, y]);
            }
            out.push(sum);
            carry = cout;
        }
        out
    }

    /// Borrow-out literal of `a - b` (i.e. `a < b` unsigned).
    fn less_than(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut borrow = self.fresh();
        self.constant(borrow, false);
        for i in 0..a.len() {
            let na = self.not_of(a[i]);
            let t1 = self.fresh();
            self.and_gate(t1, &[na, b[i]]);
            let xnor = self.fresh();
            let x = self.fresh();
            self.xor_gate(x, a[i], b[i]);
            self.equal(xnor, x.negated());
            let t2 = self.fresh();
            self.and_gate(t2, &[xnor, borrow]);
            let next = self.fresh();
            self.or_gate(next, &[t1, t2]);
            borrow = next;
        }
        borrow
    }

    fn equality(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut eq_bits = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let x = self.fresh();
            self.xor_gate(x, a[i], b[i]);
            eq_bits.push(self.not_of(x));
        }
        let out = self.fresh();
        self.and_gate(out, &eq_bits);
        out
    }

    fn encode_gate(
        &mut self,
        netlist: &Netlist,
        gate: &wlac_netlist::Gate,
    ) -> Result<(), UnsupportedGateError> {
        let out_bits = self.bits[&gate.output].clone();
        let in_bits: Vec<Vec<Lit>> = gate.inputs.iter().map(|n| self.bits[n].clone()).collect();
        match &gate.kind {
            GateKind::Const(v) => {
                for (i, lit) in out_bits.iter().enumerate() {
                    self.constant(*lit, v.bit(i));
                }
            }
            GateKind::Buf | GateKind::Dff { .. } => {
                for (o, i) in out_bits.iter().zip(&in_bits[0]) {
                    self.equal(*o, *i);
                }
            }
            GateKind::Not => {
                for (o, i) in out_bits.iter().zip(&in_bits[0]) {
                    self.equal(*o, i.negated());
                }
            }
            GateKind::And | GateKind::Or | GateKind::Xor => {
                for (bit, o) in out_bits.iter().enumerate() {
                    let column: Vec<Lit> = in_bits.iter().map(|b| b[bit]).collect();
                    match gate.kind {
                        GateKind::And => self.and_gate(*o, &column),
                        GateKind::Or => self.or_gate(*o, &column),
                        _ => {
                            let x = self.xor_chain(&column);
                            self.equal(*o, x);
                        }
                    }
                }
            }
            GateKind::ReduceAnd => {
                let all: Vec<Lit> = in_bits[0].clone();
                self.and_gate(out_bits[0], &all);
            }
            GateKind::ReduceOr => {
                let all: Vec<Lit> = in_bits[0].clone();
                self.or_gate(out_bits[0], &all);
            }
            GateKind::ReduceXor => {
                let x = self.xor_chain(&in_bits[0]);
                self.equal(out_bits[0], x);
            }
            GateKind::Add => {
                let sum = self.adder(&in_bits[0], &in_bits[1], None);
                for (o, s) in out_bits.iter().zip(sum) {
                    self.equal(*o, s);
                }
            }
            GateKind::Sub => {
                let nb: Vec<Lit> = in_bits[1].iter().map(|l| l.negated()).collect();
                let one = self.fresh();
                self.constant(one, true);
                let sum = self.adder(&in_bits[0], &nb, Some(one));
                for (o, s) in out_bits.iter().zip(sum) {
                    self.equal(*o, s);
                }
            }
            GateKind::Eq | GateKind::Ne => {
                let eq = self.equality(&in_bits[0], &in_bits[1]);
                let target = if gate.kind == GateKind::Eq {
                    eq
                } else {
                    eq.negated()
                };
                self.equal(out_bits[0], target);
            }
            GateKind::Lt | GateKind::Ge => {
                let lt = self.less_than(&in_bits[0], &in_bits[1]);
                let target = if gate.kind == GateKind::Lt {
                    lt
                } else {
                    lt.negated()
                };
                self.equal(out_bits[0], target);
            }
            GateKind::Gt | GateKind::Le => {
                let lt = self.less_than(&in_bits[1], &in_bits[0]);
                let target = if gate.kind == GateKind::Gt {
                    lt
                } else {
                    lt.negated()
                };
                self.equal(out_bits[0], target);
            }
            GateKind::Mux => {
                let sel = in_bits[0][0];
                for (bit, o) in out_bits.iter().enumerate() {
                    let a = in_bits[1][bit];
                    let b = in_bits[2][bit];
                    self.cnf
                        .add_structural_clause(vec![sel.negated(), a.negated(), *o]);
                    self.cnf
                        .add_structural_clause(vec![sel.negated(), a, o.negated()]);
                    self.cnf.add_structural_clause(vec![sel, b.negated(), *o]);
                    self.cnf.add_structural_clause(vec![sel, b, o.negated()]);
                }
            }
            GateKind::Concat => {
                let low_w = in_bits[1].len();
                for (i, o) in out_bits.iter().enumerate() {
                    let src = if i < low_w {
                        in_bits[1][i]
                    } else {
                        in_bits[0][i - low_w]
                    };
                    self.equal(*o, src);
                }
            }
            GateKind::Slice { lo } => {
                for (i, o) in out_bits.iter().enumerate() {
                    self.equal(*o, in_bits[0][lo + i]);
                }
            }
            GateKind::ZeroExt => {
                for (i, o) in out_bits.iter().enumerate() {
                    if i < in_bits[0].len() {
                        self.equal(*o, in_bits[0][i]);
                    } else {
                        self.constant(*o, false);
                    }
                }
            }
            GateKind::Shl | GateKind::Shr => {
                // Only constant shift amounts are supported.
                let amount = netlist
                    .driver(gate.inputs[1])
                    .map(|d| netlist.gate(d))
                    .and_then(|g| match &g.kind {
                        GateKind::Const(v) => v.to_u64(),
                        _ => None,
                    })
                    .ok_or_else(|| UnsupportedGateError {
                        gate: "variable shift".into(),
                    })? as usize;
                let left = gate.kind == GateKind::Shl;
                let width = out_bits.len();
                for (i, o) in out_bits.iter().enumerate() {
                    let src = if left {
                        i.checked_sub(amount)
                    } else {
                        Some(i + amount).filter(|j| *j < width)
                    };
                    match src {
                        Some(j) => self.equal(*o, in_bits[0][j]),
                        None => self.constant(*o, false),
                    }
                }
            }
            GateKind::Mul => return Err(UnsupportedGateError { gate: "mul".into() }),
        }
        Ok(())
    }
}

/// Outcome of a bounded model check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmcOutcome {
    /// No counter-example (or witness) exists within the bound.
    HoldsUpToBound,
    /// A satisfying assignment was found at the reported depth.
    Found {
        /// Unrolling depth at which the SAT solver found a model.
        depth: usize,
    },
    /// The SAT budget was exhausted or a gate was unsupported.
    Unknown,
}

/// Resource report of a BMC run, comparable to the ATPG checker's
/// [`wlac_atpg::CheckStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmcReport {
    /// Outcome.
    pub outcome: BmcOutcome,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Peak CNF memory in bytes.
    pub peak_memory_bytes: usize,
    /// Total CNF variables allocated across all bounds.
    pub variables: usize,
    /// Total CNF clauses across all bounds.
    pub clauses: usize,
    /// Concrete trace over the original sequential design when the outcome is
    /// [`BmcOutcome::Found`]: the SAT model's initial state and per-frame
    /// primary inputs, replayable with [`Trace::replay_monitor`] for
    /// cross-engine validation.
    pub trace: Option<Trace>,
    /// CDCL effort counters accumulated across all unrolling depths.
    pub sat: crate::sat::SatStats,
}

/// Runs SAT-based bounded model checking on a verification problem.
///
/// For `Always` properties it searches for a violation of the monitor, for
/// `Eventually` it searches for a witness — the same problems the ATPG
/// checker solves, making the reports directly comparable.
pub fn bounded_model_check(
    verification: &Verification,
    max_frames: usize,
    decision_budget: u64,
) -> BmcReport {
    bounded_model_check_cancellable(
        verification,
        max_frames,
        decision_budget,
        &CancelToken::new(),
    )
}

/// Converts a SAT model of an unrolled circuit into a [`Trace`] over the
/// original sequential design (initial flip-flop state plus per-frame primary
/// inputs), mirroring the ATPG checker's trace extraction.
fn model_to_trace(
    verification: &Verification,
    unrolling: &Unrolling,
    blaster: &BitBlaster,
    model: &[bool],
) -> Trace {
    let netlist = &verification.netlist;
    let initial_state = unrolling
        .initial_states()
        .iter()
        .map(|init| {
            let q = netlist.gate(init.flip_flop).output;
            (q, blaster.decode_net(model, init.net))
        })
        .collect();
    let inputs = (0..unrolling.frames())
        .map(|frame| {
            netlist
                .inputs()
                .iter()
                .map(|pi| (*pi, blaster.decode_net(model, unrolling.net(frame, *pi))))
                .collect()
        })
        .collect();
    Trace {
        initial_state,
        inputs,
    }
}

/// One literal of a frame-relative learned clause: bit `bit` of the copy of
/// `net` (a net of the **original** sequential design) at time-frame `frame`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameLit {
    /// Time-frame the literal lives in (0-based, `< FrameClause::depth`).
    pub frame: u32,
    /// Net of the original (un-expanded) design.
    pub net: NetId,
    /// Bit index within the net.
    pub bit: u32,
    /// `true` when the literal asserts the bit is 0.
    pub negated: bool,
}

/// A design-valid learned clause lifted out of a bounded-model-checking run,
/// expressed over frame-relative net bits of the original design so it can be
/// replayed into any later unrolling of the same design.
///
/// `depth` records the unrolling depth the clause was learned at. The clause
/// is implied by the transition structure of frames `0..depth`; because the
/// structure of frames `s..s+depth` in any deeper unrolling is a superset of
/// that (frame 0 state variables are unconstrained pseudo-inputs, later
/// frames only add the connecting buffers), the clause shifted **up** by any
/// `s ≥ 0` remains valid in every unrolling of at least `depth + s` frames.
/// Shifting *down* would be unsound — the derivation may have relied on a
/// frame's state being driven by its predecessor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FrameClause {
    /// Unrolling depth (number of frames) at learn time.
    pub depth: u32,
    /// The literals; the clause asserts their disjunction.
    pub lits: Vec<FrameLit>,
}

impl FrameClause {
    /// Structural well-formedness against the design the clause claims to
    /// describe: every literal must name an existing net, a bit within its
    /// width and a frame below the recorded depth. Malformed clauses (e.g. a
    /// corrupted or poisoned knowledge base) must be rejected by callers
    /// before replay.
    pub fn is_well_formed(&self, netlist: &Netlist) -> bool {
        self.depth >= 1
            && !self.lits.is_empty()
            && self.lits.iter().all(|lit| {
                lit.frame < self.depth
                    && lit.net.index() < netlist.net_count()
                    && (lit.bit as usize) < netlist.net_width(lit.net)
            })
    }
}

/// Maximum length of a lifted clause: short clauses prune the most per byte,
/// and every extra literal must survive the net-bit lifting anyway.
const MAX_LIFT_LEN: usize = 8;

/// Like [`bounded_model_check_cancellable`], but warm-started and learning:
/// `seeds` are design-valid [`FrameClause`]s from earlier runs on the *same*
/// design, injected (at every sound shift) into each unrolling before
/// solving; the second return value is the new design-valid clauses learned
/// by this run, lifted back to frame-relative form.
///
/// Malformed seed clauses are skipped, never trusted — use
/// [`FrameClause::is_well_formed`] plus a design-identity check upstream to
/// reject a poisoned store outright.
pub fn bounded_model_check_learning(
    verification: &Verification,
    max_frames: usize,
    decision_budget: u64,
    cancel: &CancelToken,
    seeds: &[FrameClause],
) -> (BmcReport, Vec<FrameClause>) {
    bmc_impl(
        verification,
        max_frames,
        decision_budget,
        cancel,
        seeds,
        true,
    )
}

/// Injects every sound shift of each seed clause into the blasted formula.
fn inject_seeds(
    blaster: &mut BitBlaster,
    unrolling: &Unrolling,
    source: &Netlist,
    frames: usize,
    seeds: &[FrameClause],
) {
    for seed in seeds {
        if !seed.is_well_formed(source) || seed.depth as usize > frames {
            continue;
        }
        for shift in 0..=(frames as u32 - seed.depth) {
            let clause = seed
                .lits
                .iter()
                .map(|lit| {
                    let expanded = unrolling.net((lit.frame + shift) as usize, lit.net);
                    let sat_lit = blaster.bit(expanded, lit.bit as usize);
                    if lit.negated {
                        sat_lit.negated()
                    } else {
                        sat_lit
                    }
                })
                .collect();
            // Seeds are design-valid, so they are structural clauses: new
            // clauses learned from them stay exportable.
            blaster.cnf.add_structural_clause(clause);
        }
    }
}

/// Lifts the solver's exported clauses to frame-relative form. A clause
/// survives only when every literal maps to a net bit of the expanded circuit
/// (no Tseitin auxiliaries) whose net traces back to the original design.
fn lift_learned(
    blaster: &BitBlaster,
    unrolling: &Unrolling,
    frames: usize,
    exported: &[Vec<Lit>],
    out: &mut Vec<FrameClause>,
) {
    'clauses: for clause in exported {
        let mut lits = Vec::with_capacity(clause.len());
        for lit in clause {
            let Some((expanded, bit)) = blaster.net_bit_of_var(lit.var()) else {
                continue 'clauses;
            };
            let Some((frame, net)) = unrolling.origin(expanded) else {
                continue 'clauses;
            };
            lits.push(FrameLit {
                frame: frame as u32,
                net,
                bit,
                negated: lit.is_negative(),
            });
        }
        out.push(FrameClause {
            depth: frames as u32,
            lits,
        });
    }
}

/// Like [`bounded_model_check`], but polls `cancel` between unrolling depths
/// and inside the SAT search, so a portfolio supervisor can stop a losing BMC
/// run promptly. A cancelled run reports [`BmcOutcome::Unknown`].
pub fn bounded_model_check_cancellable(
    verification: &Verification,
    max_frames: usize,
    decision_budget: u64,
    cancel: &CancelToken,
) -> BmcReport {
    bmc_impl(
        verification,
        max_frames,
        decision_budget,
        cancel,
        &[],
        false,
    )
    .0
}

fn bmc_impl(
    verification: &Verification,
    max_frames: usize,
    decision_budget: u64,
    cancel: &CancelToken,
    seeds: &[FrameClause],
    learn: bool,
) -> (BmcReport, Vec<FrameClause>) {
    let start = Instant::now();
    let mut peak = 0usize;
    let mut variables = 0usize;
    let mut clauses = 0usize;
    let mut sat = crate::sat::SatStats::default();
    let mut harvest: Vec<FrameClause> = Vec::new();
    let report = |outcome, peak, variables, clauses, trace, sat| BmcReport {
        outcome,
        elapsed: start.elapsed(),
        peak_memory_bytes: peak,
        variables,
        clauses,
        trace,
        sat,
    };
    for frames in 1..=max_frames {
        if cancel.is_cancelled() {
            return (
                report(BmcOutcome::Unknown, peak, variables, clauses, None, sat),
                harvest,
            );
        }
        let unrolling = Unrolling::new(&verification.netlist, frames);
        let encoded = BitBlaster::encode(unrolling.circuit());
        let mut blaster = match encoded {
            Ok(b) => b,
            Err(_) => {
                return (
                    report(BmcOutcome::Unknown, peak, variables, clauses, None, sat),
                    harvest,
                )
            }
        };
        inject_seeds(
            &mut blaster,
            &unrolling,
            &verification.netlist,
            frames,
            seeds,
        );
        for init in unrolling.initial_states() {
            if let Some(value) = &init.init {
                blaster.constrain_value(init.net, value);
            }
        }
        for env in &verification.environment {
            for frame in 0..frames {
                let net = unrolling.net(frame, *env);
                blaster.constrain_value(net, &Bv::from_u64(1, 1));
            }
        }
        let target = match verification.property.kind {
            PropertyKind::Always => 0u64,
            PropertyKind::Eventually => 1u64,
        };
        let monitor = unrolling.net(frames - 1, verification.property.monitor);
        blaster.constrain_value(monitor, &Bv::from_u64(1, target));
        peak = peak.max(blaster.cnf.memory_bytes());
        variables += blaster.cnf.num_vars();
        clauses += blaster.cnf.num_clauses();
        let max_export = if learn { MAX_LIFT_LEN } else { 0 };
        let outcome = blaster
            .cnf
            .solve_learning(decision_budget, cancel, max_export);
        sat.absorb(&outcome.stats);
        if learn {
            lift_learned(&blaster, &unrolling, frames, &outcome.learned, &mut harvest);
        }
        if let Some(model) = outcome.model {
            let trace = model_to_trace(verification, &unrolling, &blaster, &model);
            return (
                report(
                    BmcOutcome::Found { depth: frames },
                    peak,
                    variables,
                    clauses,
                    Some(trace),
                    sat,
                ),
                harvest,
            );
        }
        if !outcome.complete {
            return (
                report(BmcOutcome::Unknown, peak, variables, clauses, None, sat),
                harvest,
            );
        }
    }
    (
        report(
            BmcOutcome::HoldsUpToBound,
            peak,
            variables,
            clauses,
            None,
            sat,
        ),
        harvest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::Property;

    #[test]
    fn combinational_tautology_is_unsat_for_violation() {
        // y = a | !a is always 1: BMC finds no violation.
        let mut nl = Netlist::new("taut");
        let a = nl.input("a", 1);
        let na = nl.not(a);
        let y = nl.or2(a, na);
        let property = Property::always(&nl, "taut", y);
        let report = bounded_model_check(&Verification::new(nl, property), 3, 100_000);
        assert_eq!(report.outcome, BmcOutcome::HoldsUpToBound);
        assert!(report.clauses > 0);
    }

    #[test]
    fn counter_violation_found_at_expected_depth() {
        // A 3-bit counter from 0; assert q != 2 — violated at depth 3
        // (values 0, 1, 2).
        let mut nl = Netlist::new("cnt");
        let (q, ff) = nl.dff_deferred(3, Some(Bv::zero(3)));
        let one = nl.constant(&Bv::from_u64(3, 1));
        let next = nl.add(q, one);
        nl.connect_dff_data(ff, next);
        let two = nl.constant(&Bv::from_u64(3, 2));
        let ok = nl.ne(q, two);
        let property = Property::always(&nl, "never2", ok);
        let report = bounded_model_check(&Verification::new(nl, property), 6, 1_000_000);
        assert_eq!(report.outcome, BmcOutcome::Found { depth: 3 });
    }

    #[test]
    fn comparator_and_arith_encoding_agree_with_simulation() {
        // Exhaustively compare the CNF encoding of y = (a + b) > 9 with the
        // word-level simulator for 4-bit inputs.
        let mut nl = Netlist::new("gt");
        let a = nl.input("a", 3);
        let b = nl.input("b", 3);
        let sum = nl.add(a, b);
        let limit = nl.constant(&Bv::from_u64(3, 5));
        let y = nl.gt(sum, limit);
        nl.mark_output("y", y);
        for av in 0..8u64 {
            for bv in 0..8u64 {
                let mut blaster = BitBlaster::encode(&nl).unwrap();
                blaster.constrain_value(a, &Bv::from_u64(3, av));
                blaster.constrain_value(b, &Bv::from_u64(3, bv));
                let expect = ((av + bv) % 8) > 5;
                blaster.constrain_value(y, &Bv::from_u64(1, expect as u64));
                let (model, complete) = blaster.cnf.solve(100_000);
                assert!(complete);
                assert!(model.is_some(), "encoding disagrees for {av}+{bv}");
                // And the opposite value must be unsatisfiable.
                let mut blaster = BitBlaster::encode(&nl).unwrap();
                blaster.constrain_value(a, &Bv::from_u64(3, av));
                blaster.constrain_value(b, &Bv::from_u64(3, bv));
                blaster.constrain_value(y, &Bv::from_u64(1, !expect as u64));
                let (model, complete) = blaster.cnf.solve(100_000);
                assert!(complete);
                assert!(model.is_none(), "inconsistent encoding for {av}+{bv}");
            }
        }
    }

    #[test]
    fn learning_bmc_harvests_and_replays_clauses_without_changing_verdicts() {
        // A counter with a structural impossibility (q + q is always even,
        // so bit 0 of the doubled value is 0): plenty of design-valid
        // learning material.
        let mut nl = Netlist::new("cnt");
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let next = nl.add(q, one);
        nl.connect_dff_data(ff, next);
        let five = nl.constant(&Bv::from_u64(4, 5));
        let ok = nl.ne(q, five);
        let property = Property::always(&nl, "never5", ok);
        let verification = Verification::new(nl, property);

        let cancel = CancelToken::new();
        let cold = bounded_model_check_cancellable(&verification, 8, 1_000_000, &cancel);
        let (warm_report, harvest) =
            bounded_model_check_learning(&verification, 8, 1_000_000, &cancel, &[]);
        assert_eq!(cold.outcome, warm_report.outcome);
        // Everything harvested is structurally well-formed for this design.
        for clause in &harvest {
            assert!(clause.is_well_formed(&verification.netlist), "{clause:?}");
        }

        // Replaying the harvest must reproduce the identical outcome (the
        // clauses are implied, so the per-depth SAT answers cannot move).
        let (seeded, _) =
            bounded_model_check_learning(&verification, 8, 1_000_000, &cancel, &harvest);
        assert_eq!(seeded.outcome, warm_report.outcome);
        match (&warm_report.trace, &seeded.trace) {
            (Some(a), Some(b)) => assert_eq!(a.len(), b.len(), "violation depth must match"),
            (None, None) => {}
            other => panic!("trace presence diverged: {other:?}"),
        }
    }

    #[test]
    fn malformed_seed_clauses_are_skipped_not_trusted() {
        // A tautological design (y = a | !a): holds at every bound.
        let mut nl = Netlist::new("taut");
        let a = nl.input("a", 1);
        let na = nl.not(a);
        let y = nl.or2(a, na);
        let property = Property::always(&nl, "taut", y);
        let verification = Verification::new(nl, property);
        let poison = vec![
            // Net id far out of range.
            FrameClause {
                depth: 1,
                lits: vec![FrameLit {
                    frame: 0,
                    net: NetId::from_index(999),
                    bit: 0,
                    negated: true,
                }],
            },
            // Frame beyond the recorded depth.
            FrameClause {
                depth: 1,
                lits: vec![FrameLit {
                    frame: 3,
                    net: verification.netlist.inputs()[0],
                    bit: 0,
                    negated: false,
                }],
            },
            // Empty clause (would be instant UNSAT if trusted).
            FrameClause {
                depth: 1,
                lits: Vec::new(),
            },
        ];
        let (report, _) =
            bounded_model_check_learning(&verification, 3, 100_000, &CancelToken::new(), &poison);
        assert_eq!(
            report.outcome,
            BmcOutcome::HoldsUpToBound,
            "poisoned seeds must be skipped, not trusted"
        );
    }

    #[test]
    fn multipliers_are_rejected() {
        let mut nl = Netlist::new("mul");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let _ = nl.mul(a, b);
        assert!(BitBlaster::encode(&nl).is_err());
    }
}
