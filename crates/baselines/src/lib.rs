//! # wlac-baselines — comparison baselines for the WLAC checker
//!
//! Self-contained implementations of the techniques the paper positions its
//! word-level ATPG + modular arithmetic approach against:
//!
//! * [`bounded_model_check`] — SAT-based bounded model checking over a
//!   bit-blasted (Tseitin) encoding of the design, in the style of
//!   Biere et al. \[13\]; backed by the small DPLL solver in [`Cnf`],
//! * [`IntegralLinearSystem`] — integral (non-modular) linear constraint
//!   solving, which exhibits the "false negative effect" on wrap-around
//!   solutions that the modular solver avoids,
//! * [`random_simulation`] — the random test-bench straw man from the
//!   paper's introduction.
//!
//! These are used by the `wlac-bench` harness to regenerate the paper's
//! qualitative comparisons (memory efficiency, scalability, false-negative
//! avoidance).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitblast;
mod integral;
mod random_sim;
mod sat;

pub use bitblast::{
    bounded_model_check, bounded_model_check_cancellable, bounded_model_check_learning, BitBlaster,
    BmcOutcome, BmcReport, FrameClause, FrameLit, UnsupportedGateError,
};
pub use integral::{IntegralLinearSystem, IntegralOutcome};
pub use random_sim::{random_simulation, random_simulation_cancellable, RandomSimReport};
pub use sat::{Cnf, Lit, SatOutcome, SatStats};
