//! Integral (non-modular) linear constraint solving — the baseline whose
//! "false negative effect" the paper's modular solver avoids.
//!
//! The solver performs fraction-free Gaussian elimination over the rationals
//! and accepts a system only if it finds an integer solution inside the
//! bit-vector range `[0, 2^width)`. Systems whose only solutions arise from
//! wrap-around (like the paper's `x + y = 5`, `2x + 7y = 4` example) are
//! reported infeasible — the false negative the modular solver fixes.

// Gaussian elimination reads clearest with explicit row/column indices.
#![allow(clippy::needless_range_loop)]

use wlac_modsolve::Ring;

/// A linear system interpreted over the integers.
#[derive(Debug, Clone)]
pub struct IntegralLinearSystem {
    width: u32,
    num_vars: usize,
    rows: Vec<(Vec<i128>, i128)>,
}

/// Outcome of the integral solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegralOutcome {
    /// An in-range integer solution.
    Solution(Vec<u64>),
    /// No in-range integer solution exists (possibly a *false negative* with
    /// respect to the modular semantics of the hardware).
    Infeasible,
    /// The system is under-determined in a way this simple solver does not
    /// explore (free variables remain).
    Unknown,
}

impl IntegralLinearSystem {
    /// Creates an empty system over `num_vars` variables of the given width.
    pub fn new(width: u32, num_vars: usize) -> Self {
        IntegralLinearSystem {
            width,
            num_vars,
            rows: Vec::new(),
        }
    }

    /// Adds `Σ coeffs[i]·x_i = rhs` (coefficients are interpreted as the
    /// signed value of the modular coefficient, e.g. `2^w - 1` means `-1`).
    ///
    /// # Panics
    ///
    /// Panics when `coeffs.len() != num_vars`.
    pub fn add_equation(&mut self, coeffs: &[u64], rhs: u64) {
        assert_eq!(coeffs.len(), self.num_vars, "coefficient count mismatch");
        let ring = Ring::new(self.width);
        let signed = |v: u64| -> i128 {
            let v = ring.reduce(v);
            let half = 1u64 << (self.width - 1);
            if v >= half {
                v as i128 - ring.modulus() as i128
            } else {
                v as i128
            }
        };
        self.rows
            .push((coeffs.iter().map(|c| signed(*c)).collect(), signed(rhs)));
    }

    /// Solves the system over the rationals and checks integrality and range.
    pub fn solve(&self) -> IntegralOutcome {
        let m = self.rows.len();
        let n = self.num_vars;
        // Rational Gaussian elimination with (numerator, denominator) pairs.
        let mut a: Vec<Vec<f64>> = self
            .rows
            .iter()
            .map(|(c, r)| {
                c.iter()
                    .map(|v| *v as f64)
                    .chain(std::iter::once(*r as f64))
                    .collect()
            })
            .collect();
        let mut pivot_cols = Vec::new();
        let mut row = 0;
        for col in 0..n {
            let Some(p) = (row..m).find(|r| a[*r][col].abs() > 1e-9) else {
                continue;
            };
            a.swap(row, p);
            let pivot = a[row][col];
            for c in col..=n {
                a[row][c] /= pivot;
            }
            for r in 0..m {
                if r != row && a[r][col].abs() > 1e-9 {
                    let factor = a[r][col];
                    for c in col..=n {
                        a[r][c] -= factor * a[row][c];
                    }
                }
            }
            pivot_cols.push((row, col));
            row += 1;
            if row == m {
                break;
            }
        }
        // Inconsistent rows.
        for r in row..m {
            if a[r][n].abs() > 1e-6 {
                return IntegralOutcome::Infeasible;
            }
        }
        if pivot_cols.len() < n {
            return IntegralOutcome::Unknown;
        }
        let mut solution = vec![0u64; n];
        let max = if self.width == 64 {
            u64::MAX as f64
        } else {
            ((1u64 << self.width) - 1) as f64
        };
        for (r, c) in pivot_cols {
            let value = a[r][n];
            if (value - value.round()).abs() > 1e-6 || value.round() < 0.0 || value.round() > max {
                return IntegralOutcome::Infeasible;
            }
            solution[c] = value.round() as u64;
        }
        IntegralOutcome::Solution(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_modsolve::LinearSystem;

    #[test]
    fn ordinary_system_solved_by_both() {
        // x + y = 5, x - y = 1 → (3, 2) for both solvers.
        let mut integral = IntegralLinearSystem::new(4, 2);
        integral.add_equation(&[1, 1], 5);
        integral.add_equation(&[1, 15], 1); // 15 ≡ -1 (mod 16)
        assert_eq!(integral.solve(), IntegralOutcome::Solution(vec![3, 2]));
        let mut modular = LinearSystem::new(Ring::new(4), 2);
        modular.add_equation(&[1, 1], 5);
        modular.add_equation(&[1, 15], 1);
        assert_eq!(modular.solve().unwrap().particular(), &[3, 2]);
    }

    #[test]
    fn paper_example_is_a_false_negative_for_the_integral_solver() {
        // x + y = 5, 2x + 7y = 4 over 3-bit vectors: the integral solution
        // x = 31/5 is not an integer, so the integral solver reports
        // infeasible — but the modular solver finds (3, 2).
        let mut integral = IntegralLinearSystem::new(3, 2);
        integral.add_equation(&[1, 1], 5);
        integral.add_equation(&[2, 7], 4);
        assert_eq!(integral.solve(), IntegralOutcome::Infeasible);
        let mut modular = LinearSystem::new(Ring::new(3), 2);
        modular.add_equation(&[1, 1], 5);
        modular.add_equation(&[2, 7], 4);
        assert_eq!(modular.solve().unwrap().particular(), &[3, 2]);
    }

    #[test]
    fn range_and_underdetermination_handling() {
        // A small in-range solution is accepted.
        let mut integral = IntegralLinearSystem::new(4, 1);
        integral.add_equation(&[1], 5);
        assert_eq!(integral.solve(), IntegralOutcome::Solution(vec![5]));
        // Negative-only solutions (here x = -4, the signed reading of 12) are
        // rejected as out of the bit-vector range.
        let mut negative = IntegralLinearSystem::new(4, 1);
        negative.add_equation(&[1], 12);
        assert_eq!(negative.solve(), IntegralOutcome::Infeasible);
        // Under-determined systems are not explored by this simple baseline.
        let mut wide = IntegralLinearSystem::new(4, 2);
        wide.add_equation(&[1, 0], 5);
        assert_eq!(wide.solve(), IntegralOutcome::Unknown);
    }
}
