//! A small CNF SAT solver (DPLL with unit propagation and activity-free
//! branching), used by the bit-level bounded model checking baseline.

/// A literal: variable index with polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    code: u32,
}

impl Lit {
    /// Positive literal of variable `var`.
    pub fn positive(var: usize) -> Self {
        Lit {
            code: (var as u32) << 1,
        }
    }

    /// Negative literal of variable `var`.
    pub fn negative(var: usize) -> Self {
        Lit {
            code: ((var as u32) << 1) | 1,
        }
    }

    /// The underlying variable.
    pub fn var(self) -> usize {
        (self.code >> 1) as usize
    }

    /// `true` for a negated literal.
    pub fn is_negative(self) -> bool {
        self.code & 1 == 1
    }

    /// The opposite-polarity literal.
    pub fn negated(self) -> Lit {
        Lit {
            code: self.code ^ 1,
        }
    }
}

/// A CNF formula.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals).
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// Approximate memory held by the formula, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.clauses.iter().map(|c| c.len() * 4 + 24).sum::<usize>() + 48
    }

    /// Solves the formula.
    ///
    /// Returns `Some(model)` (a truth value per variable) when satisfiable,
    /// `None` when unsatisfiable. `budget` bounds the number of decisions,
    /// guarding against pathological inputs; exceeding it returns `None`
    /// conservatively together with `false` in the second tuple slot.
    pub fn solve(&self, budget: u64) -> (Option<Vec<bool>>, bool) {
        let mut solver = Dpll {
            clauses: self.clauses.clone(),
            assignment: vec![None; self.num_vars],
            trail: Vec::new(),
            decisions: 0,
            budget,
        };
        let complete = solver.search(0);
        match complete {
            Some(true) => (
                Some(solver.assignment.iter().map(|v| v.unwrap_or(false)).collect()),
                true,
            ),
            Some(false) => (None, true),
            None => (None, false),
        }
    }
}

struct Dpll {
    clauses: Vec<Vec<Lit>>,
    assignment: Vec<Option<bool>>,
    trail: Vec<usize>,
    decisions: u64,
    budget: u64,
}

impl Dpll {
    fn value(&self, lit: Lit) -> Option<bool> {
        self.assignment[lit.var()].map(|v| v ^ lit.is_negative())
    }

    fn assign(&mut self, lit: Lit) {
        self.assignment[lit.var()] = Some(!lit.is_negative());
        self.trail.push(lit.var());
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("non-empty trail");
            self.assignment[var] = None;
        }
    }

    /// Unit propagation: returns `false` on conflict.
    fn propagate(&mut self) -> bool {
        loop {
            let mut changed = false;
            for ci in 0..self.clauses.len() {
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for &lit in &self.clauses[ci] {
                    match self.value(lit) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => return false,
                    1 => {
                        self.assign(unassigned.expect("unit literal"));
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Returns `Some(true)` for SAT, `Some(false)` for UNSAT, `None` when the
    /// decision budget is exhausted.
    fn search(&mut self, depth: usize) -> Option<bool> {
        if !self.propagate() {
            return Some(false);
        }
        let Some(var) = self.assignment.iter().position(|v| v.is_none()) else {
            return Some(true);
        };
        if self.decisions >= self.budget {
            return None;
        }
        self.decisions += 1;
        for value in [true, false] {
            let mark = self.trail.len();
            self.assign(if value {
                Lit::positive(var)
            } else {
                Lit::negative(var)
            });
            match self.search(depth + 1) {
                Some(true) => return Some(true),
                Some(false) => self.undo_to(mark),
                None => {
                    self.undo_to(mark);
                    return None;
                }
            }
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }

    #[test]
    fn literal_encoding() {
        let l = Lit::positive(5);
        assert_eq!(l.var(), 5);
        assert!(!l.is_negative());
        assert!(l.negated().is_negative());
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn satisfiable_and_unsat_formulas() {
        // (a | b) & (!a | b) & (a | !b) is satisfied by a=b=1.
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause(vec![lit(a, true), lit(b, true)]);
        cnf.add_clause(vec![lit(a, false), lit(b, true)]);
        cnf.add_clause(vec![lit(a, true), lit(b, false)]);
        let (model, complete) = cnf.solve(1_000);
        assert!(complete);
        let model = model.expect("satisfiable");
        assert!(model[a] && model[b]);
        // Adding (!a | !b) makes it unsatisfiable.
        cnf.add_clause(vec![lit(a, false), lit(b, false)]);
        let (model, complete) = cnf.solve(1_000);
        assert!(complete);
        assert!(model.is_none());
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        // Variables p[i][j]: pigeon i in hole j.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..3)
            .map(|_| (0..2).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|v| lit(*v, true)).collect());
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    cnf.add_clause(vec![lit(p[i1][j], false), lit(p[i2][j], false)]);
                }
            }
        }
        let (model, complete) = cnf.solve(100_000);
        assert!(complete);
        assert!(model.is_none());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut cnf = Cnf::new();
        let vars: Vec<usize> = (0..30).map(|_| cnf.fresh_var()).collect();
        // Independent "exactly one of the pair" constraints: each pair needs
        // its own decision, exceeding the one-decision budget.
        for w in vars.chunks(2) {
            cnf.add_clause(vec![lit(w[0], true), lit(w[1], true)]);
            cnf.add_clause(vec![lit(w[0], false), lit(w[1], false)]);
        }
        let (_, complete) = cnf.solve(1);
        assert!(!complete);
        assert!(cnf.memory_bytes() > 0);
    }
}
