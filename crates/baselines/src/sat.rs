//! A small CDCL SAT solver (two-watched-literal propagation, first-UIP
//! clause learning, non-chronological backjumping and VSIDS-style decision
//! activities), used by the bit-level bounded model checking baseline.

use wlac_atpg::CancelToken;

/// A literal: variable index with polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    code: u32,
}

impl Lit {
    /// Positive literal of variable `var`.
    pub fn positive(var: usize) -> Self {
        Lit {
            code: (var as u32) << 1,
        }
    }

    /// Negative literal of variable `var`.
    pub fn negative(var: usize) -> Self {
        Lit {
            code: ((var as u32) << 1) | 1,
        }
    }

    /// The underlying variable.
    pub fn var(self) -> usize {
        (self.code >> 1) as usize
    }

    /// `true` for a negated literal.
    pub fn is_negative(self) -> bool {
        self.code & 1 == 1
    }

    /// The opposite-polarity literal.
    pub fn negated(self) -> Lit {
        Lit {
            code: self.code ^ 1,
        }
    }
}

/// A CNF formula.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals).
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// Approximate memory held by the formula, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.clauses.iter().map(|c| c.len() * 4 + 24).sum::<usize>() + 48
    }

    /// Solves the formula.
    ///
    /// Returns `Some(model)` (a truth value per variable) when satisfiable,
    /// `None` when unsatisfiable. `budget` bounds the number of decisions,
    /// guarding against pathological inputs; exceeding it returns `None`
    /// conservatively together with `false` in the second tuple slot.
    pub fn solve(&self, budget: u64) -> (Option<Vec<bool>>, bool) {
        self.solve_cancellable(budget, &CancelToken::new())
    }

    /// Like [`Cnf::solve`], but polls `cancel` inside the search and the
    /// unit-propagation loop; a cancelled run returns `(None, false)` (no
    /// model, incomplete), exactly like budget exhaustion.
    pub fn solve_cancellable(
        &self,
        budget: u64,
        cancel: &CancelToken,
    ) -> (Option<Vec<bool>>, bool) {
        let mut solver = Solver::new(self, budget, cancel.clone());
        match solver.search() {
            Some(true) => (
                Some(
                    solver
                        .assignment
                        .iter()
                        .map(|v| v.unwrap_or(false))
                        .collect(),
                ),
                true,
            ),
            Some(false) => (None, true),
            None => (None, false),
        }
    }
}

/// CDCL solver state.
///
/// Each clause of two or more literals keeps its watches in positions 0 and
/// 1; `watches[l.code]` lists the clauses currently watching literal `l`,
/// visited only when `l` becomes false, so propagation effort is proportional
/// to the watched occurrences of newly falsified literals instead of the
/// whole formula. Conflicts are analysed to the first unique implication
/// point; the learned clause drives a non-chronological backjump. Decision
/// variables are picked by bumped-and-decayed activity (VSIDS).
struct Solver {
    /// Problem clauses followed by learned clauses.
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<usize>>,
    assignment: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable (`usize::MAX` for decisions and
    /// root-level units).
    reason: Vec<usize>,
    trail: Vec<Lit>,
    /// `trail` length at the start of each decision level.
    trail_lim: Vec<usize>,
    prop_head: usize,
    root_conflict: bool,
    activity: Vec<f64>,
    activity_inc: f64,
    decisions: u64,
    budget: u64,
    cancel: CancelToken,
}

const NO_REASON: usize = usize::MAX;

impl Solver {
    fn new(cnf: &Cnf, budget: u64, cancel: CancelToken) -> Self {
        let mut this = Solver {
            clauses: Vec::with_capacity(cnf.clauses.len()),
            watches: vec![Vec::new(); cnf.num_vars * 2],
            assignment: vec![None; cnf.num_vars],
            level: vec![0; cnf.num_vars],
            reason: vec![NO_REASON; cnf.num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            root_conflict: false,
            activity: vec![0.0; cnf.num_vars],
            activity_inc: 1.0,
            decisions: 0,
            budget,
            cancel,
        };
        for clause in &cnf.clauses {
            match clause.as_slice() {
                [] => this.root_conflict = true,
                [unit] => {
                    if !this.enqueue(*unit, NO_REASON) {
                        this.root_conflict = true;
                    }
                }
                [a, b, ..] => {
                    let index = this.clauses.len();
                    this.watches[a.code as usize].push(index);
                    this.watches[b.code as usize].push(index);
                    this.clauses.push(clause.clone());
                }
            }
        }
        this
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assignment[lit.var()].map(|v| v ^ lit.is_negative())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Assigns `lit` true and queues it for propagation; `false` when the
    /// opposite value already holds.
    fn enqueue(&mut self, lit: Lit, reason: usize) -> bool {
        match self.value(lit) {
            Some(value) => value,
            None => {
                let var = lit.var();
                self.assignment[var] = Some(!lit.is_negative());
                self.level[var] = self.decision_level();
                self.reason[var] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Undoes every assignment above `target_level`.
    fn backjump(&mut self, target_level: u32) {
        while self.decision_level() > target_level {
            let mark = self.trail_lim.pop().expect("level mark");
            while self.trail.len() > mark {
                let lit = self.trail.pop().expect("non-empty trail");
                self.assignment[lit.var()] = None;
            }
        }
        // Everything still on the trail was propagated before the conflict.
        self.prop_head = self.trail.len();
    }

    /// Unit propagation from the current queue head; returns the index of a
    /// conflicting clause, or `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            if self.cancel.is_cancelled() {
                // `search` notices the cancellation and aborts incomplete.
                return None;
            }
            let falsified = self.trail[self.prop_head].negated();
            self.prop_head += 1;
            // The watch list is rebuilt as clauses move their watch away.
            let watching = std::mem::take(&mut self.watches[falsified.code as usize]);
            let mut kept = Vec::with_capacity(watching.len());
            let mut conflict = None;
            for ci in watching {
                if conflict.is_some() {
                    kept.push(ci);
                    continue;
                }
                let clause = &mut self.clauses[ci];
                // Normalise so position 1 holds the falsified watch.
                if clause[0] == falsified {
                    clause.swap(0, 1);
                }
                let other = clause[0];
                if self.assignment[other.var()].map(|v| v ^ other.is_negative()) == Some(true) {
                    kept.push(ci);
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut moved = false;
                for k in 2..clause.len() {
                    let candidate = clause[k];
                    let candidate_false = self.assignment[candidate.var()]
                        .map(|v| v ^ candidate.is_negative())
                        == Some(false);
                    if !candidate_false {
                        clause.swap(1, k);
                        self.watches[candidate.code as usize].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                kept.push(ci);
                // No replacement: the clause is unit (or conflicting) on
                // `other`.
                if !self.enqueue(other, ci) {
                    conflict = Some(ci);
                }
            }
            self.watches[falsified.code as usize] = kept;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis: returns the learned clause (asserting
    /// literal first) and the level to backjump to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.assignment.len()];
        let mut counter = 0usize;
        let mut clause_index = conflict;
        let mut trail_index = self.trail.len();
        let mut resolved_on: Option<Lit> = None;
        let asserting = loop {
            let clause = &self.clauses[clause_index];
            // Skip the asserted literal (position 0) of reason clauses; the
            // initial conflict clause contributes every literal.
            let skip = usize::from(resolved_on.is_some());
            for &lit in &clause[skip..] {
                let var = lit.var();
                if !seen[var] && self.level[var] > 0 {
                    seen[var] = true;
                    // Inlined `bump`: `clause` keeps `self.clauses` borrowed.
                    self.activity[var] += self.activity_inc;
                    if self.activity[var] > 1e100 {
                        for a in &mut self.activity {
                            *a *= 1e-100;
                        }
                        self.activity_inc *= 1e-100;
                    }
                    if self.level[var] == current {
                        counter += 1;
                    } else {
                        learned.push(lit);
                    }
                }
            }
            // Resolve on the most recent seen trail literal.
            let lit = loop {
                trail_index -= 1;
                let lit = self.trail[trail_index];
                if seen[lit.var()] {
                    break lit;
                }
            };
            seen[lit.var()] = false;
            counter -= 1;
            if counter == 0 {
                break lit.negated();
            }
            clause_index = self.reason[lit.var()];
            debug_assert_ne!(clause_index, NO_REASON, "only the UIP lacks a reason");
            resolved_on = Some(lit);
        };
        // Backjump to the deepest level among the other learned literals.
        let backjump_level = learned
            .iter()
            .map(|lit| self.level[lit.var()])
            .max()
            .unwrap_or(0);
        learned.insert(0, asserting);
        (learned, backjump_level)
    }

    /// Installs a learned clause after the backjump and asserts its first
    /// literal.
    fn learn(&mut self, mut learned: Vec<Lit>) {
        if learned.len() == 1 {
            let ok = self.enqueue(learned[0], NO_REASON);
            debug_assert!(ok, "asserting literal is unassigned after backjump");
            return;
        }
        // Watch the asserting literal and a deepest-level other literal, so
        // the watches stay legal across future backjumps.
        let mut deepest = 1;
        for k in 2..learned.len() {
            if self.level[learned[k].var()] > self.level[learned[deepest].var()] {
                deepest = k;
            }
        }
        learned.swap(1, deepest);
        let index = self.clauses.len();
        self.watches[learned[0].code as usize].push(index);
        self.watches[learned[1].code as usize].push(index);
        let asserting = learned[0];
        self.clauses.push(learned);
        let ok = self.enqueue(asserting, index);
        debug_assert!(ok, "asserting literal is unassigned after backjump");
    }

    /// Picks the unassigned variable with the highest activity.
    fn pick_branch(&self) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (var, value) in self.assignment.iter().enumerate() {
            if value.is_none() {
                let activity = self.activity[var];
                if best.map(|(a, _)| activity > a).unwrap_or(true) {
                    best = Some((activity, var));
                }
            }
        }
        best.map(|(_, var)| var)
    }

    /// Returns `Some(true)` for SAT, `Some(false)` for UNSAT, `None` when the
    /// decision budget is exhausted or the run is cancelled.
    fn search(&mut self) -> Option<bool> {
        if self.root_conflict {
            return Some(false);
        }
        loop {
            if self.cancel.is_cancelled() {
                return None;
            }
            if let Some(conflict) = self.propagate() {
                if self.decision_level() == 0 {
                    return Some(false);
                }
                let (learned, backjump_level) = self.analyze(conflict);
                self.backjump(backjump_level);
                self.learn(learned);
                self.activity_inc /= 0.95;
                continue;
            }
            if self.cancel.is_cancelled() {
                return None;
            }
            let Some(var) = self.pick_branch() else {
                return Some(true);
            };
            if self.decisions >= self.budget {
                return None;
            }
            self.decisions += 1;
            self.trail_lim.push(self.trail.len());
            self.enqueue(Lit::positive(var), NO_REASON);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }

    #[test]
    fn literal_encoding() {
        let l = Lit::positive(5);
        assert_eq!(l.var(), 5);
        assert!(!l.is_negative());
        assert!(l.negated().is_negative());
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn satisfiable_and_unsat_formulas() {
        // (a | b) & (!a | b) & (a | !b) is satisfied by a=b=1.
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause(vec![lit(a, true), lit(b, true)]);
        cnf.add_clause(vec![lit(a, false), lit(b, true)]);
        cnf.add_clause(vec![lit(a, true), lit(b, false)]);
        let (model, complete) = cnf.solve(1_000);
        assert!(complete);
        let model = model.expect("satisfiable");
        assert!(model[a] && model[b]);
        // Adding (!a | !b) makes it unsatisfiable.
        cnf.add_clause(vec![lit(a, false), lit(b, false)]);
        let (model, complete) = cnf.solve(1_000);
        assert!(complete);
        assert!(model.is_none());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_three_into_two_is_unsat() {
        // Variables p[i][j]: pigeon i in hole j.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..3)
            .map(|_| (0..2).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|v| lit(*v, true)).collect());
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    cnf.add_clause(vec![lit(p[i1][j], false), lit(p[i2][j], false)]);
                }
            }
        }
        let (model, complete) = cnf.solve(100_000);
        assert!(complete);
        assert!(model.is_none());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn larger_pigeonhole_is_solved_by_learning() {
        // 7 pigeons into 6 holes: hopeless for chronological DPLL within a
        // small budget, quick with clause learning + backjumping.
        let (pigeons, holes) = (7usize, 6usize);
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|v| lit(*v, true)).collect());
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in i1 + 1..pigeons {
                    cnf.add_clause(vec![lit(p[i1][j], false), lit(p[i2][j], false)]);
                }
            }
        }
        let (model, complete) = cnf.solve(200_000);
        assert!(complete, "learning should settle PHP(7,6) in budget");
        assert!(model.is_none());
    }

    #[test]
    fn xor_chain_models_are_consistent() {
        // x0 ^ x1 ^ x2 = 1 encoded as 4 clauses; every returned model must
        // satisfy the parity.
        let mut cnf = Cnf::new();
        let x: Vec<usize> = (0..3).map(|_| cnf.fresh_var()).collect();
        for bits in 0..8u32 {
            let parity = bits.count_ones() % 2;
            let clause: Vec<Lit> = (0..3).map(|i| lit(x[i], (bits >> i) & 1 == 0)).collect();
            if parity == 0 {
                // Forbid even-parity assignments.
                cnf.add_clause(clause);
            }
        }
        let (model, complete) = cnf.solve(1_000);
        assert!(complete);
        let model = model.expect("odd parity is achievable");
        let ones = x.iter().filter(|v| model[**v]).count();
        assert_eq!(ones % 2, 1);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut cnf = Cnf::new();
        let vars: Vec<usize> = (0..30).map(|_| cnf.fresh_var()).collect();
        // Independent "exactly one of the pair" constraints: each pair needs
        // its own decision, exceeding the one-decision budget.
        for w in vars.chunks(2) {
            cnf.add_clause(vec![lit(w[0], true), lit(w[1], true)]);
            cnf.add_clause(vec![lit(w[0], false), lit(w[1], false)]);
        }
        let (_, complete) = cnf.solve(1);
        assert!(!complete);
        assert!(cnf.memory_bytes() > 0);
    }

    #[test]
    fn cancelled_solve_is_incomplete() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause(vec![lit(a, true), lit(b, true)]);
        let cancel = CancelToken::new();
        cancel.cancel();
        let (model, complete) = cnf.solve_cancellable(1_000, &cancel);
        assert!(model.is_none());
        assert!(!complete);
    }
}
