//! A small CDCL SAT solver (two-watched-literal propagation, first-UIP
//! clause learning, non-chronological backjumping, binary-heap VSIDS
//! decision activities, phase saving, Luby restarts and learned-clause
//! database reduction with LBD/activity-based garbage collection), used by
//! the bit-level bounded model checking baseline.

use wlac_atpg::CancelToken;

/// A literal: variable index with polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    code: u32,
}

impl Lit {
    /// Positive literal of variable `var`.
    pub fn positive(var: usize) -> Self {
        Lit {
            code: (var as u32) << 1,
        }
    }

    /// Negative literal of variable `var`.
    pub fn negative(var: usize) -> Self {
        Lit {
            code: ((var as u32) << 1) | 1,
        }
    }

    /// The underlying variable.
    pub fn var(self) -> usize {
        (self.code >> 1) as usize
    }

    /// `true` for a negated literal.
    pub fn is_negative(self) -> bool {
        self.code & 1 == 1
    }

    /// The opposite-polarity literal.
    pub fn negated(self) -> Lit {
        Lit {
            code: self.code ^ 1,
        }
    }
}

/// A CNF formula.
///
/// Clauses carry a *provenance tag*: **structural** clauses encode the design
/// itself (gate semantics, frame connections) and are valid for every query
/// against the same design, while **constraint** clauses encode one specific
/// query (initial state, environment, property target). The solver threads
/// this tag through conflict analysis, so a learned clause whose derivation
/// only ever touched structural clauses is itself design-valid and can be
/// exported for reuse by later queries (see [`Cnf::solve_learning`]).
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// `true` for query-specific (constraint) clauses, parallel to `clauses`.
    constraint: Vec<bool>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Conservatively tagged as query-specific: clauses learned from it are
    /// never exported as design-valid. Use [`Cnf::add_structural_clause`] for
    /// clauses that hold for every query against the same design.
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
        self.constraint.push(true);
    }

    /// Adds a *structural* clause: one implied by the design alone, valid for
    /// every query. Learned clauses derived exclusively from structural
    /// clauses are exported by [`Cnf::solve_learning`].
    pub fn add_structural_clause(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
        self.constraint.push(false);
    }

    /// Approximate memory held by the formula, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.clauses.iter().map(|c| c.len() * 4 + 25).sum::<usize>() + 48
    }

    /// Solves the formula.
    ///
    /// Returns `Some(model)` (a truth value per variable) when satisfiable,
    /// `None` when unsatisfiable. `budget` bounds the number of decisions,
    /// guarding against pathological inputs; exceeding it returns `None`
    /// conservatively together with `false` in the second tuple slot.
    pub fn solve(&self, budget: u64) -> (Option<Vec<bool>>, bool) {
        self.solve_cancellable(budget, &CancelToken::new())
    }

    /// Like [`Cnf::solve`], but polls `cancel` inside the search and the
    /// unit-propagation loop; a cancelled run returns `(None, false)` (no
    /// model, incomplete), exactly like budget exhaustion.
    pub fn solve_cancellable(
        &self,
        budget: u64,
        cancel: &CancelToken,
    ) -> (Option<Vec<bool>>, bool) {
        let (model, complete, _) = self.solve_with_stats(budget, cancel);
        (model, complete)
    }

    /// Like [`Cnf::solve_cancellable`], but also returns the solver's effort
    /// counters for attribution in portfolio reports.
    pub fn solve_with_stats(
        &self,
        budget: u64,
        cancel: &CancelToken,
    ) -> (Option<Vec<bool>>, bool, SatStats) {
        let outcome = self.solve_learning(budget, cancel, 0);
        (outcome.model, outcome.complete, outcome.stats)
    }

    /// Like [`Cnf::solve_with_stats`], but additionally exports learned
    /// clauses of up to `max_export_len` literals whose derivation used only
    /// structural clauses (see [`Cnf::add_structural_clause`]) — these are
    /// implied by the design alone and may be replayed into any later formula
    /// over the same variables. `max_export_len == 0` disables the export.
    pub fn solve_learning(
        &self,
        budget: u64,
        cancel: &CancelToken,
        max_export_len: usize,
    ) -> SatOutcome {
        let mut solver = Solver::new(self, budget, cancel.clone(), max_export_len);
        let outcome = solver.search();
        let stats = solver.stats;
        let learned = std::mem::take(&mut solver.exported);
        let (model, complete) = match outcome {
            Some(true) => (
                Some(
                    solver
                        .assignment
                        .iter()
                        .map(|v| v.unwrap_or(false))
                        .collect(),
                ),
                true,
            ),
            Some(false) => (None, true),
            None => (None, false),
        };
        SatOutcome {
            model,
            complete,
            stats,
            learned,
        }
    }
}

/// Full result of one CDCL run, including the design-valid learned clauses.
#[derive(Debug, Clone)]
pub struct SatOutcome {
    /// `Some(model)` when satisfiable (one truth value per variable).
    pub model: Option<Vec<bool>>,
    /// `false` when the budget was exhausted or the run was cancelled.
    pub complete: bool,
    /// Effort counters.
    pub stats: SatStats,
    /// Learned clauses derived exclusively from structural clauses, i.e.
    /// valid for every query against the same design encoding.
    pub learned: Vec<Vec<Lit>>,
}

/// Aggregate effort counters for one CDCL run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Branching decisions taken.
    pub decisions: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Literals propagated by the watched-literal scheme.
    pub propagations: u64,
    /// Luby restarts performed.
    pub restarts: u64,
    /// Clauses learned from conflicts.
    pub learned_clauses: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
}

impl SatStats {
    /// Accumulates another run's counters (e.g. across BMC unrolling depths).
    pub fn absorb(&mut self, other: &SatStats) {
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned_clauses += other.learned_clauses;
        self.deleted_clauses += other.deleted_clauses;
    }
}

/// One clause with its learning metadata.
#[derive(Debug, Clone)]
struct Clause {
    /// Watched literals sit in positions 0 and 1.
    lits: Vec<Lit>,
    /// Bump-and-decay activity (learned clauses only).
    activity: f64,
    /// Literal block distance at learn time (0 for problem clauses).
    lbd: u32,
    /// `true` when the clause was learned (eligible for deletion).
    learned: bool,
    /// `true` when the clause is (or derives from) a query-specific
    /// constraint clause; untainted learned clauses are design-valid.
    tainted: bool,
}

/// Binary max-heap over variables ordered by VSIDS activity, with a position
/// index so membership tests and targeted sift-ups are O(1)/O(log n).
#[derive(Debug)]
struct VarOrder {
    heap: Vec<u32>,
    /// `pos[var]` is the variable's index in `heap`, or `-1` when absent.
    pos: Vec<i32>,
}

impl VarOrder {
    fn new(num_vars: usize) -> Self {
        let heap: Vec<u32> = (0..num_vars as u32).collect();
        let pos: Vec<i32> = (0..num_vars as i32).collect();
        VarOrder { heap, pos }
    }

    fn contains(&self, var: usize) -> bool {
        self.pos[var] >= 0
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as i32;
        self.pos[self.heap[b] as usize] = b as i32;
    }

    /// Inserts `var` (no-op when present).
    fn insert(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.pos[var] = self.heap.len() as i32;
        self.heap.push(var as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores heap order after `var`'s activity increased.
    fn bumped(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            self.sift_up(self.pos[var] as usize, activity);
        }
    }

    /// Removes and returns the highest-activity variable.
    fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        let top = *self.heap.first()? as usize;
        let last = self.heap.pop().expect("non-empty heap");
        self.pos[top] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 1-based.
fn luby(mut i: u64) -> u64 {
    debug_assert!(i >= 1);
    loop {
        if (i + 1).is_power_of_two() {
            return i.div_ceil(2);
        }
        let k = 63 - (i + 1).leading_zeros() as u64;
        i -= (1u64 << k) - 1;
    }
}

/// Conflicts between restarts = `RESTART_UNIT * luby(restart_number)`.
const RESTART_UNIT: u64 = 64;

/// CDCL solver state.
///
/// Each clause of two or more literals keeps its watches in positions 0 and
/// 1; `watches[l.code]` lists the clauses currently watching literal `l`,
/// visited only when `l` becomes false, so propagation effort is proportional
/// to the watched occurrences of newly falsified literals instead of the
/// whole formula. Conflicts are analysed to the first unique implication
/// point; the learned clause drives a non-chronological backjump. Decision
/// variables are picked from a binary heap ordered by bumped-and-decayed
/// activity (VSIDS) with saved phases; Luby-scheduled restarts and periodic
/// learned-clause database reduction keep the search and the clause store
/// from degrading on large bounded-model-checking formulas.
struct Solver {
    /// Problem clauses and learned clauses, in one arena.
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>,
    assignment: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable (`usize::MAX` for decisions and
    /// root-level units).
    reason: Vec<usize>,
    trail: Vec<Lit>,
    /// `trail` length at the start of each decision level.
    trail_lim: Vec<usize>,
    prop_head: usize,
    root_conflict: bool,
    activity: Vec<f64>,
    activity_inc: f64,
    clause_activity_inc: f64,
    order: VarOrder,
    /// Last value assigned to each variable (phase saving).
    phase: Vec<bool>,
    /// Learned-clause count that triggers a database reduction.
    max_learnts: usize,
    learned_count: usize,
    conflicts_since_restart: u64,
    /// Scratch buffer for conflict analysis (`seen` marks).
    seen: Vec<bool>,
    /// Scratch: variables bumped during the current conflict analysis, so
    /// their heap positions can be restored after the clause borrow ends.
    bumped: Vec<u32>,
    /// Scratch for LBD computation: `lbd_seen[level] == lbd_stamp` marks a
    /// decision level as counted for the current clause (stamping avoids
    /// clearing — and allocating — a buffer per learned clause).
    lbd_seen: Vec<u64>,
    lbd_stamp: u64,
    /// Taint of each root-level (level 0) assignment: `true` when its
    /// derivation involved a constraint clause. Conflict analysis silently
    /// drops level-0 literals from learned clauses, so the learned clause
    /// inherits the taint of every dropped literal.
    var_taint: Vec<bool>,
    /// Design-valid learned clauses collected for export (eagerly, so
    /// database reduction cannot delete them before the run ends).
    exported: Vec<Vec<Lit>>,
    /// Maximum exported clause length (0 disables the export).
    max_export_len: usize,
    stats: SatStats,
    budget: u64,
    cancel: CancelToken,
}

/// Cap on the number of clauses exported per run, a memory backstop for
/// pathological formulas (the knowledge bank re-caps on import anyway).
const MAX_EXPORTED_CLAUSES: usize = 4096;

const NO_REASON: usize = usize::MAX;

impl Solver {
    fn new(cnf: &Cnf, budget: u64, cancel: CancelToken, max_export_len: usize) -> Self {
        let mut this = Solver {
            clauses: Vec::with_capacity(cnf.clauses.len()),
            watches: vec![Vec::new(); cnf.num_vars * 2],
            assignment: vec![None; cnf.num_vars],
            level: vec![0; cnf.num_vars],
            reason: vec![NO_REASON; cnf.num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            root_conflict: false,
            activity: vec![0.0; cnf.num_vars],
            activity_inc: 1.0,
            clause_activity_inc: 1.0,
            order: VarOrder::new(cnf.num_vars),
            phase: vec![true; cnf.num_vars],
            max_learnts: (cnf.clauses.len() / 3).max(100),
            learned_count: 0,
            conflicts_since_restart: 0,
            seen: vec![false; cnf.num_vars],
            bumped: Vec::new(),
            lbd_seen: vec![0; cnf.num_vars + 1],
            lbd_stamp: 0,
            var_taint: vec![false; cnf.num_vars],
            exported: Vec::new(),
            max_export_len,
            stats: SatStats::default(),
            budget,
            cancel,
        };
        for (clause, constraint) in cnf.clauses.iter().zip(&cnf.constraint) {
            match clause.as_slice() {
                [] => this.root_conflict = true,
                [unit] => {
                    if !this.enqueue(*unit, NO_REASON) {
                        this.root_conflict = true;
                    }
                    this.var_taint[unit.var()] |= *constraint;
                }
                [a, b, ..] => {
                    let index = this.clauses.len();
                    this.watches[a.code as usize].push(index);
                    this.watches[b.code as usize].push(index);
                    this.clauses.push(Clause {
                        lits: clause.clone(),
                        activity: 0.0,
                        lbd: 0,
                        learned: false,
                        tainted: *constraint,
                    });
                }
            }
        }
        this
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assignment[lit.var()].map(|v| v ^ lit.is_negative())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Assigns `lit` true and queues it for propagation; `false` when the
    /// opposite value already holds.
    fn enqueue(&mut self, lit: Lit, reason: usize) -> bool {
        match self.value(lit) {
            Some(value) => value,
            None => {
                let var = lit.var();
                self.assignment[var] = Some(!lit.is_negative());
                self.phase[var] = !lit.is_negative();
                self.level[var] = self.decision_level();
                self.reason[var] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Undoes every assignment above `target_level`, returning the freed
    /// variables to the decision heap.
    fn backjump(&mut self, target_level: u32) {
        while self.decision_level() > target_level {
            let mark = self.trail_lim.pop().expect("level mark");
            while self.trail.len() > mark {
                let lit = self.trail.pop().expect("non-empty trail");
                self.assignment[lit.var()] = None;
                self.order.insert(lit.var(), &self.activity);
            }
        }
        // Everything still on the trail was propagated before the conflict.
        self.prop_head = self.trail.len();
    }

    /// Unit propagation from the current queue head; returns the index of a
    /// conflicting clause, or `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            if self.cancel.is_cancelled() {
                // `search` notices the cancellation and aborts incomplete.
                return None;
            }
            let falsified = self.trail[self.prop_head].negated();
            self.prop_head += 1;
            self.stats.propagations += 1;
            // The watch list is rebuilt as clauses move their watch away.
            let watching = std::mem::take(&mut self.watches[falsified.code as usize]);
            let mut kept = Vec::with_capacity(watching.len());
            let mut conflict = None;
            for ci in watching {
                if conflict.is_some() {
                    kept.push(ci);
                    continue;
                }
                let clause = &mut self.clauses[ci].lits;
                // Normalise so position 1 holds the falsified watch.
                if clause[0] == falsified {
                    clause.swap(0, 1);
                }
                let other = clause[0];
                if self.assignment[other.var()].map(|v| v ^ other.is_negative()) == Some(true) {
                    kept.push(ci);
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut moved = false;
                for k in 2..clause.len() {
                    let candidate = clause[k];
                    let candidate_false = self.assignment[candidate.var()]
                        .map(|v| v ^ candidate.is_negative())
                        == Some(false);
                    if !candidate_false {
                        clause.swap(1, k);
                        self.watches[candidate.code as usize].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                kept.push(ci);
                // No replacement: the clause is unit (or conflicting) on
                // `other`.
                let fresh = self.assignment[other.var()].is_none();
                if !self.enqueue(other, ci) {
                    conflict = Some(ci);
                } else if fresh && self.trail_lim.is_empty() {
                    // Root-level implication: its taint is the implying
                    // clause's taint joined with that of every falsified
                    // sibling literal (all at level 0 here). Conflict
                    // analysis silently drops level-0 literals from learned
                    // clauses, so design-validity must be tracked through
                    // these assignments.
                    let clause = &self.clauses[ci];
                    let taint = clause.tainted
                        || clause
                            .lits
                            .iter()
                            .any(|l| l.var() != other.var() && self.var_taint[l.var()]);
                    self.var_taint[other.var()] = taint;
                }
            }
            self.watches[falsified.code as usize] = kept;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// Bumps a learned clause's activity (with rescaling).
    fn bump_clause(&mut self, ci: usize) {
        let clause = &mut self.clauses[ci];
        if !clause.learned {
            return;
        }
        clause.activity += self.clause_activity_inc;
        if clause.activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learned) {
                c.activity *= 1e-20;
            }
            self.clause_activity_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis: returns the learned clause (asserting
    /// literal first), the level to backjump to, and whether the derivation
    /// touched any query-specific constraint (directly or through a dropped
    /// level-0 literal) — tainted clauses must not be exported as
    /// design-valid.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32, bool) {
        let current = self.decision_level();
        let mut learned: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut clause_index = conflict;
        let mut trail_index = self.trail.len();
        let mut resolved_on: Option<Lit> = None;
        let mut taint = false;
        let asserting = loop {
            self.bump_clause(clause_index);
            taint |= self.clauses[clause_index].tainted;
            let clause = &self.clauses[clause_index].lits;
            // Skip the asserted literal (position 0) of reason clauses; the
            // initial conflict clause contributes every literal.
            let skip = usize::from(resolved_on.is_some());
            for &lit in &clause[skip..] {
                let var = lit.var();
                if self.level[var] == 0 {
                    // Dropped from the learned clause: it rides on the root
                    // assignment, so the clause inherits that taint.
                    taint |= self.var_taint[var];
                } else if !self.seen[var] {
                    self.seen[var] = true;
                    // Inlined `bump`: `clause` keeps `self.clauses` borrowed.
                    self.activity[var] += self.activity_inc;
                    self.bumped.push(var as u32);
                    if self.activity[var] > 1e100 {
                        for a in &mut self.activity {
                            *a *= 1e-100;
                        }
                        self.activity_inc *= 1e-100;
                    }
                    if self.level[var] == current {
                        counter += 1;
                    } else {
                        learned.push(lit);
                    }
                }
            }
            // Resolve on the most recent seen trail literal.
            let lit = loop {
                trail_index -= 1;
                let lit = self.trail[trail_index];
                if self.seen[lit.var()] {
                    break lit;
                }
            };
            self.seen[lit.var()] = false;
            counter -= 1;
            if counter == 0 {
                break lit.negated();
            }
            clause_index = self.reason[lit.var()];
            debug_assert_ne!(clause_index, NO_REASON, "only the UIP lacks a reason");
            resolved_on = Some(lit);
        };
        // Rescaled activities never re-sort the heap (uniform scaling keeps
        // the order); bumps do, once per touched variable.
        while let Some(var) = self.bumped.pop() {
            self.order.bumped(var as usize, &self.activity);
        }
        for lit in &learned {
            self.seen[lit.var()] = false;
        }
        // Backjump to the deepest level among the other learned literals.
        let backjump_level = learned
            .iter()
            .map(|lit| self.level[lit.var()])
            .max()
            .unwrap_or(0);
        learned.insert(0, asserting);
        (learned, backjump_level, taint)
    }

    /// Literal block distance: number of distinct decision levels in the
    /// clause — the quality measure driving database reduction (lower is
    /// better; "glue" clauses with LBD ≤ 2 are never deleted).
    fn lbd_of(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_stamp += 1;
        let mut count = 0u32;
        for lit in lits {
            let level = self.level[lit.var()] as usize;
            if self.lbd_seen[level] != self.lbd_stamp {
                self.lbd_seen[level] = self.lbd_stamp;
                count += 1;
            }
        }
        count
    }

    /// Installs a learned clause after the backjump and asserts its first
    /// literal. `tainted` marks clauses whose derivation touched a
    /// query-specific constraint; untainted ones are exported eagerly (so
    /// database reduction cannot delete them before the run ends).
    fn learn(&mut self, mut learned: Vec<Lit>, tainted: bool) {
        self.stats.learned_clauses += 1;
        if !tainted
            && self.max_export_len > 0
            && learned.len() <= self.max_export_len
            && self.exported.len() < MAX_EXPORTED_CLAUSES
        {
            self.exported.push(learned.clone());
        }
        if learned.len() == 1 {
            let ok = self.enqueue(learned[0], NO_REASON);
            debug_assert!(ok, "asserting literal is unassigned after backjump");
            self.var_taint[learned[0].var()] = tainted;
            return;
        }
        // Watch the asserting literal and a deepest-level other literal, so
        // the watches stay legal across future backjumps.
        let mut deepest = 1;
        for k in 2..learned.len() {
            if self.level[learned[k].var()] > self.level[learned[deepest].var()] {
                deepest = k;
            }
        }
        learned.swap(1, deepest);
        let index = self.clauses.len();
        self.watches[learned[0].code as usize].push(index);
        self.watches[learned[1].code as usize].push(index);
        let asserting = learned[0];
        let lbd = self.lbd_of(&learned);
        self.clauses.push(Clause {
            lits: learned,
            activity: self.clause_activity_inc,
            lbd,
            learned: true,
            tainted,
        });
        self.learned_count += 1;
        let ok = self.enqueue(asserting, index);
        debug_assert!(ok, "asserting literal is unassigned after backjump");
    }

    /// Deletes the worst half of the deletable learned clauses (kept: problem
    /// clauses, reasons of current assignments, and glue clauses with
    /// LBD ≤ 2), then rebuilds the watch lists and remaps reasons.
    fn reduce_db(&mut self) {
        // Rank deletable learned clauses: high LBD first, then low activity.
        let mut locked = vec![false; self.clauses.len()];
        for lit in &self.trail {
            let r = self.reason[lit.var()];
            if r != NO_REASON {
                locked[r] = true;
            }
        }
        let mut deletable: Vec<usize> = (0..self.clauses.len())
            .filter(|&ci| {
                let c = &self.clauses[ci];
                c.learned && c.lbd > 2 && !locked[ci]
            })
            .collect();
        deletable.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.partial_cmp(&cb.activity).expect("finite"))
        });
        let num_delete = deletable.len() / 2;
        if num_delete == 0 {
            // Nothing deletable: raise the ceiling so progress continues.
            self.max_learnts += self.max_learnts / 2 + 16;
            return;
        }
        let mut remove = vec![false; self.clauses.len()];
        for &ci in deletable.iter().take(num_delete) {
            remove[ci] = true;
        }
        // Compact the arena and remap indices.
        let mut new_index = vec![NO_REASON; self.clauses.len()];
        let mut kept = Vec::with_capacity(self.clauses.len() - num_delete);
        for (ci, clause) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if remove[ci] {
                continue;
            }
            new_index[ci] = kept.len();
            kept.push(clause);
        }
        self.clauses = kept;
        // Remap reasons of live assignments; reasons of unassigned variables
        // are stale leftovers from undone levels and must not keep clauses
        // alive (or be remapped — their target may be gone).
        for (var, r) in self.reason.iter_mut().enumerate() {
            if *r == NO_REASON {
                continue;
            }
            if self.assignment[var].is_some() {
                *r = new_index[*r];
                debug_assert_ne!(*r, NO_REASON, "reason clause must be locked");
            } else {
                *r = NO_REASON;
            }
        }
        for list in self.watches.iter_mut() {
            list.clear();
        }
        for (ci, clause) in self.clauses.iter().enumerate() {
            self.watches[clause.lits[0].code as usize].push(ci);
            self.watches[clause.lits[1].code as usize].push(ci);
        }
        self.learned_count -= num_delete;
        self.stats.deleted_clauses += num_delete as u64;
        self.max_learnts += self.max_learnts / 10 + 16;
    }

    /// Picks the unassigned variable with the highest activity from the
    /// decision heap.
    fn pick_branch(&mut self) -> Option<usize> {
        while let Some(var) = self.order.pop(&self.activity) {
            if self.assignment[var].is_none() {
                return Some(var);
            }
        }
        None
    }

    /// Returns `Some(true)` for SAT, `Some(false)` for UNSAT, `None` when the
    /// decision budget is exhausted or the run is cancelled.
    fn search(&mut self) -> Option<bool> {
        if self.root_conflict {
            return Some(false);
        }
        let mut restart_limit = RESTART_UNIT * luby(1);
        loop {
            if self.cancel.is_cancelled() {
                return None;
            }
            if let Some(conflict) = self.propagate() {
                if self.decision_level() == 0 {
                    return Some(false);
                }
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                let (learned, backjump_level, tainted) = self.analyze(conflict);
                self.backjump(backjump_level);
                self.learn(learned, tainted);
                self.activity_inc /= 0.95;
                self.clause_activity_inc /= 0.999;
                continue;
            }
            if self.cancel.is_cancelled() {
                return None;
            }
            if self.conflicts_since_restart >= restart_limit {
                // Luby restart: drop to the root level, keep activities,
                // phases and learned clauses; reduce the database when it
                // outgrew its budget.
                self.stats.restarts += 1;
                self.conflicts_since_restart = 0;
                restart_limit = RESTART_UNIT * luby(self.stats.restarts + 1);
                self.backjump(0);
                if self.learned_count > self.max_learnts {
                    self.reduce_db();
                }
                continue;
            }
            let Some(var) = self.pick_branch() else {
                return Some(true);
            };
            if self.stats.decisions >= self.budget {
                return None;
            }
            self.stats.decisions += 1;
            self.trail_lim.push(self.trail.len());
            let lit = if self.phase[var] {
                Lit::positive(var)
            } else {
                Lit::negative(var)
            };
            self.enqueue(lit, NO_REASON);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }

    #[test]
    fn literal_encoding() {
        let l = Lit::positive(5);
        assert_eq!(l.var(), 5);
        assert!(!l.is_negative());
        assert!(l.negated().is_negative());
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn satisfiable_and_unsat_formulas() {
        // (a | b) & (!a | b) & (a | !b) is satisfied by a=b=1.
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause(vec![lit(a, true), lit(b, true)]);
        cnf.add_clause(vec![lit(a, false), lit(b, true)]);
        cnf.add_clause(vec![lit(a, true), lit(b, false)]);
        let (model, complete) = cnf.solve(1_000);
        assert!(complete);
        let model = model.expect("satisfiable");
        assert!(model[a] && model[b]);
        // Adding (!a | !b) makes it unsatisfiable.
        cnf.add_clause(vec![lit(a, false), lit(b, false)]);
        let (model, complete) = cnf.solve(1_000);
        assert!(complete);
        assert!(model.is_none());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_three_into_two_is_unsat() {
        // Variables p[i][j]: pigeon i in hole j.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..3)
            .map(|_| (0..2).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|v| lit(*v, true)).collect());
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    cnf.add_clause(vec![lit(p[i1][j], false), lit(p[i2][j], false)]);
                }
            }
        }
        let (model, complete) = cnf.solve(100_000);
        assert!(complete);
        assert!(model.is_none());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn larger_pigeonhole_is_solved_by_learning() {
        // 7 pigeons into 6 holes: hopeless for chronological DPLL within a
        // small budget, quick with clause learning + backjumping.
        let (pigeons, holes) = (7usize, 6usize);
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|v| lit(*v, true)).collect());
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in i1 + 1..pigeons {
                    cnf.add_clause(vec![lit(p[i1][j], false), lit(p[i2][j], false)]);
                }
            }
        }
        let (model, complete) = cnf.solve(200_000);
        assert!(complete, "learning should settle PHP(7,6) in budget");
        assert!(model.is_none());
    }

    #[test]
    fn xor_chain_models_are_consistent() {
        // x0 ^ x1 ^ x2 = 1 encoded as 4 clauses; every returned model must
        // satisfy the parity.
        let mut cnf = Cnf::new();
        let x: Vec<usize> = (0..3).map(|_| cnf.fresh_var()).collect();
        for bits in 0..8u32 {
            let parity = bits.count_ones() % 2;
            let clause: Vec<Lit> = (0..3).map(|i| lit(x[i], (bits >> i) & 1 == 0)).collect();
            if parity == 0 {
                // Forbid even-parity assignments.
                cnf.add_clause(clause);
            }
        }
        let (model, complete) = cnf.solve(1_000);
        assert!(complete);
        let model = model.expect("odd parity is achievable");
        let ones = x.iter().filter(|v| model[**v]).count();
        assert_eq!(ones % 2, 1);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut cnf = Cnf::new();
        let vars: Vec<usize> = (0..30).map(|_| cnf.fresh_var()).collect();
        // Independent "exactly one of the pair" constraints: each pair needs
        // its own decision, exceeding the one-decision budget.
        for w in vars.chunks(2) {
            cnf.add_clause(vec![lit(w[0], true), lit(w[1], true)]);
            cnf.add_clause(vec![lit(w[0], false), lit(w[1], false)]);
        }
        let (_, complete) = cnf.solve(1);
        assert!(!complete);
        assert!(cnf.memory_bytes() > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[allow(clippy::needless_range_loop)]
    fn php(pigeons: usize, holes: usize) -> Cnf {
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|v| lit(*v, true)).collect());
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in i1 + 1..pigeons {
                    cnf.add_clause(vec![lit(p[i1][j], false), lit(p[i2][j], false)]);
                }
            }
        }
        cnf
    }

    #[test]
    fn stats_report_restarts_learning_and_db_reduction() {
        // PHP(8,7) produces thousands of conflicts: enough to exercise Luby
        // restarts and at least one learned-clause database reduction.
        let cnf = php(8, 7);
        let (model, complete, stats) = cnf.solve_with_stats(2_000_000, &CancelToken::new());
        assert!(complete, "PHP(8,7) must be decided");
        assert!(model.is_none(), "PHP(8,7) is UNSAT");
        assert!(stats.conflicts > 100);
        assert!(stats.learned_clauses > 100);
        assert!(stats.restarts > 0, "Luby restarts must fire");
        assert!(
            stats.deleted_clauses > 0,
            "database reduction must garbage-collect learned clauses"
        );
        assert!(stats.propagations > stats.conflicts);
        assert!(stats.decisions > 0);
    }

    #[test]
    fn db_reduction_preserves_soundness_on_satisfiable_formulas() {
        // A satisfiable formula with structure: a long xor-like chain plus
        // random-ish binary clauses. The solver must still return a model
        // that satisfies every clause after restarts and reductions.
        let mut cnf = Cnf::new();
        let vars: Vec<usize> = (0..60).map(|_| cnf.fresh_var()).collect();
        for w in vars.windows(3) {
            cnf.add_clause(vec![lit(w[0], true), lit(w[1], true), lit(w[2], true)]);
            cnf.add_clause(vec![lit(w[0], false), lit(w[1], false), lit(w[2], false)]);
        }
        let (model, complete, _) = cnf.solve_with_stats(1_000_000, &CancelToken::new());
        assert!(complete);
        let model = model.expect("satisfiable");
        for w in vars.windows(3) {
            let ones = w.iter().filter(|v| model[**v]).count();
            assert!((1..=2).contains(&ones));
        }
    }

    #[test]
    fn constraint_derived_refutations_are_not_exported() {
        // Structure: x ↔ (a ∧ b) plus the structural facts ¬a ∨ ¬b (the gate
        // can never see both inputs high) — everything derived stays
        // design-valid. The solver must produce some untainted learned
        // clauses while refuting x under a few decisions.
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        let x = cnf.fresh_var();
        // Tseitin for x = a & b.
        cnf.add_structural_clause(vec![lit(x, false), lit(a, true)]);
        cnf.add_structural_clause(vec![lit(x, false), lit(b, true)]);
        cnf.add_structural_clause(vec![lit(x, true), lit(a, false), lit(b, false)]);
        // Structural mutual exclusion.
        cnf.add_structural_clause(vec![lit(a, false), lit(b, false)]);
        // Query: x must hold (a constraint clause) — UNSAT.
        cnf.add_clause(vec![lit(x, true)]);
        let outcome = cnf.solve_learning(10_000, &CancelToken::new(), 8);
        assert!(outcome.complete);
        assert!(outcome.model.is_none());
        // Everything learnable here resolves through the constraint unit x,
        // so no clause may be exported as design-valid.
        assert!(
            outcome.learned.is_empty(),
            "clauses derived through the x constraint are tainted: {:?}",
            outcome.learned
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn exported_clauses_are_implied_by_the_structural_clauses_alone() {
        // A structurally-UNSAT pigeonhole (all clauses structural): every
        // learned clause derives from structure only and must be exported.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..4)
            .map(|_| (0..3).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_structural_clause(row.iter().map(|v| Lit::positive(*v)).collect());
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in i1 + 1..4 {
                    cnf.add_structural_clause(vec![
                        Lit::negative(p[i1][j]),
                        Lit::negative(p[i2][j]),
                    ]);
                }
            }
        }
        let outcome = cnf.solve_learning(100_000, &CancelToken::new(), 8);
        assert!(outcome.complete && outcome.model.is_none());
        assert!(
            !outcome.learned.is_empty(),
            "structural-only learning must export"
        );
        // Soundness spot-check: adding each exported clause to the structural
        // formula must not change satisfiability of any completion — verify
        // by checking each clause is implied: structure ∧ ¬clause is UNSAT.
        for clause in &outcome.learned {
            let mut check = Cnf::new();
            let vars: usize = 12;
            for _ in 0..vars {
                check.fresh_var();
            }
            for row in &p {
                check.add_structural_clause(row.iter().map(|v| Lit::positive(*v)).collect());
            }
            for j in 0..3 {
                for i1 in 0..4 {
                    for i2 in i1 + 1..4 {
                        check.add_structural_clause(vec![
                            Lit::negative(p[i1][j]),
                            Lit::negative(p[i2][j]),
                        ]);
                    }
                }
            }
            for l in clause {
                check.add_clause(vec![l.negated()]);
            }
            let (model, complete) = check.solve(100_000);
            assert!(complete, "implication check must be decided");
            assert!(
                model.is_none(),
                "exported clause {clause:?} is not implied by the structure"
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn mixed_derivations_split_by_taint() {
        // Same pigeonhole structure, but one hole is additionally *forbidden*
        // by constraint units. Clauses may still be learned purely from
        // structure; any exported clause must again be implied by structure
        // alone (checked via the previous test's implication pattern on a
        // sample).
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..3)
            .map(|_| (0..3).map(|_| cnf.fresh_var()).collect())
            .collect();
        for row in &p {
            cnf.add_structural_clause(row.iter().map(|v| Lit::positive(*v)).collect());
        }
        for j in 0..3 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    cnf.add_structural_clause(vec![
                        Lit::negative(p[i1][j]),
                        Lit::negative(p[i2][j]),
                    ]);
                }
            }
        }
        // Constraint: nobody may use hole 2 — makes it PHP(3,2), UNSAT.
        for i in 0..3 {
            cnf.add_clause(vec![Lit::negative(p[i][2])]);
        }
        let outcome = cnf.solve_learning(100_000, &CancelToken::new(), 8);
        assert!(outcome.complete && outcome.model.is_none());
        for clause in &outcome.learned {
            let mut check = Cnf::new();
            for _ in 0..9 {
                check.fresh_var();
            }
            for row in &p {
                check.add_structural_clause(row.iter().map(|v| Lit::positive(*v)).collect());
            }
            for j in 0..3 {
                for i1 in 0..3 {
                    for i2 in i1 + 1..3 {
                        check.add_structural_clause(vec![
                            Lit::negative(p[i1][j]),
                            Lit::negative(p[i2][j]),
                        ]);
                    }
                }
            }
            for l in clause {
                check.add_clause(vec![l.negated()]);
            }
            let (model, complete) = check.solve(100_000);
            assert!(complete);
            assert!(
                model.is_none(),
                "exported clause {clause:?} leaks the hole-2 constraint"
            );
        }
    }

    #[test]
    fn cancelled_solve_is_incomplete() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause(vec![lit(a, true), lit(b, true)]);
        let cancel = CancelToken::new();
        cancel.cancel();
        let (model, complete) = cnf.solve_cancellable(1_000, &cancel);
        assert!(model.is_none());
        assert!(!complete);
    }
}
