//! Random simulation baseline.
//!
//! The paper's introduction motivates deterministic techniques by the
//! weakness of random test-benches on corner-case bugs. This baseline
//! implements that straw man: drive the design with uniformly random inputs
//! for a number of runs and report whether the monitor was ever violated
//! (for `Always` properties) or satisfied (for `Eventually` witnesses).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use wlac_atpg::{PropertyKind, Verification};
use wlac_bv::Bv;
use wlac_sim::simulate;

/// Result of a random-simulation campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomSimReport {
    /// `true` when the target event (violation or witness) was observed.
    pub target_hit: bool,
    /// Cycle of the first hit, if any.
    pub first_hit_cycle: Option<usize>,
    /// Number of runs simulated.
    pub runs: usize,
    /// Cycles simulated per run.
    pub cycles_per_run: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Simulates `runs` random input sequences of `cycles` cycles each.
pub fn random_simulation(
    verification: &Verification,
    runs: usize,
    cycles: usize,
    seed: u64,
) -> RandomSimReport {
    let start = Instant::now();
    let netlist = &verification.netlist;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut target_hit = false;
    let mut first_hit_cycle = None;
    'runs: for _ in 0..runs {
        let mut frames = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            let mut inputs: HashMap<_, _> = HashMap::new();
            for pi in netlist.inputs() {
                let width = netlist.net_width(*pi);
                let words: Vec<u64> = (0..width.div_ceil(64)).map(|_| rng.gen()).collect();
                inputs.insert(*pi, Bv::from_words(width, &words));
            }
            frames.push(inputs);
        }
        let Ok(run) = simulate(netlist, &[], &frames) else {
            break;
        };
        for cycle in 0..cycles {
            let monitor = run.value(cycle, verification.property.monitor);
            let env_ok = verification
                .environment
                .iter()
                .all(|e| !run.value(cycle, *e).is_zero());
            if !env_ok {
                continue;
            }
            let hit = match verification.property.kind {
                PropertyKind::Always => monitor.is_zero(),
                PropertyKind::Eventually => !monitor.is_zero(),
            };
            if hit {
                target_hit = true;
                first_hit_cycle = Some(cycle);
                break 'runs;
            }
        }
    }
    RandomSimReport {
        target_hit,
        first_hit_cycle,
        runs,
        cycles_per_run: cycles,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::Property;
    use wlac_netlist::Netlist;

    #[test]
    fn random_simulation_finds_an_easy_witness_but_not_a_corner_case() {
        // Easy: some input bit is eventually 1. Corner case: a 16-bit input
        // must equal a specific constant.
        let mut nl = Netlist::new("rand");
        let wide = nl.input("wide", 16);
        let magic = nl.constant(&Bv::from_u64(16, 0xBEEF));
        let corner = nl.eq(wide, magic);
        let easy = nl.reduce_or(wide);
        nl.mark_output("corner", corner);

        let easy_property = Property::eventually(&nl, "easy", easy);
        let report = random_simulation(&Verification::new(nl.clone(), easy_property), 4, 8, 7);
        assert!(report.target_hit);
        assert_eq!(report.runs, 4);

        let corner_property = Property::eventually(&nl, "corner", corner);
        let report = random_simulation(&Verification::new(nl, corner_property), 4, 8, 7);
        assert!(!report.target_hit, "2^-16 chance per cycle should not hit in 32 cycles");
        assert!(report.first_hit_cycle.is_none());
    }
}
