//! Random simulation baseline.
//!
//! The paper's introduction motivates deterministic techniques by the
//! weakness of random test-benches on corner-case bugs. This baseline
//! implements that straw man: drive the design with uniformly random inputs
//! for a number of runs and report whether the monitor was ever violated
//! (for `Always` properties) or satisfied (for `Eventually` witnesses).

use std::collections::HashMap;
use std::time::{Duration, Instant};
use wlac_atpg::{CancelToken, PropertyKind, Trace, Verification};
use wlac_bv::Bv;
use wlac_rng::Rng64;
use wlac_sim::simulate;

/// Result of a random-simulation campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomSimReport {
    /// `true` when the target event (violation or witness) was observed.
    pub target_hit: bool,
    /// Cycle of the first hit, if any.
    pub first_hit_cycle: Option<usize>,
    /// Number of runs simulated.
    pub runs: usize,
    /// Cycles simulated per run.
    pub cycles_per_run: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The hitting input sequence, truncated at the hit cycle, when the
    /// target was observed. Replayable with [`Trace::replay_monitor`] for
    /// cross-engine validation.
    pub trace: Option<Trace>,
}

/// Simulates `runs` random input sequences of `cycles` cycles each.
pub fn random_simulation(
    verification: &Verification,
    runs: usize,
    cycles: usize,
    seed: u64,
) -> RandomSimReport {
    random_simulation_cancellable(verification, runs, cycles, seed, &CancelToken::new())
}

/// Like [`random_simulation`], but polls `cancel` between runs so a portfolio
/// supervisor can stop a losing campaign promptly.
pub fn random_simulation_cancellable(
    verification: &Verification,
    runs: usize,
    cycles: usize,
    seed: u64,
    cancel: &CancelToken,
) -> RandomSimReport {
    let start = Instant::now();
    let netlist = &verification.netlist;
    let mut rng = Rng64::seed_from_u64(seed);
    let mut target_hit = false;
    let mut first_hit_cycle = None;
    let mut trace = None;
    'runs: for _ in 0..runs {
        if cancel.is_cancelled() {
            break;
        }
        let mut frames = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            let mut inputs: HashMap<_, _> = HashMap::new();
            for pi in netlist.inputs() {
                let width = netlist.net_width(*pi);
                let words: Vec<u64> = (0..width.div_ceil(64)).map(|_| rng.next_u64()).collect();
                inputs.insert(*pi, Bv::from_words(width, &words));
            }
            frames.push(inputs);
        }
        let Ok(run) = simulate(netlist, &[], &frames) else {
            break;
        };
        for cycle in 0..cycles {
            let monitor = run.value(cycle, verification.property.monitor);
            let env_ok = verification
                .environment
                .iter()
                .all(|e| !run.value(cycle, *e).is_zero());
            if !env_ok {
                // The environment must hold in *every* cycle; once violated,
                // the design state is polluted and any later hit would yield
                // a trace the checkers rightly reject. Abandon the run.
                break;
            }
            let hit = match verification.property.kind {
                PropertyKind::Always => monitor.is_zero(),
                PropertyKind::Eventually => !monitor.is_zero(),
            };
            if hit {
                target_hit = true;
                first_hit_cycle = Some(cycle);
                // The replayed simulation starts from the same reset state as
                // `simulate(netlist, &[], ..)`, so an empty initial state
                // reproduces the run exactly.
                trace = Some(Trace {
                    initial_state: Vec::new(),
                    inputs: frames[..=cycle]
                        .iter()
                        .map(|frame| frame.iter().map(|(n, v)| (*n, v.clone())).collect())
                        .collect(),
                });
                break 'runs;
            }
        }
    }
    RandomSimReport {
        target_hit,
        first_hit_cycle,
        runs,
        cycles_per_run: cycles,
        elapsed: start.elapsed(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::Property;
    use wlac_netlist::Netlist;

    #[test]
    fn random_simulation_finds_an_easy_witness_but_not_a_corner_case() {
        // Easy: some input bit is eventually 1. Corner case: a 16-bit input
        // must equal a specific constant.
        let mut nl = Netlist::new("rand");
        let wide = nl.input("wide", 16);
        let magic = nl.constant(&Bv::from_u64(16, 0xBEEF));
        let corner = nl.eq(wide, magic);
        let easy = nl.reduce_or(wide);
        nl.mark_output("corner", corner);

        let easy_property = Property::eventually(&nl, "easy", easy);
        let easy_verification = Verification::new(nl.clone(), easy_property);
        let report = random_simulation(&easy_verification, 4, 8, 7);
        assert!(report.target_hit);
        assert_eq!(report.runs, 4);
        // The recorded trace replays to a real hit.
        let trace = report.trace.expect("hit comes with a trace");
        let replay = trace
            .replay_monitor(
                &easy_verification.netlist,
                easy_verification.property.monitor,
            )
            .expect("replay succeeds");
        assert_eq!(replay.last(), Some(&true));

        let corner_property = Property::eventually(&nl, "corner", corner);
        let report = random_simulation(&Verification::new(nl, corner_property), 4, 8, 7);
        assert!(
            !report.target_hit,
            "2^-16 chance per cycle should not hit in 32 cycles"
        );
        assert!(report.first_hit_cycle.is_none());
        assert!(report.trace.is_none());
    }

    #[test]
    fn cancelled_campaign_stops_without_a_hit() {
        let mut nl = Netlist::new("rand");
        let wide = nl.input("wide", 8);
        let easy = nl.reduce_or(wide);
        nl.mark_output("easy", easy);
        let property = Property::eventually(&nl, "easy", easy);
        let verification = Verification::new(nl, property);
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = random_simulation_cancellable(&verification, 1000, 1000, 3, &cancel);
        assert!(!report.target_hit, "cancelled before the first run");
    }
}
