//! # wlac-faultinject — deterministic fault injection and fault-tolerance primitives
//!
//! Two halves, both in service of a stack that survives its own failures:
//!
//! * **[`FaultPlan`]** — a deterministic, seed-driven description of *which*
//!   infrastructure faults to inject *where*. Production code carries a plan
//!   the same way it carries a [`CancelToken`]-style token: the disabled
//!   plan (the default) is a single `Option` check, allocates nothing and
//!   fires nothing, so the hot path pays nothing when chaos testing is off.
//!   An armed plan triggers engine hangs, worker panics, I/O errors and
//!   torn snapshot writes at chosen arrival counts, letting a chaos suite
//!   drive the full server stack through each fault class reproducibly.
//! * **Poison-recovering lock helpers** — [`LockExt::lock_recover`] and the
//!   [`CondvarExt`] waits. A worker that panics mid-job must not wedge every
//!   other thread behind a poisoned mutex: these helpers take the guard out
//!   of the [`std::sync::PoisonError`] and continue. They are the *only*
//!   sanctioned way to acquire shared service/server state (enforced by the
//!   clippy `unwrap_used`/`expect_used` gate in CI).
//!
//! `CancelToken`: see `wlac-atpg`'s configuration module.
//!
//! # Examples
//!
//! ```
//! use wlac_faultinject::{FaultPlan, FaultSite};
//!
//! // Disabled (the production default): nothing fires, nothing allocates.
//! let off = FaultPlan::disabled();
//! assert!(!off.is_armed());
//! assert!(!off.should_fire(FaultSite::WorkerPanic));
//!
//! // Armed: the second job to cross the WorkerPanic site panics.
//! let plan = FaultPlan::new().fire_nth(FaultSite::WorkerPanic, 2);
//! assert!(!plan.should_fire(FaultSite::WorkerPanic)); // arrival 1
//! assert!(plan.should_fire(FaultSite::WorkerPanic)); // arrival 2
//! assert!(!plan.should_fire(FaultSite::WorkerPanic)); // arrival 3
//! assert_eq!(plan.fired(FaultSite::WorkerPanic), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// A point in the stack where a [`FaultPlan`] can inject a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The core search loop stops making progress (a pathological property):
    /// [`FaultPlan::hang_until`] blocks until the release predicate — in
    /// practice the job's cancellation/deadline token — fires.
    EngineHang,
    /// A service worker panics inside job processing
    /// ([`FaultPlan::panic_point`]); the job must be quarantined and the
    /// pool must survive.
    WorkerPanic,
    /// A service worker panics *outside* the per-job panic fence, killing
    /// the worker thread; the supervisor must respawn it.
    WorkerLoss,
    /// A snapshot write fails outright (disk full, unwritable directory):
    /// [`FaultPlan::io_error`] yields the error to return.
    SnapshotWrite,
    /// A snapshot write is torn mid-frame (kill -9 during autosave): the
    /// writer leaves a partial temp file behind and reports failure.
    SnapshotTorn,
    /// A journal append fails outright (disk full, unwritable directory):
    /// [`FaultPlan::io_error`] yields the error to return. Durability
    /// degrades; serving must continue.
    JournalAppend,
    /// A journal append is torn mid-frame (kill -9 between the frame header
    /// and its checksum): the writer leaves a partial record at the tail,
    /// which recovery must quarantine.
    JournalTorn,
    /// A hard process kill ([`FaultPlan::crash_point`] calls
    /// [`std::process::abort`]): the crash-matrix suite arms this in a
    /// subprocess to die at an exact record boundary.
    CrashPoint,
}

impl FaultSite {
    /// Every site, for iteration in reports and tests.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::EngineHang,
        FaultSite::WorkerPanic,
        FaultSite::WorkerLoss,
        FaultSite::SnapshotWrite,
        FaultSite::SnapshotTorn,
        FaultSite::JournalAppend,
        FaultSite::JournalTorn,
        FaultSite::CrashPoint,
    ];

    /// Stable lower-case name (log lines, metric labels).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::EngineHang => "engine_hang",
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::WorkerLoss => "worker_loss",
            FaultSite::SnapshotWrite => "snapshot_write",
            FaultSite::SnapshotTorn => "snapshot_torn",
            FaultSite::JournalAppend => "journal_append",
            FaultSite::JournalTorn => "journal_torn",
            FaultSite::CrashPoint => "crash_point",
        }
    }

    /// Parses a stable lower-case name back into a site (the inverse of
    /// [`FaultSite::as_str`]) — how the server's `--fault SITE:N` flags and
    /// post-mortem smoke scripts name sites.
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.as_str() == s)
    }

    fn index(self) -> usize {
        match self {
            FaultSite::EngineHang => 0,
            FaultSite::WorkerPanic => 1,
            FaultSite::WorkerLoss => 2,
            FaultSite::SnapshotWrite => 3,
            FaultSite::SnapshotTorn => 4,
            FaultSite::JournalAppend => 5,
            FaultSite::JournalTorn => 6,
            FaultSite::CrashPoint => 7,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// When a rule fires, relative to the per-site arrival counter (the first
/// crossing of a site is arrival 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Exactly the `n`-th arrival.
    Nth(u64),
    /// Every arrival from the `n`-th on.
    From(u64),
    /// Pseudo-randomly with probability `per_mille`/1000, derived from the
    /// plan seed and the arrival count — deterministic for a fixed seed.
    Chance { per_mille: u32 },
}

struct PlanInner {
    seed: u64,
    rules: Vec<(FaultSite, Trigger)>,
    arrivals: [AtomicU64; 8],
    fired: [AtomicU64; 8],
}

/// A deterministic fault-injection plan. See the crate docs; the default
/// ([`FaultPlan::disabled`]) is inert and free, clones share the same
/// arrival counters (like a cancellation token, not like configuration).
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

impl FaultPlan {
    /// The inert plan: never fires, costs one `Option` check per site
    /// crossing. This is the production default.
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// An armed (but still empty) plan with the default seed. Add rules with
    /// [`FaultPlan::fire_nth`] / [`FaultPlan::fire_from`] /
    /// [`FaultPlan::fire_chance`].
    pub fn new() -> Self {
        FaultPlan::seeded(0xDAC2000)
    }

    /// An armed plan whose [`FaultPlan::fire_chance`] rules derive from
    /// `seed` — same seed, same faults, run after run.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            inner: Some(Arc::new(PlanInner {
                seed,
                rules: Vec::new(),
                arrivals: Default::default(),
                fired: Default::default(),
            })),
        }
    }

    fn with_rule(self, site: FaultSite, trigger: Trigger) -> Self {
        let inner = self.inner.unwrap_or_else(|| {
            Arc::new(PlanInner {
                seed: 0xDAC2000,
                rules: Vec::new(),
                arrivals: Default::default(),
                fired: Default::default(),
            })
        });
        // Plans are built before they are shared; a builder call after
        // cloning would silently fork the counters, so insist on uniqueness.
        let mut inner = Arc::try_unwrap(inner).unwrap_or_else(|arc| PlanInner {
            seed: arc.seed,
            rules: arc.rules.clone(),
            arrivals: Default::default(),
            fired: Default::default(),
        });
        inner.rules.push((site, trigger));
        FaultPlan {
            inner: Some(Arc::new(inner)),
        }
    }

    /// Fires exactly on the `n`-th crossing of `site` (1-based).
    pub fn fire_nth(self, site: FaultSite, n: u64) -> Self {
        self.with_rule(site, Trigger::Nth(n.max(1)))
    }

    /// Fires on every crossing of `site` from the `n`-th on (1-based).
    pub fn fire_from(self, site: FaultSite, n: u64) -> Self {
        self.with_rule(site, Trigger::From(n.max(1)))
    }

    /// Fires pseudo-randomly on ~`per_mille`/1000 of crossings,
    /// deterministically derived from the plan seed and the arrival count.
    pub fn fire_chance(self, site: FaultSite, per_mille: u32) -> Self {
        self.with_rule(
            site,
            Trigger::Chance {
                per_mille: per_mille.min(1000),
            },
        )
    }

    /// `true` when any rule is loaded — the cheap guard production code may
    /// use to skip fault bookkeeping entirely.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Counts an arrival at `site` and reports whether a rule fires for it.
    /// The disabled plan always answers `false` without counting.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let arrival = inner.arrivals[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let fire = inner.rules.iter().any(|(s, trigger)| {
            *s == site
                && match *trigger {
                    Trigger::Nth(n) => arrival == n,
                    Trigger::From(n) => arrival >= n,
                    Trigger::Chance { per_mille } => {
                        splitmix64(inner.seed ^ (site.index() as u64) << 32 ^ arrival) % 1000
                            < per_mille as u64
                    }
                }
        });
        if fire {
            inner.fired[site.index()].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// How often `site` has actually fired on this plan (all clones).
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.fired[site.index()].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// How often `site` has been crossed (fired or not) on this plan.
    pub fn arrivals(&self, site: FaultSite) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.arrivals[site.index()].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Injected hang: when a rule fires for `site`, blocks until `released`
    /// answers `true` (callers pass their cancellation/deadline check) and
    /// returns `true`; otherwise returns `false` immediately. The hang polls
    /// cooperatively — exactly like a real engine stuck in a pathological
    /// search loop that still honours its cancel token.
    pub fn hang_until(&self, site: FaultSite, released: impl Fn() -> bool) -> bool {
        if !self.should_fire(site) {
            return false;
        }
        while !released() {
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Injected panic: panics (with a recognisable message) when a rule
    /// fires for `site`.
    ///
    /// # Panics
    ///
    /// That is the point.
    pub fn panic_point(&self, site: FaultSite) {
        if self.should_fire(site) {
            panic!("injected fault: {site}");
        }
    }

    /// Injected I/O failure: the error to return when a rule fires for
    /// `site`, `None` otherwise.
    pub fn io_error(&self, site: FaultSite) -> Option<std::io::Error> {
        self.should_fire(site)
            .then(|| std::io::Error::other(format!("injected fault: {site}")))
    }

    /// Injected hard kill: calls [`std::process::abort`] when a rule fires
    /// for `site` — no unwinding, no destructors, no flushing, exactly like
    /// `kill -9` at that instruction. The crash-matrix suite arms this in a
    /// spawned server process to die at a chosen record boundary.
    pub fn crash_point(&self, site: FaultSite) {
        if self.should_fire(site) {
            std::process::abort();
        }
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("FaultPlan");
        match &self.inner {
            None => s.field("armed", &false).finish(),
            Some(inner) => s
                .field("armed", &true)
                .field("seed", &inner.seed)
                .field("rules", &inner.rules.len())
                .finish(),
        }
    }
}

/// SplitMix64 step — the workspace-standard seeding permutation, reproduced
/// here so the crate stays dependency-free (it sits below `wlac-rng`'s
/// users in the graph).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// --- poison recovery ---------------------------------------------------------

/// Poison-recovering mutex acquisition.
///
/// A panicking worker poisons every mutex it holds; the shared service state
/// (queues, caches, batch tables) must keep serving regardless — the
/// panicked *job* is quarantined, the *data* is still consistent because
/// jobs never panic while mutating it (locks are released around the race).
/// `lock_recover` therefore takes the guard out of the poison error instead
/// of propagating the panic to innocent threads.
pub trait LockExt<T> {
    /// Locks, recovering from poison.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-recovering condition-variable waits, the counterpart of
/// [`LockExt::lock_recover`] for the blocking side.
pub trait CondvarExt {
    /// Waits, recovering from poison.
    fn wait_recover<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T>;

    /// Waits with a timeout, recovering from poison; the `bool` is `true`
    /// when the wait timed out.
    fn wait_timeout_recover<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool);

    /// Waits until `deadline`, recovering from poison; the `bool` is `true`
    /// when the deadline passed without a notification.
    fn wait_deadline_recover<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        deadline: Instant,
    ) -> (MutexGuard<'a, T>, bool);
}

impl CondvarExt for Condvar {
    fn wait_recover<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_timeout_recover<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.wait_timeout(guard, timeout) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(poisoned) => {
                let (guard, result) = poisoned.into_inner();
                (guard, result.timed_out())
            }
        }
    }

    fn wait_deadline_recover<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        deadline: Instant,
    ) -> (MutexGuard<'a, T>, bool) {
        let now = Instant::now();
        if now >= deadline {
            return (guard, true);
        }
        self.wait_timeout_recover(guard, deadline - now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn disabled_plan_is_inert_and_free() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_armed());
        for site in FaultSite::ALL {
            assert!(!plan.should_fire(site));
            assert_eq!(plan.arrivals(site), 0, "disabled plans must not count");
            assert_eq!(plan.fired(site), 0);
        }
        assert!(plan.io_error(FaultSite::SnapshotWrite).is_none());
        assert!(!plan.hang_until(FaultSite::EngineHang, || false));
        plan.panic_point(FaultSite::WorkerPanic); // must not panic
        assert!(format!("{plan:?}").contains("false"));
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plan = FaultPlan::new().fire_nth(FaultSite::SnapshotWrite, 3);
        let fires: Vec<bool> = (0..6)
            .map(|_| plan.should_fire(FaultSite::SnapshotWrite))
            .collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert_eq!(plan.fired(FaultSite::SnapshotWrite), 1);
        assert_eq!(plan.arrivals(FaultSite::SnapshotWrite), 6);
    }

    #[test]
    fn from_fires_forever_after() {
        let plan = FaultPlan::new().fire_from(FaultSite::SnapshotWrite, 2);
        let fires: Vec<bool> = (0..4)
            .map(|_| plan.should_fire(FaultSite::SnapshotWrite))
            .collect();
        assert_eq!(fires, [false, true, true, true]);
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::new()
            .fire_nth(FaultSite::WorkerPanic, 1)
            .fire_nth(FaultSite::SnapshotTorn, 2);
        assert!(plan.should_fire(FaultSite::WorkerPanic));
        assert!(!plan.should_fire(FaultSite::SnapshotTorn));
        assert!(plan.should_fire(FaultSite::SnapshotTorn));
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::new().fire_nth(FaultSite::WorkerPanic, 2);
        let clone = plan.clone();
        assert!(!clone.should_fire(FaultSite::WorkerPanic));
        assert!(plan.should_fire(FaultSite::WorkerPanic), "arrival 2 fires");
        assert_eq!(clone.fired(FaultSite::WorkerPanic), 1);
    }

    #[test]
    fn chance_is_deterministic_per_seed() {
        let a = FaultPlan::seeded(7).fire_chance(FaultSite::EngineHang, 500);
        let b = FaultPlan::seeded(7).fire_chance(FaultSite::EngineHang, 500);
        let run = |plan: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|_| plan.should_fire(FaultSite::EngineHang))
                .collect()
        };
        let fires = run(&a);
        assert_eq!(fires, run(&b), "same seed, same faults");
        let hits = fires.iter().filter(|f| **f).count();
        assert!(hits > 8 && hits < 56, "~50% chance, got {hits}/64");
    }

    #[test]
    fn hang_until_blocks_until_released() {
        let plan = FaultPlan::new().fire_nth(FaultSite::EngineHang, 1);
        let released = AtomicBool::new(false);
        let hung = std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                released.store(true, Ordering::Release);
            });
            plan.hang_until(FaultSite::EngineHang, || released.load(Ordering::Acquire))
        });
        assert!(hung);
        assert!(released.load(Ordering::Acquire));
    }

    #[test]
    fn panic_point_panics_with_site_name() {
        let plan = FaultPlan::new().fire_nth(FaultSite::WorkerPanic, 1);
        let caught = std::panic::catch_unwind(|| plan.panic_point(FaultSite::WorkerPanic));
        let message = *caught
            .expect_err("must panic")
            .downcast::<String>()
            .expect("string payload");
        assert!(message.contains("worker_panic"), "{message}");
    }

    #[test]
    fn io_error_names_the_site() {
        let plan = FaultPlan::new().fire_nth(FaultSite::SnapshotWrite, 1);
        let error = plan
            .io_error(FaultSite::SnapshotWrite)
            .expect("first arrival fires");
        assert!(error.to_string().contains("snapshot_write"));
        assert!(plan.io_error(FaultSite::SnapshotWrite).is_none());
    }

    #[test]
    fn lock_recover_survives_poison() {
        let mutex = Arc::new(Mutex::new(1u32));
        let clone = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock_recover();
            panic!("poison it");
        })
        .join();
        assert!(mutex.lock().is_err(), "mutex is poisoned");
        *mutex.lock_recover() += 1;
        assert_eq!(*mutex.lock_recover(), 2);
    }

    #[test]
    fn condvar_waits_recover_and_report_timeouts() {
        let pair = (Mutex::new(false), Condvar::new());
        let guard = pair.0.lock_recover();
        let (guard, timed_out) = pair.1.wait_timeout_recover(guard, Duration::from_millis(5));
        assert!(timed_out);
        let (guard, timed_out) = pair
            .1
            .wait_deadline_recover(guard, Instant::now() - Duration::from_secs(1));
        assert!(timed_out, "past deadline times out immediately");
        drop(guard);
    }
}
