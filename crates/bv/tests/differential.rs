//! Differential tests: the word-parallel `Bv3` operations must agree with a
//! naive per-bit three-valued reference model across the inline/spilled
//! representation boundary (widths 1, 63, 64, 65, 128, 129).
//!
//! Widths up to 128 bits use the inline small-vector storage; 129 bits spills
//! to the heap. Every operation must produce identical logical results on
//! both sides of that boundary.

use wlac_bv::{Bv, Bv3, Tv};
use wlac_rng::Rng64 as Rng;

/// The widths straddling every storage boundary: one word, two words
/// (inline), and three words (spilled).
const WIDTHS: [usize; 6] = [1, 63, 64, 65, 128, 129];

/// Deterministic random cube: each bit independently 0, 1 or x.
fn random_cube(rng: &mut Rng, width: usize) -> Bv3 {
    let mut out = Bv3::all_x(width);
    for i in 0..width {
        let t = match rng.next_u64() % 3 {
            0 => Tv::Zero,
            1 => Tv::One,
            _ => Tv::X,
        };
        out.set_bit(i, t);
    }
    out
}

fn random_bv(rng: &mut Rng, width: usize) -> Bv {
    let mut out = Bv::zero(width);
    for i in 0..width {
        out = out.with_bit(i, rng.next_u64() & 1 == 1);
    }
    out
}

/// Per-bit reference for the bitwise three-valued operations.
fn ref_bitwise(a: &Bv3, b: &Bv3, f: impl Fn(Tv, Tv) -> Tv) -> Bv3 {
    let mut out = Bv3::all_x(a.width());
    for i in 0..a.width() {
        out.set_bit(i, f(a.bit(i), b.bit(i)));
    }
    out
}

#[test]
fn representation_matches_width_boundary() {
    for &w in &WIDTHS {
        let cube = Bv3::all_x(w);
        let value = Bv::zero(w);
        assert_eq!(cube.is_inline(), w <= 128, "Bv3 width {w}");
        assert_eq!(value.is_inline(), w <= 128, "Bv width {w}");
    }
}

#[test]
fn bitwise_ops_match_per_bit_reference() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0001);
    for &w in &WIDTHS {
        for _ in 0..16 {
            let a = random_cube(&mut rng, w);
            let b = random_cube(&mut rng, w);
            assert_eq!(a.and3(&b), ref_bitwise(&a, &b, |x, y| x & y), "and3 w={w}");
            assert_eq!(a.or3(&b), ref_bitwise(&a, &b, |x, y| x | y), "or3 w={w}");
            assert_eq!(a.xor3(&b), ref_bitwise(&a, &b, |x, y| x ^ y), "xor3 w={w}");
            assert_eq!(a.not3(), ref_bitwise(&a, &a, |x, _| !x), "not3 w={w}");
        }
    }
}

#[test]
fn intersect_union_refine_match_per_bit_reference() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0002);
    for &w in &WIDTHS {
        for _ in 0..16 {
            let a = random_cube(&mut rng, w);
            let b = random_cube(&mut rng, w);

            // Reference intersection: per-bit Tv::intersect, None on clash.
            let mut ref_meet = Some(Bv3::all_x(w));
            for i in 0..w {
                match a.bit(i).intersect(b.bit(i)) {
                    Some(t) => {
                        if let Some(m) = ref_meet.as_mut() {
                            m.set_bit(i, t);
                        }
                    }
                    None => ref_meet = None,
                }
                if ref_meet.is_none() {
                    break;
                }
            }
            assert_eq!(a.intersect(&b), ref_meet, "intersect w={w}");

            // In-place meet agrees with the functional form.
            let mut meet_in_place = a.clone();
            let compatible = meet_in_place.intersect_assign(&b);
            assert_eq!(compatible, ref_meet.is_some(), "intersect_assign w={w}");
            if let Some(m) = &ref_meet {
                assert_eq!(&meet_in_place, m, "intersect_assign value w={w}");
            }

            // Union: per-bit Tv::union.
            let ref_union = ref_bitwise(&a, &b, |x, y| x.union(y));
            assert_eq!(a.union(&b), ref_union, "union w={w}");
            let mut union_in_place = a.clone();
            union_in_place.union_assign(&b);
            assert_eq!(union_in_place, ref_union, "union_assign w={w}");

            // Refine == intersect (same lattice meet, conflict == disjoint).
            let mut refined = a.clone();
            match refined.refine(&b) {
                Ok(_) => assert_eq!(Some(refined), ref_meet, "refine w={w}"),
                Err(_) => assert!(ref_meet.is_none(), "refine conflict w={w}"),
            }
        }
    }
}

#[test]
fn refine_recording_deltas_restore_exactly() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0003);
    for &w in &WIDTHS {
        for _ in 0..8 {
            let original = random_cube(&mut rng, w);
            let other = random_cube(&mut rng, w);
            let mut cube = original.clone();
            let mut deltas: Vec<(usize, u64, u64)> = Vec::new();
            match cube.refine_recording(&other, |i, k, v| deltas.push((i, k, v))) {
                Ok(changed) => {
                    assert_eq!(changed, !deltas.is_empty(), "w={w}");
                    // Replaying the recorded deltas in reverse restores the
                    // original cube exactly.
                    for (i, k, v) in deltas.into_iter().rev() {
                        cube.restore_word(i, k, v);
                    }
                    assert_eq!(cube, original, "restore w={w}");
                }
                Err(_) => {
                    // On conflict nothing may have been reported or changed.
                    assert!(deltas.is_empty(), "w={w}");
                    assert_eq!(cube, original, "conflict leaves cube intact w={w}");
                }
            }
        }
    }
}

#[test]
fn min_max_matches_and_members_are_covered() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0004);
    for &w in &WIDTHS {
        for _ in 0..8 {
            let a = random_cube(&mut rng, w);
            let (lo, hi) = (a.min_value(), a.max_value());
            assert!(lo <= hi, "w={w}");
            assert!(a.matches(&lo), "min member w={w}");
            assert!(a.matches(&hi), "max member w={w}");
            // A random member obtained by filling x bits stays in range.
            let mut member = lo.clone();
            for i in 0..w {
                if a.bit(i) == Tv::X {
                    member = member.with_bit(i, rng.next_u64() & 1 == 1);
                }
            }
            assert!(a.matches(&member), "member w={w}");
            assert!(lo <= member && member <= hi, "member range w={w}");
        }
    }
}

#[test]
fn concrete_roundtrip_across_widths() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0005);
    for &w in &WIDTHS {
        for _ in 0..8 {
            let v = random_bv(&mut rng, w);
            let cube = Bv3::from_bv(&v);
            assert!(cube.is_fully_known(), "w={w}");
            assert_eq!(cube.to_bv(), Some(v.clone()), "roundtrip w={w}");
            assert_eq!(cube.min_value(), v, "min w={w}");
            assert_eq!(cube.max_value(), v, "max w={w}");
        }
    }
}

#[test]
fn slicing_across_the_word_boundary() {
    let mut rng = Rng::seed_from_u64(0xD1FF_0006);
    // Slicing a spilled 129-bit cube down to inline widths and back up.
    let wide = random_cube(&mut rng, 129);
    for lo in [0usize, 1, 63, 64, 65] {
        let slice = wide.slice(lo, 64);
        assert!(slice.is_inline());
        for i in 0..64 {
            assert_eq!(slice.bit(i), wide.bit(lo + i), "lo={lo} bit={i}");
        }
    }
    let back = wide.slice(1, 128).concat(&wide.slice(0, 1));
    assert_eq!(back.width(), 129);
    for i in 0..129 {
        assert_eq!(back.bit(i), wide.bit(i), "concat bit={i}");
    }
}
