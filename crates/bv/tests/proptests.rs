//! Property-based tests for the bit-vector domain.
//!
//! The central invariants are *soundness of abstraction*: every concrete
//! value consistent with input cubes must be consistent with the cube
//! produced by a three-valued operation, and the modular arithmetic of [`Bv`]
//! must agree with native wrapping arithmetic on narrow widths.
//!
//! The workspace builds offline, so instead of `proptest` these tests draw a
//! fixed number of cases from a seeded [`wlac_rng::Rng64`]: fully
//! deterministic and reproducible, with wide input coverage.

use wlac_bv::arith::{add3, eq3, gt3, lt3, mul3, sub3};
use wlac_bv::range::{range_of, refine_to_range};
use wlac_bv::{Bv, Bv3, Tv};
use wlac_rng::Rng64;

const CASES: usize = 1500;

/// Draws a width in 1..=12 together with a concrete value and a mask of bits
/// to blank out into `x` (the shape `proptest`'s `cube_with_member` strategy
/// generated).
fn draw_cube_params(rng: &mut Rng64) -> (usize, u64, u64) {
    let w = rng.next_range(1, 12) as usize;
    let max = (1u64 << w) - 1;
    (w, rng.next_below(max + 1), rng.next_below(max + 1))
}

fn make_cube(width: usize, value: u64, x_mask: u64) -> (Bv3, Bv) {
    let concrete = Bv::from_u64(width, value);
    let mut cube = Bv3::from_bv(&concrete);
    for i in 0..width {
        if (x_mask >> i) & 1 == 1 {
            cube.set_bit(i, Tv::X);
        }
    }
    (cube, concrete)
}

/// `Bv` addition/subtraction/multiplication agree with `u64` wrapping
/// arithmetic reduced modulo `2^width`.
#[test]
fn bv_matches_native_modular_arithmetic() {
    let mut rng = Rng64::seed_from_u64(0x1001);
    for _ in 0..CASES {
        let w = rng.next_range(1, 16) as usize;
        let modulus = 1u64 << w;
        let a = rng.next_u64() % modulus;
        let b = rng.next_u64() % modulus;
        let av = Bv::from_u64(w, a);
        let bv = Bv::from_u64(w, b);
        assert_eq!(av.add(&bv).to_u64(), Some((a + b) % modulus));
        assert_eq!(av.sub(&bv).to_u64(), Some(a.wrapping_sub(b) % modulus));
        assert_eq!(av.mul(&bv).to_u64(), Some(a.wrapping_mul(b) % modulus));
        assert_eq!(av.and(&bv).to_u64(), Some(a & b));
        assert_eq!(av.or(&bv).to_u64(), Some(a | b));
        assert_eq!(av.xor(&bv).to_u64(), Some(a ^ b));
        assert_eq!(av.not().to_u64(), Some(!a % modulus));
    }
}

/// Cube membership is preserved by three-valued addition, subtraction and
/// multiplication (abstraction soundness).
#[test]
fn three_valued_arith_is_sound() {
    let mut rng = Rng64::seed_from_u64(0x1002);
    for _ in 0..CASES {
        let (w, a, am) = draw_cube_params(&mut rng);
        let (b, bm) = (rng.next_below(4096), rng.next_below(4096));
        let (ca, va) = make_cube(w, a, am);
        let (cb, vb) = make_cube(w, b, bm);
        let (sum, carry) = add3(&ca, &cb);
        assert!(sum.matches(&va.add(&vb)));
        if carry.is_known() {
            let real = (va.to_u64().unwrap() + vb.to_u64().unwrap()) >> w != 0;
            assert_eq!(carry, Tv::from_bool(real));
        }
        let (diff, _) = sub3(&ca, &cb);
        assert!(diff.matches(&va.sub(&vb)));
        let prod = mul3(&ca, &cb);
        assert!(prod.matches(&va.mul(&vb)));
    }
}

/// Three-valued comparisons never contradict the concrete comparison of a
/// member value pair.
#[test]
fn three_valued_compare_is_sound() {
    let mut rng = Rng64::seed_from_u64(0x1003);
    for _ in 0..CASES {
        let (w, a, am) = draw_cube_params(&mut rng);
        let (b, bm) = (rng.next_below(4096), rng.next_below(4096));
        let (ca, va) = make_cube(w, a, am);
        let (cb, vb) = make_cube(w, b, bm);
        if let Some(known) = lt3(&ca, &cb).to_bool() {
            assert_eq!(known, va < vb);
        }
        if let Some(known) = gt3(&ca, &cb).to_bool() {
            assert_eq!(known, va > vb);
        }
        if let Some(known) = eq3(&ca, &cb).to_bool() {
            assert_eq!(known, va == vb);
        }
    }
}

/// Range refinement keeps every member of the cube that lies inside the
/// target interval, and never invents values outside the original cube.
#[test]
fn range_refinement_is_sound() {
    let mut rng = Rng64::seed_from_u64(0x1004);
    for _ in 0..CASES {
        let (w, a, am) = draw_cube_params(&mut rng);
        let (cube, _) = make_cube(w, a, am);
        let modulus = 1u64 << w;
        let lo = rng.next_below(4096) % modulus;
        let hi = rng.next_below(4096) % modulus;
        let lo_bv = Bv::from_u64(w, lo.min(hi));
        let hi_bv = Bv::from_u64(w, lo.max(hi));
        match refine_to_range(&cube, &lo_bv, &hi_bv) {
            Ok(refined) => {
                assert!(cube.covers(&refined));
                for v in 0..modulus {
                    let bv = Bv::from_u64(w, v);
                    let in_interval = bv >= lo_bv && bv <= hi_bv;
                    if cube.matches(&bv) && in_interval {
                        assert!(refined.matches(&bv), "refinement dropped member {v}");
                    }
                }
            }
            Err(_) => {
                // Conflict must mean no member of the cube lies in the interval.
                for v in 0..modulus {
                    let bv = Bv::from_u64(w, v);
                    if cube.matches(&bv) {
                        assert!(!(bv >= lo_bv && bv <= hi_bv));
                    }
                }
            }
        }
    }
}

/// Min/max bounds really bound every member.
#[test]
fn range_of_bounds_members() {
    let mut rng = Rng64::seed_from_u64(0x1005);
    for _ in 0..CASES {
        let (w, a, am) = draw_cube_params(&mut rng);
        let (cube, member) = make_cube(w, a, am);
        let (lo, hi) = range_of(&cube);
        assert!(lo <= member && member <= hi);
    }
}

/// Intersection is the exact set intersection on small widths.
#[test]
fn intersect_is_exact() {
    let mut rng = Rng64::seed_from_u64(0x1006);
    for _ in 0..CASES {
        let (w, a, am) = draw_cube_params(&mut rng);
        let (b, bm) = (rng.next_below(4096), rng.next_below(4096));
        let (ca, _) = make_cube(w, a, am);
        let (cb, _) = make_cube(w, b, bm);
        let inter = ca.intersect(&cb);
        for v in 0..(1u64 << w) {
            let bv = Bv::from_u64(w, v);
            let both = ca.matches(&bv) && cb.matches(&bv);
            match &inter {
                Some(c) => assert_eq!(both, c.matches(&bv)),
                None => assert!(!both),
            }
        }
    }
}

/// Union covers both operands.
#[test]
fn union_covers_operands() {
    let mut rng = Rng64::seed_from_u64(0x1007);
    for _ in 0..CASES {
        let (w, a, am) = draw_cube_params(&mut rng);
        let (b, bm) = (rng.next_below(4096), rng.next_below(4096));
        let (ca, _) = make_cube(w, a, am);
        let (cb, _) = make_cube(w, b, bm);
        let u = ca.union(&cb);
        assert!(u.covers(&ca));
        assert!(u.covers(&cb));
    }
}

/// Parsing and displaying a cube round-trips.
#[test]
fn display_parse_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x1008);
    for _ in 0..CASES {
        let (w, a, am) = draw_cube_params(&mut rng);
        let (cube, _) = make_cube(w, a, am);
        let text = cube.to_string();
        let back: Bv3 = text.parse().unwrap();
        assert_eq!(cube, back);
    }
}

/// Shift-left then shift-right by the same amount preserves the low bits.
#[test]
fn bv_shift_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x1009);
    for _ in 0..CASES {
        let w = rng.next_range(2, 128) as usize;
        let v = rng.next_u64();
        let s = (rng.next_below(17) as usize) % w;
        let bv = Bv::from_u64(w, v);
        let rt = bv.shl(s).shr(s);
        // The round trip clears the top `s` bits.
        let mask = if w - s >= 64 {
            u64::MAX
        } else {
            (1u64 << (w - s)) - 1
        };
        assert_eq!(rt.to_u64().map(|x| x & mask), bv.to_u64().map(|x| x & mask));
    }
}
