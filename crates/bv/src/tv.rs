//! Single three-valued logic bit.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A single bit of three-valued logic: `0`, `1` or unknown (`x`).
///
/// `Tv` is the scalar building block of the cube type [`crate::Bv3`]. Logic
/// operators follow the standard Kleene semantics used by 3-valued RTL
/// simulation: an operation produces a known value whenever the known inputs
/// already determine it (e.g. `0 & x == 0`).
///
/// # Examples
///
/// ```
/// use wlac_bv::Tv;
///
/// assert_eq!(Tv::Zero & Tv::X, Tv::Zero);
/// assert_eq!(Tv::One | Tv::X, Tv::One);
/// assert_eq!(Tv::One ^ Tv::X, Tv::X);
/// assert_eq!(!Tv::X, Tv::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tv {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown / unassigned.
    #[default]
    X,
}

impl Tv {
    /// Returns `true` if the bit has a known (non-`x`) value.
    pub fn is_known(self) -> bool {
        self != Tv::X
    }

    /// Converts a known bit to `bool`, or `None` for `x`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Tv::Zero => Some(false),
            Tv::One => Some(true),
            Tv::X => None,
        }
    }

    /// Builds a known bit from a `bool`.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Tv::One
        } else {
            Tv::Zero
        }
    }

    /// Returns `true` if `other` is compatible with `self`, i.e. every
    /// concrete value represented by `other` is also represented by `self`.
    ///
    /// `x` covers everything; a known value covers only itself.
    pub fn covers(self, other: Tv) -> bool {
        self == Tv::X || self == other
    }

    /// Intersection of the value sets of two bits.
    ///
    /// Returns `None` when the bits are known and different (conflict).
    pub fn intersect(self, other: Tv) -> Option<Tv> {
        match (self, other) {
            (Tv::X, o) => Some(o),
            (s, Tv::X) => Some(s),
            (s, o) if s == o => Some(s),
            _ => None,
        }
    }

    /// Union of the value sets of two bits (cube union): known only when both
    /// agree.
    pub fn union(self, other: Tv) -> Tv {
        if self == other {
            self
        } else {
            Tv::X
        }
    }
}

impl Not for Tv {
    type Output = Tv;
    fn not(self) -> Tv {
        match self {
            Tv::Zero => Tv::One,
            Tv::One => Tv::Zero,
            Tv::X => Tv::X,
        }
    }
}

impl BitAnd for Tv {
    type Output = Tv;
    fn bitand(self, rhs: Tv) -> Tv {
        match (self, rhs) {
            (Tv::Zero, _) | (_, Tv::Zero) => Tv::Zero,
            (Tv::One, Tv::One) => Tv::One,
            _ => Tv::X,
        }
    }
}

impl BitOr for Tv {
    type Output = Tv;
    fn bitor(self, rhs: Tv) -> Tv {
        match (self, rhs) {
            (Tv::One, _) | (_, Tv::One) => Tv::One,
            (Tv::Zero, Tv::Zero) => Tv::Zero,
            _ => Tv::X,
        }
    }
}

impl BitXor for Tv {
    type Output = Tv;
    fn bitxor(self, rhs: Tv) -> Tv {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Tv::from_bool(a ^ b),
            _ => Tv::X,
        }
    }
}

impl fmt::Display for Tv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tv::Zero => write!(f, "0"),
            Tv::One => write!(f, "1"),
            Tv::X => write!(f, "x"),
        }
    }
}

impl From<bool> for Tv {
    fn from(b: bool) -> Self {
        Tv::from_bool(b)
    }
}

/// Full-adder over three-valued bits: returns `(sum, carry_out)`.
///
/// The sum is known only when all three inputs are known. The carry is known
/// as soon as two inputs are known-one (carry = 1) or two are known-zero
/// (carry = 0).
pub(crate) fn full_add(a: Tv, b: Tv, cin: Tv) -> (Tv, Tv) {
    let bits = [a, b, cin];
    let ones = bits.iter().filter(|t| **t == Tv::One).count();
    let zeros = bits.iter().filter(|t| **t == Tv::Zero).count();
    let sum = if ones + zeros == 3 {
        Tv::from_bool(ones % 2 == 1)
    } else {
        Tv::X
    };
    let carry = if ones >= 2 {
        Tv::One
    } else if zeros >= 2 {
        Tv::Zero
    } else {
        Tv::X
    };
    (sum, carry)
}

/// Full-subtractor over three-valued bits for `a - b`: returns
/// `(difference, borrow_out)`.
pub(crate) fn full_sub(a: Tv, b: Tv, bin: Tv) -> (Tv, Tv) {
    let diff = a ^ b ^ bin;
    // borrow_out = (!a & b) | (!(a ^ b) & bin)
    let borrow = (!a & b) | (!(a ^ b) & bin);
    (diff, borrow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_and_bool_roundtrip() {
        assert!(Tv::Zero.is_known());
        assert!(Tv::One.is_known());
        assert!(!Tv::X.is_known());
        assert_eq!(Tv::from_bool(true), Tv::One);
        assert_eq!(Tv::from_bool(false), Tv::Zero);
        assert_eq!(Tv::One.to_bool(), Some(true));
        assert_eq!(Tv::X.to_bool(), None);
    }

    #[test]
    fn kleene_and() {
        assert_eq!(Tv::Zero & Tv::X, Tv::Zero);
        assert_eq!(Tv::X & Tv::Zero, Tv::Zero);
        assert_eq!(Tv::One & Tv::One, Tv::One);
        assert_eq!(Tv::One & Tv::X, Tv::X);
        assert_eq!(Tv::X & Tv::X, Tv::X);
    }

    #[test]
    fn kleene_or() {
        assert_eq!(Tv::One | Tv::X, Tv::One);
        assert_eq!(Tv::X | Tv::One, Tv::One);
        assert_eq!(Tv::Zero | Tv::Zero, Tv::Zero);
        assert_eq!(Tv::Zero | Tv::X, Tv::X);
    }

    #[test]
    fn kleene_xor_and_not() {
        assert_eq!(Tv::One ^ Tv::Zero, Tv::One);
        assert_eq!(Tv::One ^ Tv::One, Tv::Zero);
        assert_eq!(Tv::One ^ Tv::X, Tv::X);
        assert_eq!(!Tv::Zero, Tv::One);
        assert_eq!(!Tv::X, Tv::X);
    }

    #[test]
    fn covers_and_intersect() {
        assert!(Tv::X.covers(Tv::One));
        assert!(Tv::X.covers(Tv::X));
        assert!(!Tv::One.covers(Tv::X));
        assert!(Tv::One.covers(Tv::One));
        assert_eq!(Tv::X.intersect(Tv::One), Some(Tv::One));
        assert_eq!(Tv::One.intersect(Tv::Zero), None);
        assert_eq!(Tv::Zero.intersect(Tv::Zero), Some(Tv::Zero));
    }

    #[test]
    fn union_loses_disagreement() {
        assert_eq!(Tv::One.union(Tv::One), Tv::One);
        assert_eq!(Tv::One.union(Tv::Zero), Tv::X);
        assert_eq!(Tv::One.union(Tv::X), Tv::X);
    }

    #[test]
    fn full_adder_truth_table_known() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let (s, co) = full_add(a.into(), b.into(), c.into());
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(s, Tv::from_bool(total % 2 == 1));
                    assert_eq!(co, Tv::from_bool(total >= 2));
                }
            }
        }
    }

    #[test]
    fn full_adder_partial_knowledge() {
        // Two known ones force the carry even with an unknown input.
        let (s, co) = full_add(Tv::One, Tv::One, Tv::X);
        assert_eq!(s, Tv::X);
        assert_eq!(co, Tv::One);
        // Two known zeros force carry = 0.
        let (_, co) = full_add(Tv::Zero, Tv::X, Tv::Zero);
        assert_eq!(co, Tv::Zero);
    }

    #[test]
    fn full_sub_matches_two_valued() {
        for a in [false, true] {
            for b in [false, true] {
                for bin in [false, true] {
                    let (d, bo) = full_sub(a.into(), b.into(), bin.into());
                    let lhs = a as i8 - b as i8 - bin as i8;
                    assert_eq!(d, Tv::from_bool(lhs.rem_euclid(2) == 1));
                    assert_eq!(bo, Tv::from_bool(lhs < 0));
                }
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Tv::Zero.to_string(), "0");
        assert_eq!(Tv::One.to_string(), "1");
        assert_eq!(Tv::X.to_string(), "x");
    }
}
