//! Three-valued bit-vector cubes.

use crate::bv::split_literal;
use crate::error::ParseBvError;
use crate::small::SmallWords;
use crate::{last_word_mask, words_for, Bv, Tv, WORD_BITS};
use std::fmt;
use std::str::FromStr;

/// A three-valued bit-vector *cube*.
///
/// Every bit is either known-`0`, known-`1` or unknown (`x`). A `Bv3` denotes
/// the set of all concrete [`Bv`] values that agree with its known bits —
/// exactly the representation the paper uses for multiple-bit bus values
/// during word-level implication.
///
/// Internally two planes of `u64` words are kept: `known` (bit is not `x`)
/// and `value` (bit value, only meaningful where `known` is set), with the
/// invariant `value & !known == 0`. Both planes are stored inline for widths
/// up to 128 bits, so constructing or cloning narrow cubes never touches the
/// heap — the property the word-level implication hot path depends on.
///
/// # Examples
///
/// ```
/// use wlac_bv::{Bv, Bv3, Tv};
///
/// # fn main() -> Result<(), wlac_bv::ParseBvError> {
/// let cube: Bv3 = "4'b10xx".parse()?;
/// assert_eq!(cube.bit(3), Tv::One);
/// assert_eq!(cube.bit(0), Tv::X);
/// assert_eq!(cube.min_value(), Bv::from_u64(4, 0b1000));
/// assert_eq!(cube.max_value(), Bv::from_u64(4, 0b1011));
/// assert!(cube.matches(&Bv::from_u64(4, 0b1001)));
/// assert!(!cube.matches(&Bv::from_u64(4, 0b0001)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bv3 {
    width: usize,
    /// Bit is known (not x).
    known: SmallWords,
    /// Bit value; only meaningful where `known` is set.
    value: SmallWords,
}

impl Bv3 {
    /// Creates a cube of the given width with every bit unknown.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn all_x(width: usize) -> Self {
        assert!(width > 0, "bit-vector width must be positive");
        let n = words_for(width);
        Bv3 {
            width,
            known: SmallWords::zeroed(n),
            value: SmallWords::zeroed(n),
        }
    }

    /// Creates a fully-known cube from a concrete value.
    pub fn from_bv(value: &Bv) -> Self {
        let mut out = Bv3::all_x(value.width());
        for (i, w) in value.words().iter().enumerate() {
            out.value[i] = *w;
            out.known[i] = u64::MAX;
        }
        out.normalize();
        out
    }

    /// Creates a fully-known cube of the given width from a `u64`.
    pub fn from_u64(width: usize, value: u64) -> Self {
        Bv3::from_bv(&Bv::from_u64(width, value))
    }

    /// Creates a single-bit cube from a [`Tv`].
    pub fn from_tv(t: Tv) -> Self {
        let mut out = Bv3::all_x(1);
        out.set_bit(0, t);
        out
    }

    fn normalize(&mut self) {
        let n = self.known.len();
        let mask = last_word_mask(self.width);
        self.known[n - 1] &= mask;
        self.value[n - 1] &= mask;
        for i in 0..n {
            self.value[i] &= self.known[i];
        }
    }

    /// The width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Value of bit `i` (`i == 0` is the least significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> Tv {
        assert!(i < self.width, "bit index {i} out of range");
        let w = i / WORD_BITS;
        let b = i % WORD_BITS;
        if (self.known[w] >> b) & 1 == 0 {
            Tv::X
        } else if (self.value[w] >> b) & 1 == 1 {
            Tv::One
        } else {
            Tv::Zero
        }
    }

    /// Sets bit `i` to the given three-valued value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: usize, t: Tv) {
        assert!(i < self.width, "bit index {i} out of range");
        let w = i / WORD_BITS;
        let mask = 1u64 << (i % WORD_BITS);
        match t {
            Tv::X => {
                self.known[w] &= !mask;
                self.value[w] &= !mask;
            }
            Tv::Zero => {
                self.known[w] |= mask;
                self.value[w] &= !mask;
            }
            Tv::One => {
                self.known[w] |= mask;
                self.value[w] |= mask;
            }
        }
    }

    /// Returns a copy with bit `i` set to `t`.
    pub fn with_bit(&self, i: usize, t: Tv) -> Self {
        let mut out = self.clone();
        out.set_bit(i, t);
        out
    }

    /// Iterator over bits from least significant to most significant.
    pub fn iter(&self) -> impl Iterator<Item = Tv> + '_ {
        (0..self.width).map(move |i| self.bit(i))
    }

    /// `true` when every bit is known.
    pub fn is_fully_known(&self) -> bool {
        self.count_x() == 0
    }

    /// `true` when every bit is unknown.
    pub fn is_all_x(&self) -> bool {
        self.known.iter().all(|w| *w == 0)
    }

    /// Number of unknown bits.
    pub fn count_x(&self) -> usize {
        self.width - self.count_known()
    }

    /// Number of known bits.
    pub fn count_known(&self) -> usize {
        self.known.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Converts to a concrete value if fully known.
    pub fn to_bv(&self) -> Option<Bv> {
        if self.is_fully_known() {
            Some(Bv::from_words(self.width, &self.value))
        } else {
            None
        }
    }

    /// Converts a single-bit cube to a [`Tv`].
    ///
    /// # Panics
    ///
    /// Panics if the width is not 1.
    pub fn to_tv(&self) -> Tv {
        assert_eq!(self.width, 1, "to_tv requires a single-bit cube");
        self.bit(0)
    }

    /// Smallest concrete value in the cube (all `x` bits set to 0).
    pub fn min_value(&self) -> Bv {
        Bv::from_words(self.width, &self.value)
    }

    /// Largest concrete value in the cube (all `x` bits set to 1).
    pub fn max_value(&self) -> Bv {
        let mut out = Bv::zero(self.width);
        for (dst, (v, k)) in out
            .words_mut()
            .iter_mut()
            .zip(self.value.iter().zip(self.known.iter()))
        {
            *dst = v | !k;
        }
        out.normalize();
        out
    }

    /// `true` if the concrete value `v` is a member of the cube.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn matches(&self, v: &Bv) -> bool {
        assert_eq!(self.width, v.width(), "width mismatch");
        self.known
            .iter()
            .zip(self.value.iter())
            .zip(v.words().iter())
            .all(|((k, val), w)| w & k == *val)
    }

    /// `true` if every concrete value of `other` is also in `self`
    /// (i.e. `self`'s known bits are a subset of `other`'s and agree).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn covers(&self, other: &Bv3) -> bool {
        assert_eq!(self.width, other.width, "width mismatch");
        for i in 0..self.known.len() {
            // every bit known in self must be known in other with same value
            if self.known[i] & !other.known[i] != 0 {
                return false;
            }
            if (self.value[i] ^ other.value[i]) & self.known[i] != 0 {
                return false;
            }
        }
        true
    }

    /// Cube intersection: the set of values in both cubes.
    ///
    /// Returns `None` when the cubes are disjoint (conflicting known bits).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn intersect(&self, other: &Bv3) -> Option<Bv3> {
        assert_eq!(self.width, other.width, "width mismatch");
        let mut out = self.clone();
        for i in 0..self.known.len() {
            let both = self.known[i] & other.known[i];
            if (self.value[i] ^ other.value[i]) & both != 0 {
                return None;
            }
            out.known[i] = self.known[i] | other.known[i];
            out.value[i] = self.value[i] | other.value[i];
        }
        out.normalize();
        Some(out)
    }

    /// Cube union (smallest cube containing both): a bit stays known only if
    /// it is known with the same value in both operands.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn union(&self, other: &Bv3) -> Bv3 {
        assert_eq!(self.width, other.width, "width mismatch");
        let mut out = Bv3::all_x(self.width);
        for i in 0..self.known.len() {
            let agree = self.known[i] & other.known[i] & !(self.value[i] ^ other.value[i]);
            out.known[i] = agree;
            out.value[i] = self.value[i] & agree;
        }
        out.normalize();
        out
    }

    /// Merges new information into `self`.
    ///
    /// This is the core operation of word-level implication: the result has
    /// the union of the known bits. Returns `Ok(true)` if any bit became
    /// newly known, `Ok(false)` if nothing changed, and `Err(Conflict)` if a
    /// known bit disagrees.
    pub fn refine(&mut self, other: &Bv3) -> Result<bool, CubeConflict> {
        assert_eq!(self.width, other.width, "width mismatch");
        let mut changed = false;
        for i in 0..self.known.len() {
            let both = self.known[i] & other.known[i];
            if (self.value[i] ^ other.value[i]) & both != 0 {
                return Err(CubeConflict);
            }
            let new_known = self.known[i] | other.known[i];
            if new_known != self.known[i] {
                changed = true;
            }
            self.value[i] |= other.value[i];
            self.known[i] = new_known;
        }
        self.normalize();
        Ok(changed)
    }

    /// Like [`Bv3::refine`], but reports each changed word through
    /// `on_change(word_index, previous_known, previous_value)` *before*
    /// overwriting it — the building block of a delta undo trail that stores
    /// only the words a refinement actually touched instead of a full copy of
    /// the previous cube.
    ///
    /// Runs in two passes so that on a conflict `self` is left unchanged and
    /// nothing is reported.
    pub fn refine_recording(
        &mut self,
        other: &Bv3,
        mut on_change: impl FnMut(usize, u64, u64),
    ) -> Result<bool, CubeConflict> {
        assert_eq!(self.width, other.width, "width mismatch");
        for i in 0..self.known.len() {
            let both = self.known[i] & other.known[i];
            if (self.value[i] ^ other.value[i]) & both != 0 {
                return Err(CubeConflict);
            }
        }
        let mask = last_word_mask(self.width);
        let last = self.known.len() - 1;
        let mut changed = false;
        for i in 0..self.known.len() {
            let word_mask = if i == last { mask } else { u64::MAX };
            let new_known = (self.known[i] | other.known[i]) & word_mask;
            if new_known == self.known[i] {
                continue;
            }
            on_change(i, self.known[i], self.value[i]);
            self.value[i] = (self.value[i] | other.value[i]) & new_known;
            self.known[i] = new_known;
            changed = true;
        }
        Ok(changed)
    }

    /// Number of `u64` words per plane.
    pub fn word_count(&self) -> usize {
        self.known.len()
    }

    /// Restores one word of both planes to previously observed values, as
    /// reported by [`Bv3::refine_recording`]. Low-level trail support: the
    /// caller must pass plane words that were valid for this cube (the
    /// `value & !known == 0` invariant is re-imposed defensively).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn restore_word(&mut self, word: usize, known: u64, value: u64) {
        self.known[word] = known;
        self.value[word] = value & known;
    }

    /// `true` when both planes are stored inline (width ≤ 128 bits).
    pub fn is_inline(&self) -> bool {
        self.known.is_inline() && self.value.is_inline()
    }

    /// In-place cube union: keeps a bit known only when both operands agree
    /// on it. The in-place form of [`Bv3::union`] for scratch buffers.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn union_assign(&mut self, other: &Bv3) {
        assert_eq!(self.width, other.width, "width mismatch");
        for i in 0..self.known.len() {
            let agree = self.known[i] & other.known[i] & !(self.value[i] ^ other.value[i]);
            self.known[i] = agree;
            self.value[i] &= agree;
        }
    }

    /// In-place cube intersection (meet): merges `other`'s known bits into
    /// `self`. Returns `false` (leaving `self` in a partially-merged but
    /// still-invariant state) when the cubes are disjoint. The in-place form
    /// of [`Bv3::intersect`] for scratch buffers.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn intersect_assign(&mut self, other: &Bv3) -> bool {
        assert_eq!(self.width, other.width, "width mismatch");
        for i in 0..self.known.len() {
            let both = self.known[i] & other.known[i];
            if (self.value[i] ^ other.value[i]) & both != 0 {
                return false;
            }
            self.known[i] |= other.known[i];
            self.value[i] |= other.value[i];
        }
        self.normalize();
        true
    }

    /// Bitwise three-valued AND.
    pub fn and3(&self, other: &Bv3) -> Bv3 {
        assert_eq!(self.width, other.width, "width mismatch");
        let mut out = Bv3::all_x(self.width);
        for i in 0..self.known.len() {
            let known_one = self.value[i] & other.value[i];
            let known_zero = (self.known[i] & !self.value[i]) | (other.known[i] & !other.value[i]);
            out.known[i] = known_one | known_zero;
            out.value[i] = known_one;
        }
        out.normalize();
        out
    }

    /// Bitwise three-valued OR.
    pub fn or3(&self, other: &Bv3) -> Bv3 {
        assert_eq!(self.width, other.width, "width mismatch");
        let mut out = Bv3::all_x(self.width);
        for i in 0..self.known.len() {
            let known_one = self.value[i] | other.value[i];
            let known_zero = (self.known[i] & !self.value[i]) & (other.known[i] & !other.value[i]);
            out.known[i] = known_one | known_zero;
            out.value[i] = known_one;
        }
        out.normalize();
        out
    }

    /// Bitwise three-valued XOR.
    pub fn xor3(&self, other: &Bv3) -> Bv3 {
        assert_eq!(self.width, other.width, "width mismatch");
        let mut out = Bv3::all_x(self.width);
        for i in 0..self.known.len() {
            let known = self.known[i] & other.known[i];
            out.known[i] = known;
            out.value[i] = (self.value[i] ^ other.value[i]) & known;
        }
        out.normalize();
        out
    }

    /// Bitwise three-valued NOT.
    pub fn not3(&self) -> Bv3 {
        let mut out = Bv3::all_x(self.width);
        for i in 0..self.known.len() {
            out.known[i] = self.known[i];
            out.value[i] = !self.value[i] & self.known[i];
        }
        out.normalize();
        out
    }

    /// Zero-extends or truncates to a new width. New high bits are known-0.
    pub fn resize(&self, width: usize) -> Bv3 {
        let mut out = Bv3::all_x(width);
        for i in 0..width {
            let t = if i < self.width {
                self.bit(i)
            } else {
                Tv::Zero
            };
            out.set_bit(i, t);
        }
        out
    }

    /// Extracts the bit range `[lo, lo + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the source width.
    pub fn slice(&self, lo: usize, width: usize) -> Bv3 {
        assert!(lo + width <= self.width, "slice out of range");
        let mut out = Bv3::all_x(width);
        for i in 0..width {
            out.set_bit(i, self.bit(lo + i));
        }
        out
    }

    /// Concatenates `self` (high part) with `low` (low part).
    pub fn concat(&self, low: &Bv3) -> Bv3 {
        let mut out = Bv3::all_x(self.width + low.width);
        for i in 0..low.width {
            out.set_bit(i, low.bit(i));
        }
        for i in 0..self.width {
            out.set_bit(low.width + i, self.bit(i));
        }
        out
    }

    /// Number of concrete values represented by the cube, saturating at
    /// `u64::MAX` for cubes with 64 or more unknown bits.
    pub fn cardinality(&self) -> u64 {
        let x = self.count_x();
        if x >= 64 {
            u64::MAX
        } else {
            1u64 << x
        }
    }
}

/// Conflict produced when merging incompatible cubes with [`Bv3::refine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeConflict;

impl fmt::Display for CubeConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conflicting bit-vector cube refinement")
    }
}

impl std::error::Error for CubeConflict {}

impl fmt::Display for Bv3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

impl From<Bv> for Bv3 {
    fn from(v: Bv) -> Self {
        Bv3::from_bv(&v)
    }
}

impl FromStr for Bv3 {
    type Err = ParseBvError;

    /// Parses Verilog-style literals, allowing `x` digits in binary form:
    /// `4'b10xx`, `8'hff`, `8'd42`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (width, base, digits) = split_literal(s)?;
        if base == 'b' {
            let bits: Vec<char> = digits.chars().filter(|c| *c != '_').collect();
            if bits.is_empty() || bits.len() > width {
                return Err(ParseBvError::new(format!(
                    "binary literal `{s}` does not fit width {width}"
                )));
            }
            let mut out = Bv3::all_x(width);
            // Unspecified high bits default to known zero, as in Verilog.
            for i in bits.len()..width {
                out.set_bit(i, Tv::Zero);
            }
            for (i, c) in bits.iter().rev().enumerate() {
                match c.to_ascii_lowercase() {
                    '0' => out.set_bit(i, Tv::Zero),
                    '1' => out.set_bit(i, Tv::One),
                    'x' => out.set_bit(i, Tv::X),
                    other => {
                        return Err(ParseBvError::new(format!(
                            "unexpected character `{other}` in binary literal `{s}`"
                        )))
                    }
                }
            }
            Ok(out)
        } else {
            let bv: Bv = s.parse()?;
            Ok(Bv3::from_bv(&bv))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["4'b10xx", "4'b0000", "1'b1", "8'bxxxxxxxx", "6'b1x0x01"] {
            assert_eq!(cube(s).to_string(), s);
        }
        // Short literals zero-extend.
        assert_eq!(cube("4'b1x").to_string(), "4'b001x");
        // Hex and decimal literals are fully known.
        assert_eq!(cube("8'hff").to_string(), "8'b11111111");
        assert_eq!(cube("4'd5").to_string(), "4'b0101");
    }

    #[test]
    fn min_max_values() {
        let c = cube("4'bx01x");
        assert_eq!(c.min_value().to_u64(), Some(0b0010));
        assert_eq!(c.max_value().to_u64(), Some(0b1011));
        let d = cube("4'b1x0x");
        assert_eq!(d.min_value().to_u64(), Some(8));
        assert_eq!(d.max_value().to_u64(), Some(13));
    }

    #[test]
    fn matches_and_covers() {
        let c = cube("4'b10xx");
        assert!(c.matches(&Bv::from_u64(4, 0b1000)));
        assert!(c.matches(&Bv::from_u64(4, 0b1011)));
        assert!(!c.matches(&Bv::from_u64(4, 0b1100)));
        assert!(cube("4'bxxxx").covers(&c));
        assert!(c.covers(&cube("4'b1001")));
        assert!(!c.covers(&cube("4'b0001")));
        assert!(!cube("4'b1001").covers(&c));
    }

    #[test]
    fn intersect_union() {
        let a = cube("4'b10xx");
        let b = cube("4'bx0x1");
        assert_eq!(a.intersect(&b).unwrap(), cube("4'b10x1"));
        assert!(a.intersect(&cube("4'b01xx")).is_none());
        assert_eq!(a.union(&cube("4'b1100")), cube("4'b1xxx"));
        assert_eq!(a.union(&a), a);
    }

    #[test]
    fn refine_reports_change_and_conflict() {
        let mut a = cube("4'b10xx");
        assert_eq!(a.refine(&cube("4'bxx1x")), Ok(true));
        assert_eq!(a, cube("4'b101x"));
        assert_eq!(a.refine(&cube("4'b1xxx")), Ok(false));
        assert_eq!(a.refine(&cube("4'b0xxx")), Err(CubeConflict));
    }

    #[test]
    fn bitwise_and_example_from_paper() {
        // Section 3.1: a = 4'b10xx, b updated to 4'b1x1x at a 4-bit AND gate
        // with output 4'bx00x forward implies y = 4'b100x.
        let a = cube("4'b10xx");
        let b = cube("4'b1x1x");
        let forward = a.and3(&b);
        assert_eq!(forward, cube("4'b10xx").and3(&cube("4'b1x1x")));
        assert_eq!(forward.bit(3), Tv::One);
        assert_eq!(forward.bit(2), Tv::Zero);
        assert_eq!(forward.bit(1), Tv::X);
        assert_eq!(forward.bit(0), Tv::X);
    }

    #[test]
    fn bitwise_ops_three_valued() {
        let a = cube("3'b10x");
        let b = cube("3'bx1x");
        assert_eq!(a.and3(&b), cube("3'bx0x"));
        assert_eq!(a.or3(&b), cube("3'b11x"));
        assert_eq!(a.xor3(&b), cube("3'bx1x"));
        assert_eq!(a.not3(), cube("3'b01x"));
    }

    #[test]
    fn resize_slice_concat() {
        let c = cube("4'b1x01");
        assert_eq!(c.resize(6), cube("6'b001x01"));
        assert_eq!(c.resize(2), cube("2'b01"));
        assert_eq!(c.slice(1, 2), cube("2'bx0"));
        assert_eq!(cube("2'b1x").concat(&cube("2'b01")), cube("4'b1x01"));
    }

    #[test]
    fn cardinality() {
        assert_eq!(cube("4'b1010").cardinality(), 1);
        assert_eq!(cube("4'b10xx").cardinality(), 4);
        assert_eq!(Bv3::all_x(80).cardinality(), u64::MAX);
    }

    #[test]
    fn wide_cubes() {
        let mut c = Bv3::all_x(152);
        c.set_bit(151, Tv::One);
        c.set_bit(0, Tv::Zero);
        assert_eq!(c.count_known(), 2);
        assert_eq!(c.count_x(), 150);
        assert!(c.max_value().bit(151));
        assert!(!c.min_value().bit(0));
        let conc = c.intersect(&Bv3::from_bv(&Bv::ones(152)));
        assert!(conc.is_none()); // bit 0 conflicts
    }

    #[test]
    fn to_bv_and_tv() {
        assert_eq!(cube("4'b1010").to_bv(), Some(Bv::from_u64(4, 10)));
        assert_eq!(cube("4'b10x0").to_bv(), None);
        assert_eq!(cube("1'b1").to_tv(), Tv::One);
        assert_eq!(Bv3::from_tv(Tv::X).to_tv(), Tv::X);
    }
}
