//! Inline small-vector word storage backing [`crate::Bv`] and [`crate::Bv3`].
//!
//! Word-level implication touches millions of cubes; almost all of them are
//! control nets or narrow buses. Storing the `u64` planes in a `Vec` means a
//! heap allocation per cube construction — on the hot path that dominates the
//! profile. `SmallWords` keeps up to [`INLINE_WORDS`] words inline (covering
//! every net up to 128 bits) and spills to a `Vec<u64>` only for the rare
//! wider buses (the industrial designs carry 152-bit buses).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Number of `u64` words stored inline before spilling to the heap.
pub(crate) const INLINE_WORDS: usize = 2;

/// Word storage: inline for ≤ `INLINE_WORDS` words, heap-spilled beyond.
///
/// Dereferences to `[u64]`, so all word-plane arithmetic is representation
/// agnostic; equality and hashing go through the slice view, making an inline
/// and a (hypothetical) spilled store of the same words indistinguishable.
#[derive(Clone)]
pub(crate) enum SmallWords {
    /// Up to [`INLINE_WORDS`] words stored in the struct itself.
    Inline {
        /// Number of valid words in `words`.
        len: u8,
        /// Inline storage; only `words[..len]` is meaningful.
        words: [u64; INLINE_WORDS],
    },
    /// Heap storage for wide nets (> 128 bits).
    Spilled(Vec<u64>),
}

impl SmallWords {
    /// All-zero storage of `len` words.
    pub(crate) fn zeroed(len: usize) -> Self {
        if len <= INLINE_WORDS {
            SmallWords::Inline {
                len: len as u8,
                words: [0; INLINE_WORDS],
            }
        } else {
            SmallWords::Spilled(vec![0; len])
        }
    }

    /// `true` when the words live inline (no heap allocation).
    pub(crate) fn is_inline(&self) -> bool {
        matches!(self, SmallWords::Inline { .. })
    }
}

impl Deref for SmallWords {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        match self {
            SmallWords::Inline { len, words } => &words[..*len as usize],
            SmallWords::Spilled(v) => v,
        }
    }
}

impl DerefMut for SmallWords {
    fn deref_mut(&mut self) -> &mut [u64] {
        match self {
            SmallWords::Inline { len, words } => &mut words[..*len as usize],
            SmallWords::Spilled(v) => v,
        }
    }
}

impl PartialEq for SmallWords {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for SmallWords {}

impl Hash for SmallWords {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl fmt::Debug for SmallWords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_spilled_thresholds() {
        assert!(SmallWords::zeroed(1).is_inline());
        assert!(SmallWords::zeroed(2).is_inline());
        assert!(!SmallWords::zeroed(3).is_inline());
        assert_eq!(SmallWords::zeroed(2).len(), 2);
        assert_eq!(SmallWords::zeroed(5).len(), 5);
    }

    #[test]
    fn equality_and_hash_are_representation_agnostic() {
        use std::collections::hash_map::DefaultHasher;
        let mut a = SmallWords::zeroed(2);
        a[0] = 7;
        let mut b = SmallWords::Spilled(vec![0, 0]);
        b[0] = 7;
        assert_eq!(a, b);
        let hash = |w: &SmallWords| {
            let mut h = DefaultHasher::new();
            w.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}
