//! Error types for the bit-vector domain.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a Verilog-style bit-vector literal fails.
///
/// # Examples
///
/// ```
/// use wlac_bv::Bv3;
///
/// let err = "4'b10201".parse::<Bv3>().unwrap_err();
/// assert!(err.to_string().contains("invalid"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBvError {
    message: String,
}

impl ParseBvError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseBvError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseBvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bit-vector literal: {}", self.message)
    }
}

impl Error for ParseBvError {}

/// Error returned by operations on bit-vectors of mismatched widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthMismatchError {
    /// Width of the left-hand operand.
    pub left: usize,
    /// Width of the right-hand operand.
    pub right: usize,
}

impl fmt::Display for WidthMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit-vector width mismatch: {} vs {}",
            self.left, self.right
        )
    }
}

impl Error for WidthMismatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ParseBvError::new("bad digit");
        assert_eq!(e.to_string(), "invalid bit-vector literal: bad digit");
        let w = WidthMismatchError { left: 4, right: 8 };
        assert_eq!(w.to_string(), "bit-vector width mismatch: 4 vs 8");
    }
}
