//! Range reasoning over cubes.
//!
//! The paper's comparator implication (Fig. 4) translates a cube into a
//! `[min, max]` interval, tightens the interval using the comparator's output
//! value, and maps the tightened interval back to three-valued logic using
//! two rules:
//!
//! * **Rule 1** — only `x` bits may receive new Boolean implications, and
//! * **Rule 2** — more significant bits must be implied before less
//!   significant ones, because only the most significant `x` bit splits the
//!   cube's range into two *disjoint* sub-ranges.
//!
//! [`refine_to_range`] implements exactly that MSB-first procedure.

use crate::{Bv, Bv3, Tv};
use std::error::Error;
use std::fmt;

/// The `[min, max]` interval spanned by a cube (all `x` set to 0 / to 1).
///
/// # Examples
///
/// ```
/// use wlac_bv::{range::range_of, Bv3};
///
/// # fn main() -> Result<(), wlac_bv::ParseBvError> {
/// let (lo, hi) = range_of(&"4'bx01x".parse::<Bv3>()?);
/// assert_eq!(lo.to_u64(), Some(2));
/// assert_eq!(hi.to_u64(), Some(11));
/// # Ok(())
/// # }
/// ```
pub fn range_of(cube: &Bv3) -> (Bv, Bv) {
    (cube.min_value(), cube.max_value())
}

/// Error returned when a cube cannot be tightened into a target interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyRangeError;

impl fmt::Display for EmptyRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cube has no value inside the required range")
    }
}

impl Error for EmptyRangeError {}

/// Tightens `cube` so that its interval fits inside `[lo, hi]`, implying bits
/// most-significant-first (the paper's Rules 1 and 2).
///
/// Starting from the most significant unknown bit, each branch (`0`/`1`) of
/// the bit is kept only if its sub-cube interval intersects `[lo, hi]`. When
/// exactly one branch survives the bit becomes known; when both survive the
/// procedure stops (no further bit can be soundly implied from interval
/// information alone); when neither survives the requirement is
/// unsatisfiable.
///
/// Bits already known are left untouched (Rule 1).
///
/// # Errors
///
/// Returns [`EmptyRangeError`] when no value of the cube can lie in
/// `[lo, hi]` (detected through interval reasoning).
///
/// # Examples
///
/// The worked example of Fig. 4: `in_b = 4'b1x0x` tightened to `[8, 10]`
/// becomes `4'b100x`.
///
/// ```
/// use wlac_bv::{range::refine_to_range, Bv, Bv3};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cube: Bv3 = "4'b1x0x".parse()?;
/// let tightened = refine_to_range(&cube, &Bv::from_u64(4, 8), &Bv::from_u64(4, 10))?;
/// assert_eq!(tightened.to_string(), "4'b100x");
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if the widths of `cube`, `lo` and `hi` differ.
pub fn refine_to_range(cube: &Bv3, lo: &Bv, hi: &Bv) -> Result<Bv3, EmptyRangeError> {
    let mut out = cube.clone();
    refine_to_range_in_place(&mut out, lo, hi)?;
    Ok(out)
}

/// In-place form of [`refine_to_range`]: tightens `cube` directly, so hot
/// paths can reuse a scratch cube instead of constructing a new one. On error
/// the cube may hold a partially tightened (but still sound) value.
///
/// # Errors
///
/// Returns [`EmptyRangeError`] when no value of the cube can lie in
/// `[lo, hi]`.
///
/// # Panics
///
/// Panics if the widths of `cube`, `lo` and `hi` differ.
pub fn refine_to_range_in_place(cube: &mut Bv3, lo: &Bv, hi: &Bv) -> Result<(), EmptyRangeError> {
    assert_eq!(cube.width(), lo.width(), "width mismatch");
    assert_eq!(cube.width(), hi.width(), "width mismatch");
    if lo > hi {
        return Err(EmptyRangeError);
    }
    // Overall feasibility check first.
    if !intervals_overlap(&cube.min_value(), &cube.max_value(), lo, hi) {
        return Err(EmptyRangeError);
    }
    for i in (0..cube.width()).rev() {
        if cube.bit(i) != Tv::X {
            continue;
        }
        cube.set_bit(i, Tv::Zero);
        let zero_ok = intervals_overlap(&cube.min_value(), &cube.max_value(), lo, hi);
        cube.set_bit(i, Tv::One);
        let one_ok = intervals_overlap(&cube.min_value(), &cube.max_value(), lo, hi);
        match (zero_ok, one_ok) {
            (true, true) => {
                // Rule 2: stop at the first ambiguous bit.
                cube.set_bit(i, Tv::X);
                break;
            }
            (true, false) => cube.set_bit(i, Tv::Zero),
            (false, true) => {} // already set to One
            (false, false) => return Err(EmptyRangeError),
        }
    }
    Ok(())
}

/// `true` when `[a_lo, a_hi]` and `[b_lo, b_hi]` intersect.
fn intervals_overlap(a_lo: &Bv, a_hi: &Bv, b_lo: &Bv, b_hi: &Bv) -> bool {
    a_lo <= b_hi && b_lo <= a_hi
}

/// Saturating decrement: `v - 1`, or zero if `v` is zero.
pub fn saturating_dec(v: &Bv) -> Bv {
    if v.is_zero() {
        v.clone()
    } else {
        v.sub(&Bv::from_u64(v.width(), 1))
    }
}

/// Saturating increment: `v + 1`, or all-ones if `v` is already all-ones.
pub fn saturating_inc(v: &Bv) -> Bv {
    if *v == Bv::ones(v.width()) {
        v.clone()
    } else {
        v.add(&Bv::from_u64(v.width(), 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    fn bv(w: usize, v: u64) -> Bv {
        Bv::from_u64(w, v)
    }

    #[test]
    fn fig4_in_a_side() {
        // in_a = 4'bx01x tightened to [9, 11] becomes 4'b101x (MSB implied 1).
        let refined = refine_to_range(&cube("4'bx01x"), &bv(4, 9), &bv(4, 11)).unwrap();
        assert_eq!(refined.to_string(), "4'b101x");
    }

    #[test]
    fn fig4_in_b_side() {
        // in_b = 4'b1x0x tightened to [8, 10] becomes 4'b100x.
        let refined = refine_to_range(&cube("4'b1x0x"), &bv(4, 8), &bv(4, 10)).unwrap();
        assert_eq!(refined.to_string(), "4'b100x");
    }

    #[test]
    fn ambiguous_bit_stops_implication() {
        // [8, 13] keeps both sub-ranges of the second-highest bit when the
        // target range covers them both, so nothing can be implied.
        let refined = refine_to_range(&cube("4'b1x0x"), &bv(4, 8), &bv(4, 13)).unwrap();
        assert_eq!(refined.to_string(), "4'b1x0x");
    }

    #[test]
    fn least_significant_bit_not_implied_from_overlapping_ranges() {
        // Target [8, 12]: bit 0 splits into overlapping ranges so it must
        // stay x even though 13 is excluded.
        let refined = refine_to_range(&cube("4'b1x0x"), &bv(4, 8), &bv(4, 12)).unwrap();
        assert_eq!(refined.to_string(), "4'b1x0x");
    }

    #[test]
    fn empty_range_is_conflict() {
        assert_eq!(
            refine_to_range(&cube("4'b11xx"), &bv(4, 0), &bv(4, 3)),
            Err(EmptyRangeError)
        );
        // lo > hi is immediately empty.
        assert_eq!(
            refine_to_range(&cube("4'bxxxx"), &bv(4, 5), &bv(4, 2)),
            Err(EmptyRangeError)
        );
    }

    #[test]
    fn fully_known_cube_inside_range_is_unchanged() {
        let c = cube("4'b0110");
        assert_eq!(refine_to_range(&c, &bv(4, 0), &bv(4, 15)).unwrap(), c);
        assert_eq!(
            refine_to_range(&c, &bv(4, 7), &bv(4, 15)),
            Err(EmptyRangeError)
        );
    }

    #[test]
    fn range_of_extremes() {
        let (lo, hi) = range_of(&cube("4'bxxxx"));
        assert_eq!(lo.to_u64(), Some(0));
        assert_eq!(hi.to_u64(), Some(15));
        let (lo, hi) = range_of(&cube("4'b0101"));
        assert_eq!(lo, hi);
    }

    #[test]
    fn saturating_helpers() {
        assert_eq!(saturating_dec(&bv(4, 0)).to_u64(), Some(0));
        assert_eq!(saturating_dec(&bv(4, 7)).to_u64(), Some(6));
        assert_eq!(saturating_inc(&bv(4, 15)).to_u64(), Some(15));
        assert_eq!(saturating_inc(&bv(4, 7)).to_u64(), Some(8));
    }

    #[test]
    fn refinement_never_loses_known_bits() {
        let c = cube("6'b1x0x1x");
        let refined = refine_to_range(&c, &bv(6, 0), &bv(6, 63)).unwrap();
        assert!(c.covers(&refined));
    }

    #[test]
    fn wide_cube_refinement() {
        let mut c = Bv3::all_x(100);
        c.set_bit(99, Tv::X);
        let lo = Bv::zero(100);
        let hi = Bv::ones(100).shr(1); // MSB must be zero
        let refined = refine_to_range(&c, &lo, &hi).unwrap();
        assert_eq!(refined.bit(99), Tv::Zero);
    }
}
