//! Three-valued word-level arithmetic.
//!
//! These functions implement the "3-valued forward and backward simulation"
//! that the paper performs on arithmetic units (Section 3.1): addition and
//! subtraction propagate per-bit knowledge through a three-valued ripple
//! carry/borrow chain, multiplication propagates what can be deduced from the
//! known low-order bits, and the comparison helpers evaluate relational
//! operators over cube ranges.

use crate::tv::{full_add, full_sub};
use crate::{Bv, Bv3, Tv};

/// Three-valued addition: returns `(sum, carry_out)`.
///
/// Every bit of the sum is known as soon as the corresponding operand bits
/// and incoming carry are known; the carry chain itself propagates partial
/// knowledge (two known ones force a carry, two known zeros kill it).
///
/// # Panics
///
/// Panics if the operand widths differ.
///
/// # Examples
///
/// ```
/// use wlac_bv::{arith::add3, Bv3, Tv};
///
/// # fn main() -> Result<(), wlac_bv::ParseBvError> {
/// let (sum, carry) = add3(&"4'b0011".parse()?, &"4'b0001".parse()?);
/// assert_eq!(sum.to_string(), "4'b0100");
/// assert_eq!(carry, Tv::Zero);
/// # Ok(())
/// # }
/// ```
pub fn add3(a: &Bv3, b: &Bv3) -> (Bv3, Tv) {
    add3_with_carry(a, b, Tv::Zero)
}

/// Three-valued addition with an explicit carry-in.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn add3_with_carry(a: &Bv3, b: &Bv3, carry_in: Tv) -> (Bv3, Tv) {
    let mut out = Bv3::all_x(a.width());
    let carry = add3_into(a, b, carry_in, &mut out);
    (out, carry)
}

/// Three-valued addition written into a caller-provided scratch cube;
/// returns the carry-out. The in-place form of [`add3_with_carry`] used by
/// the implication hot path to avoid constructing fresh cubes.
///
/// # Panics
///
/// Panics if the widths of `a`, `b` and `out` differ.
pub fn add3_into(a: &Bv3, b: &Bv3, carry_in: Tv, out: &mut Bv3) -> Tv {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.width(), out.width(), "width mismatch");
    let mut carry = carry_in;
    for i in 0..a.width() {
        let (s, c) = full_add(a.bit(i), b.bit(i), carry);
        out.set_bit(i, s);
        carry = c;
    }
    carry
}

/// Three-valued subtraction `a - b`: returns `(difference, borrow_out)`.
///
/// This is the operation behind the paper's adder *backward* implication
/// (Fig. 3): knowing an adder's output and one input, the other input is
/// `output - input`, and the final borrow equals the adder's carry-out.
///
/// # Panics
///
/// Panics if the operand widths differ.
///
/// # Examples
///
/// ```
/// use wlac_bv::{arith::sub3, Bv3, Tv};
///
/// # fn main() -> Result<(), wlac_bv::ParseBvError> {
/// let (diff, borrow) = sub3(&"4'b0111".parse()?, &"4'b1x1x".parse()?);
/// assert_eq!(diff.to_string(), "4'b1x0x");
/// assert_eq!(borrow, Tv::One);
/// # Ok(())
/// # }
/// ```
pub fn sub3(a: &Bv3, b: &Bv3) -> (Bv3, Tv) {
    let mut out = Bv3::all_x(a.width());
    let borrow = sub3_into(a, b, &mut out);
    (out, borrow)
}

/// Three-valued subtraction written into a caller-provided scratch cube;
/// returns the borrow-out. The in-place form of [`sub3`].
///
/// # Panics
///
/// Panics if the widths of `a`, `b` and `out` differ.
pub fn sub3_into(a: &Bv3, b: &Bv3, out: &mut Bv3) -> Tv {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.width(), out.width(), "width mismatch");
    let mut borrow = Tv::Zero;
    for i in 0..a.width() {
        let (d, bo) = full_sub(a.bit(i), b.bit(i), borrow);
        out.set_bit(i, d);
        borrow = bo;
    }
    borrow
}

/// Three-valued negation (two's complement).
pub fn neg3(a: &Bv3) -> Bv3 {
    let zero = Bv3::from_bv(&Bv::zero(a.width()));
    sub3(&zero, a).0
}

/// Three-valued multiplication (forward propagation only).
///
/// * If both operands are fully known the exact modular product is returned.
/// * If either operand is known to be zero the result is zero.
/// * Otherwise the low-order bits that are determined by the known low-order
///   bits of both operands are propagated (the product modulo `2^L` depends
///   only on the operands modulo `2^L`), and known trailing zeros of the two
///   operands accumulate.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn mul3(a: &Bv3, b: &Bv3) -> Bv3 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    let width = a.width();
    if let (Some(av), Some(bv)) = (a.to_bv(), b.to_bv()) {
        return Bv3::from_bv(&av.mul(&bv));
    }
    let zero = Bv::zero(width);
    if a.to_bv().map(|v| v.is_zero()).unwrap_or(false)
        || b.to_bv().map(|v| v.is_zero()).unwrap_or(false)
    {
        return Bv3::from_bv(&zero);
    }
    let mut out = Bv3::all_x(width);
    // Low bits determined by known low bits of both operands.
    let low = known_prefix(a).min(known_prefix(b));
    if low > 0 {
        let prod = a.min_value().mul(&b.min_value());
        for i in 0..low {
            out.set_bit(i, Tv::from_bool(prod.bit(i)));
        }
    }
    // Known trailing zeros accumulate: a = a'·2^k, b = b'·2^m ⇒ ab ≡ 0 (mod 2^{k+m}).
    let tz = known_trailing_zeros(a) + known_trailing_zeros(b);
    for i in 0..tz.min(width) {
        out.set_bit(i, Tv::Zero);
    }
    out
}

/// Number of consecutive known bits starting at the LSB.
fn known_prefix(a: &Bv3) -> usize {
    (0..a.width()).take_while(|i| a.bit(*i).is_known()).count()
}

/// Number of consecutive known-zero bits starting at the LSB.
fn known_trailing_zeros(a: &Bv3) -> usize {
    (0..a.width()).take_while(|i| a.bit(*i) == Tv::Zero).count()
}

/// Three-valued logical shift left by a concrete amount.
pub fn shl3(a: &Bv3, amount: usize) -> Bv3 {
    let width = a.width();
    let mut out = Bv3::all_x(width);
    for i in 0..width {
        let t = if i < amount {
            Tv::Zero
        } else {
            a.bit(i - amount)
        };
        out.set_bit(i, t);
    }
    out
}

/// Three-valued logical shift right by a concrete amount.
pub fn shr3(a: &Bv3, amount: usize) -> Bv3 {
    let width = a.width();
    let mut out = Bv3::all_x(width);
    for i in 0..width {
        let t = if i + amount < width {
            a.bit(i + amount)
        } else {
            Tv::Zero
        };
        out.set_bit(i, t);
    }
    out
}

/// Maximum number of candidate shift amounts enumerated when the amount is a
/// partially-known cube.
const MAX_SHIFT_ENUM: u64 = 16;

/// Three-valued shift by a (possibly unknown) cube amount.
///
/// If the amount is fully known the exact shift is returned; if only a few
/// amounts are possible their shifted results are cube-unioned; otherwise the
/// result is fully unknown.
pub fn shift3_var(a: &Bv3, amount: &Bv3, left: bool) -> Bv3 {
    if let Some(amt) = amount.to_bv() {
        let amt = amt.to_u64().unwrap_or(u64::MAX).min(a.width() as u64) as usize;
        return if left { shl3(a, amt) } else { shr3(a, amt) };
    }
    if amount.cardinality() <= MAX_SHIFT_ENUM {
        let mut acc: Option<Bv3> = None;
        let lo = amount.min_value().to_u64().unwrap_or(0);
        let hi = amount.max_value().to_u64().unwrap_or(u64::MAX);
        for v in lo..=hi.min(lo + MAX_SHIFT_ENUM) {
            let candidate = Bv::from_u64(amount.width(), v);
            if !amount.matches(&candidate) {
                continue;
            }
            let amt = (v as usize).min(a.width());
            let shifted = if left { shl3(a, amt) } else { shr3(a, amt) };
            acc = Some(match acc {
                None => shifted,
                Some(prev) => prev.union(&shifted),
            });
        }
        return acc.unwrap_or_else(|| Bv3::all_x(a.width()));
    }
    Bv3::all_x(a.width())
}

/// Three-valued equality comparison.
///
/// Returns `One` when both cubes are the same concrete value, `Zero` when the
/// cubes are disjoint, `X` otherwise.
///
/// # Panics
///
/// Panics if widths differ.
pub fn eq3(a: &Bv3, b: &Bv3) -> Tv {
    assert_eq!(a.width(), b.width(), "width mismatch");
    if a.intersect(b).is_none() {
        return Tv::Zero;
    }
    match (a.to_bv(), b.to_bv()) {
        (Some(x), Some(y)) if x == y => Tv::One,
        _ => Tv::X,
    }
}

/// Three-valued disequality comparison.
pub fn ne3(a: &Bv3, b: &Bv3) -> Tv {
    !eq3(a, b)
}

/// Three-valued unsigned `a < b` using interval reasoning.
///
/// # Panics
///
/// Panics if widths differ.
pub fn lt3(a: &Bv3, b: &Bv3) -> Tv {
    assert_eq!(a.width(), b.width(), "width mismatch");
    if a.max_value() < b.min_value() {
        Tv::One
    } else if a.min_value() >= b.max_value() {
        Tv::Zero
    } else {
        Tv::X
    }
}

/// Three-valued unsigned `a <= b` using interval reasoning.
pub fn le3(a: &Bv3, b: &Bv3) -> Tv {
    assert_eq!(a.width(), b.width(), "width mismatch");
    if a.max_value() <= b.min_value() {
        Tv::One
    } else if a.min_value() > b.max_value() {
        Tv::Zero
    } else {
        Tv::X
    }
}

/// Three-valued unsigned `a > b`.
pub fn gt3(a: &Bv3, b: &Bv3) -> Tv {
    lt3(b, a)
}

/// Three-valued unsigned `a >= b`.
pub fn ge3(a: &Bv3, b: &Bv3) -> Tv {
    le3(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    #[test]
    fn add_concrete() {
        let (s, c) = add3(&cube("4'b1001"), &cube("4'b1011"));
        assert_eq!(s.to_string(), "4'b0100");
        assert_eq!(c, Tv::One);
        let (s, c) = add3(&cube("4'b0001"), &cube("4'b0010"));
        assert_eq!(s.to_string(), "4'b0011");
        assert_eq!(c, Tv::Zero);
    }

    #[test]
    fn add_partial_knowledge() {
        // Low bit known in both → low bit of sum known even with unknown highs.
        let (s, _) = add3(&cube("4'bxxx0"), &cube("4'bxxx1"));
        assert_eq!(s.bit(0), Tv::One);
        assert_eq!(s.bit(1), Tv::X);
        // Unknown carry poisons higher bits.
        let (s, _) = add3(&cube("4'bxx1x"), &cube("4'bxx1x"));
        assert_eq!(s.bit(0), Tv::X);
    }

    #[test]
    fn fig3_adder_backward_implication() {
        // out = 4'b0111, one input = 4'b1x1x ⇒ other input = 4'b1x0x,
        // carry-out (borrow of the subtraction) = 1.
        let (other, borrow) = sub3(&cube("4'b0111"), &cube("4'b1x1x"));
        assert_eq!(other.to_string(), "4'b1x0x");
        assert_eq!(borrow, Tv::One);
    }

    #[test]
    fn sub_concrete_matches_modular() {
        let (d, borrow) = sub3(&cube("4'b0011"), &cube("4'b0101"));
        assert_eq!(
            d.to_bv().unwrap().to_u64(),
            Some((3u64.wrapping_sub(5)) & 0xf)
        );
        assert_eq!(borrow, Tv::One);
    }

    #[test]
    fn neg_is_twos_complement() {
        assert_eq!(neg3(&cube("4'b0001")).to_string(), "4'b1111");
        assert_eq!(neg3(&cube("4'b0000")).to_string(), "4'b0000");
        // Unknown bits stay (partially) unknown.
        assert_eq!(neg3(&cube("4'b000x")).bit(0), Tv::X);
    }

    #[test]
    fn mul_concrete_and_zero() {
        assert_eq!(
            mul3(&cube("4'b0100"), &cube("4'b0111")).to_string(),
            "4'b1100" // 4*7 = 28 ≡ 12 (mod 16)
        );
        assert_eq!(
            mul3(&cube("4'b0000"), &cube("4'bxxxx")).to_string(),
            "4'b0000"
        );
    }

    #[test]
    fn mul_partial_low_bits() {
        // Both operands have known low two bits (01 and 11): product low two
        // bits are 11 regardless of the unknown high bits.
        let p = mul3(&cube("4'bxx01"), &cube("4'bxx11"));
        assert_eq!(p.bit(0), Tv::One);
        assert_eq!(p.bit(1), Tv::One);
        assert_eq!(p.bit(3), Tv::X);
        // Trailing zeros accumulate: xx10 * x100 has at least 3 trailing zeros.
        let p = mul3(&cube("4'bxx10"), &cube("4'bx100"));
        assert_eq!(p.bit(0), Tv::Zero);
        assert_eq!(p.bit(1), Tv::Zero);
        assert_eq!(p.bit(2), Tv::Zero);
    }

    #[test]
    fn shifts_concrete_amounts() {
        assert_eq!(shl3(&cube("4'b1x01"), 1).to_string(), "4'bx010");
        assert_eq!(shr3(&cube("4'b1x01"), 2).to_string(), "4'b001x");
        assert_eq!(shl3(&cube("4'b1111"), 4).to_string(), "4'b0000");
    }

    #[test]
    fn variable_shift_enumerates_small_cubes() {
        // amount = 2'b0x ∈ {0, 1}: result is the union of both shifts.
        let out = shift3_var(&cube("4'b0011"), &cube("2'b0x"), true);
        // shl 0 = 0011, shl 1 = 0110 → union = 0x1x
        assert_eq!(out.to_string(), "4'b0x1x");
        // Fully unknown wide amount gives all-x.
        let out = shift3_var(&cube("8'b00000011"), &Bv3::all_x(8), true);
        assert!(out.is_all_x());
    }

    #[test]
    fn comparisons_on_ranges() {
        assert_eq!(lt3(&cube("4'b00xx"), &cube("4'b1xxx")), Tv::One);
        assert_eq!(lt3(&cube("4'b1xxx"), &cube("4'b00xx")), Tv::Zero);
        assert_eq!(lt3(&cube("4'bxxxx"), &cube("4'bxxxx")), Tv::X);
        assert_eq!(gt3(&cube("4'b1xxx"), &cube("4'b00xx")), Tv::One);
        assert_eq!(le3(&cube("4'b0011"), &cube("4'b0011")), Tv::One);
        assert_eq!(ge3(&cube("4'b0011"), &cube("4'b0100")), Tv::Zero);
    }

    #[test]
    fn equality_on_cubes() {
        assert_eq!(eq3(&cube("4'b1010"), &cube("4'b1010")), Tv::One);
        assert_eq!(eq3(&cube("4'b10xx"), &cube("4'b01xx")), Tv::Zero);
        assert_eq!(eq3(&cube("4'b10xx"), &cube("4'b10xx")), Tv::X);
        assert_eq!(ne3(&cube("4'b10xx"), &cube("4'b01xx")), Tv::One);
    }

    #[test]
    fn addition_soundness_on_samples() {
        // For every concrete pair consistent with the cubes, the concrete sum
        // must be covered by the three-valued sum.
        let a = cube("4'b1x0x");
        let b = cube("4'bx01x");
        let (sum, carry) = add3(&a, &b);
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let abv = Bv::from_u64(4, av);
                let bbv = Bv::from_u64(4, bv);
                if a.matches(&abv) && b.matches(&bbv) {
                    let s = abv.add(&bbv);
                    assert!(sum.matches(&s), "sum cube must cover {av}+{bv}");
                    let real_carry = av + bv >= 16;
                    if carry.is_known() {
                        assert_eq!(carry, Tv::from_bool(real_carry));
                    }
                }
            }
        }
    }
}
