//! Concrete fixed-width bit-vectors of arbitrary width.

use crate::error::ParseBvError;
use crate::small::SmallWords;
use crate::{last_word_mask, words_for, WORD_BITS};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A concrete, unsigned, fixed-width bit-vector.
///
/// `Bv` models the value of a hardware signal: `width` bits stored
/// little-endian in `u64` words. All arithmetic wraps modulo `2^width`, which
/// is exactly the modular number system the paper's constraint solver is
/// built on.
///
/// Widths may exceed 64 bits (the industrial designs in the paper carry
/// 152-bit buses); values that fit in a `u64` can be extracted with
/// [`Bv::to_u64`]. Values up to 128 bits are stored inline (no heap
/// allocation); wider values spill to a heap buffer.
///
/// # Examples
///
/// ```
/// use wlac_bv::Bv;
///
/// let a = Bv::from_u64(4, 9);
/// let b = Bv::from_u64(4, 11);
/// assert_eq!(a.add(&b).to_u64(), Some(4)); // 20 mod 16
/// assert!(a < b);
/// assert_eq!(a.to_string(), "4'b1001");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bv {
    width: usize,
    words: SmallWords,
}

impl Bv {
    /// Creates an all-zero bit-vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zero(width: usize) -> Self {
        assert!(width > 0, "bit-vector width must be positive");
        Bv {
            width,
            words: SmallWords::zeroed(words_for(width)),
        }
    }

    /// Creates an all-ones bit-vector of the given width.
    pub fn ones(width: usize) -> Self {
        let mut v = Bv::zero(width);
        for w in v.words.iter_mut() {
            *w = u64::MAX;
        }
        v.normalize();
        v
    }

    /// Creates a bit-vector of the given width holding `value % 2^width`.
    pub fn from_u64(width: usize, value: u64) -> Self {
        let mut v = Bv::zero(width);
        v.words[0] = value;
        v.normalize();
        v
    }

    /// Creates a bit-vector from little-endian `u64` words, truncating or
    /// zero-extending to `width`.
    pub fn from_words(width: usize, words: &[u64]) -> Self {
        let mut v = Bv::zero(width);
        for (dst, src) in v.words.iter_mut().zip(words.iter()) {
            *dst = *src;
        }
        v.normalize();
        v
    }

    /// Creates a single-bit vector from a `bool`.
    pub fn from_bool(b: bool) -> Self {
        Bv::from_u64(1, b as u64)
    }

    pub(crate) fn normalize(&mut self) {
        let n = self.words.len();
        self.words[n - 1] &= last_word_mask(self.width);
    }

    /// Mutable view of the underlying words (crate-internal: callers must
    /// re-[`normalize`](Bv::normalize) after writing the last word).
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// `true` when the words are stored inline (width ≤ 128 bits).
    pub fn is_inline(&self) -> bool {
        self.words.is_inline()
    }

    /// The width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The underlying little-endian words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value of bit `i` (`i == 0` is the least significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.width, "bit index {i} out of range");
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn with_bit(&self, i: usize, b: bool) -> Self {
        assert!(i < self.width, "bit index {i} out of range");
        let mut v = self.clone();
        let mask = 1u64 << (i % WORD_BITS);
        if b {
            v.words[i / WORD_BITS] |= mask;
        } else {
            v.words[i / WORD_BITS] &= !mask;
        }
        v
    }

    /// Returns the value as `u64` if it fits, `None` otherwise.
    pub fn to_u64(&self) -> Option<u64> {
        if self.words[1..].iter().any(|w| *w != 0) {
            None
        } else {
            Some(self.words[0])
        }
    }

    /// Returns `true` if all bits are zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of trailing zero bits (equals `width` when the value is zero).
    pub fn trailing_zeros(&self) -> usize {
        let mut total = 0;
        for w in self.words.iter() {
            if *w == 0 {
                total += WORD_BITS;
            } else {
                total += w.trailing_zeros() as usize;
                return total.min(self.width);
            }
        }
        self.width
    }

    /// Wrapping addition modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add(&self, rhs: &Bv) -> Bv {
        self.check_width(rhs);
        let mut out = Bv::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.words.len() {
            let sum = self.words[i] as u128 + rhs.words[i] as u128 + carry as u128;
            out.words[i] = sum as u64;
            carry = (sum >> 64) as u64;
        }
        out.normalize();
        out
    }

    /// Wrapping subtraction modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn sub(&self, rhs: &Bv) -> Bv {
        self.check_width(rhs);
        self.add(&rhs.neg())
    }

    /// Two's-complement negation modulo `2^width`.
    pub fn neg(&self) -> Bv {
        let mut out = self.not();
        let one = Bv::from_u64(self.width, 1);
        out = out.add(&one);
        out
    }

    /// Wrapping multiplication modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mul(&self, rhs: &Bv) -> Bv {
        self.check_width(rhs);
        let n = self.words.len();
        let mut out = Bv::zero(self.width);
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let idx = i + j;
                let prod =
                    self.words[i] as u128 * rhs.words[j] as u128 + out.words[idx] as u128 + carry;
                out.words[idx] = prod as u64;
                carry = prod >> 64;
            }
        }
        out.normalize();
        out
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn and(&self, rhs: &Bv) -> Bv {
        self.check_width(rhs);
        self.zip(rhs, |a, b| a & b)
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn or(&self, rhs: &Bv) -> Bv {
        self.check_width(rhs);
        self.zip(rhs, |a, b| a | b)
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn xor(&self, rhs: &Bv) -> Bv {
        self.check_width(rhs);
        self.zip(rhs, |a, b| a ^ b)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bv {
        let mut out = Bv::zero(self.width);
        for (dst, src) in out.words.iter_mut().zip(self.words.iter()) {
            *dst = !src;
        }
        out.normalize();
        out
    }

    /// Logical shift left by `amount` bits (zero fill), truncating at `width`.
    pub fn shl(&self, amount: usize) -> Bv {
        let mut out = Bv::zero(self.width);
        if amount >= self.width {
            return out;
        }
        let word_shift = amount / WORD_BITS;
        let bit_shift = amount % WORD_BITS;
        for i in (0..self.words.len()).rev() {
            if i < word_shift {
                continue;
            }
            let mut w = self.words[i - word_shift] << bit_shift;
            if bit_shift > 0 && i > word_shift {
                w |= self.words[i - word_shift - 1] >> (WORD_BITS - bit_shift);
            }
            out.words[i] = w;
        }
        out.normalize();
        out
    }

    /// Logical shift right by `amount` bits (zero fill).
    pub fn shr(&self, amount: usize) -> Bv {
        let mut out = Bv::zero(self.width);
        if amount >= self.width {
            return out;
        }
        let word_shift = amount / WORD_BITS;
        let bit_shift = amount % WORD_BITS;
        let n = self.words.len();
        for i in 0..n {
            if i + word_shift >= n {
                break;
            }
            let mut w = self.words[i + word_shift] >> bit_shift;
            if bit_shift > 0 && i + word_shift + 1 < n {
                w |= self.words[i + word_shift + 1] << (WORD_BITS - bit_shift);
            }
            out.words[i] = w;
        }
        out.normalize();
        out
    }

    /// Zero-extends or truncates to a new width.
    pub fn resize(&self, width: usize) -> Bv {
        let mut out = Bv::zero(width);
        for (dst, src) in out.words.iter_mut().zip(self.words.iter()) {
            *dst = *src;
        }
        out.normalize();
        out
    }

    /// Extracts the bit range `[lo, lo + width)` as a new bit-vector.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the source width.
    pub fn slice(&self, lo: usize, width: usize) -> Bv {
        assert!(lo + width <= self.width, "slice out of range");
        let shifted = self.shr(lo);
        shifted.resize(width)
    }

    /// Concatenates `self` (high part) with `low` (low part).
    pub fn concat(&self, low: &Bv) -> Bv {
        let width = self.width + low.width;
        let high = self.resize(width).shl(low.width);
        high.or(&low.resize(width))
    }

    fn zip(&self, rhs: &Bv, f: impl Fn(u64, u64) -> u64) -> Bv {
        let mut out = Bv::zero(self.width);
        for i in 0..self.words.len() {
            out.words[i] = f(self.words[i], rhs.words[i]);
        }
        out.normalize();
        out
    }

    fn check_width(&self, rhs: &Bv) {
        assert_eq!(
            self.width, rhs.width,
            "bit-vector width mismatch: {} vs {}",
            self.width, rhs.width
        );
    }
}

impl PartialOrd for Bv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bv {
    /// Unsigned comparison. Vectors of different widths are compared by value
    /// (the shorter one is implicitly zero-extended).
    fn cmp(&self, other: &Self) -> Ordering {
        let n = self.words.len().max(other.words.len());
        for i in (0..n).rev() {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h", self.width)?;
        let nibbles = self.width.div_ceil(4);
        for i in (0..nibbles).rev() {
            let mut nib = 0u8;
            for b in 0..4 {
                let idx = i * 4 + b;
                if idx < self.width && self.bit(idx) {
                    nib |= 1 << b;
                }
            }
            write!(f, "{:x}", nib)?;
        }
        Ok(())
    }
}

impl FromStr for Bv {
    type Err = ParseBvError;

    /// Parses Verilog-style literals: `4'b1010`, `8'hff`, `12'd100`, or a
    /// plain decimal number (width inferred as the minimum required, at least
    /// one bit).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (width, base, digits) = split_literal(s)?;
        let mut value;
        match base {
            'b' => {
                let bits: Vec<char> = digits.chars().filter(|c| *c != '_').collect();
                if bits.is_empty() || bits.len() > width {
                    return Err(ParseBvError::new(format!(
                        "binary literal `{s}` does not fit width {width}"
                    )));
                }
                value = Bv::zero(width);
                for (i, c) in bits.iter().rev().enumerate() {
                    match c {
                        '0' => {}
                        '1' => value = value.with_bit(i, true),
                        _ => {
                            return Err(ParseBvError::new(format!(
                                "unexpected character `{c}` in binary literal `{s}`"
                            )))
                        }
                    }
                }
            }
            'h' => {
                value = Bv::zero(width);
                let nibbles: Vec<char> = digits.chars().filter(|c| *c != '_').collect();
                for (i, c) in nibbles.iter().rev().enumerate() {
                    let nib = c.to_digit(16).ok_or_else(|| {
                        ParseBvError::new(format!("unexpected hex digit `{c}` in `{s}`"))
                    })? as u64;
                    for b in 0..4 {
                        let idx = i * 4 + b;
                        if (nib >> b) & 1 == 1 {
                            if idx >= width {
                                return Err(ParseBvError::new(format!(
                                    "hex literal `{s}` does not fit width {width}"
                                )));
                            }
                            value = value.with_bit(idx, true);
                        }
                    }
                }
            }
            'd' => {
                let v: u64 = digits
                    .replace('_', "")
                    .parse()
                    .map_err(|_| ParseBvError::new(format!("invalid decimal digits in `{s}`")))?;
                if width < 64 && v >= (1u64 << width) {
                    return Err(ParseBvError::new(format!(
                        "decimal literal `{s}` does not fit width {width}"
                    )));
                }
                value = Bv::from_u64(width, v);
            }
            _ => unreachable!(),
        }
        Ok(value)
    }
}

/// Splits a literal into `(width, base, digits)`.
pub(crate) fn split_literal(s: &str) -> Result<(usize, char, &str), ParseBvError> {
    let s = s.trim();
    if let Some(pos) = s.find('\'') {
        let width: usize = s[..pos]
            .parse()
            .map_err(|_| ParseBvError::new(format!("invalid width prefix in `{s}`")))?;
        if width == 0 {
            return Err(ParseBvError::new("zero width literal"));
        }
        let rest = &s[pos + 1..];
        let base = rest
            .chars()
            .next()
            .ok_or_else(|| ParseBvError::new(format!("missing base in `{s}`")))?
            .to_ascii_lowercase();
        if !matches!(base, 'b' | 'h' | 'd') {
            return Err(ParseBvError::new(format!(
                "unsupported base `{base}` in `{s}`"
            )));
        }
        Ok((width, base, &rest[1..]))
    } else {
        // Plain decimal: infer the minimal width.
        let v: u64 = s
            .replace('_', "")
            .parse()
            .map_err(|_| ParseBvError::new(format!("invalid literal `{s}`")))?;
        let width = (64 - v.leading_zeros() as usize).max(1);
        // Leak-free trick: re-encode as a decimal literal with explicit width.
        // We cannot return a slice of a temporary, so handle it here.
        let _ = width;
        Err(ParseBvError::new(
            "plain decimal literals must carry an explicit width (e.g. 8'd42)",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bits() {
        let v = Bv::from_u64(8, 0b1010_0101);
        assert_eq!(v.width(), 8);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(7));
        assert_eq!(v.count_ones(), 4);
        assert_eq!(v.to_u64(), Some(0xa5));
    }

    #[test]
    fn from_u64_truncates_to_width() {
        let v = Bv::from_u64(4, 0xff);
        assert_eq!(v.to_u64(), Some(0xf));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = Bv::zero(0);
    }

    #[test]
    fn wide_vectors() {
        let v = Bv::ones(152);
        assert_eq!(v.width(), 152);
        assert_eq!(v.count_ones(), 152);
        assert_eq!(v.to_u64(), None);
        assert!(v.bit(151));
        let w = v.shr(150);
        assert_eq!(w.to_u64(), Some(0b11));
    }

    #[test]
    fn modular_addition_wraps() {
        let a = Bv::from_u64(4, 9);
        let b = Bv::from_u64(4, 11);
        assert_eq!(a.add(&b).to_u64(), Some(4));
        let c = Bv::from_u64(4, 3);
        assert_eq!(c.sub(&a).to_u64(), Some((3u64.wrapping_sub(9)) & 0xf));
    }

    #[test]
    fn modular_multiplication_wraps() {
        // The paper's false-negative example: 4 * 7 = 28 ≡ 12 (mod 16).
        let a = Bv::from_u64(4, 4);
        let b = Bv::from_u64(4, 7);
        assert_eq!(a.mul(&b).to_u64(), Some(12));
    }

    #[test]
    fn multiplication_across_words() {
        let a = Bv::from_u64(128, u64::MAX).shl(3);
        let b = Bv::from_u64(128, 5);
        let expect = (u128::from(u64::MAX) << 3) * 5;
        let got = a.mul(&b);
        let lo = got.words()[0] as u128;
        let hi = got.words()[1] as u128;
        assert_eq!((hi << 64) | lo, expect);
    }

    #[test]
    fn negation_and_subtraction() {
        let a = Bv::from_u64(8, 1);
        assert_eq!(a.neg().to_u64(), Some(255));
        assert_eq!(Bv::zero(8).neg().to_u64(), Some(0));
    }

    #[test]
    fn bitwise_ops() {
        let a = Bv::from_u64(8, 0b1100_1010);
        let b = Bv::from_u64(8, 0b1010_0110);
        assert_eq!(a.and(&b).to_u64(), Some(0b1000_0010));
        assert_eq!(a.or(&b).to_u64(), Some(0b1110_1110));
        assert_eq!(a.xor(&b).to_u64(), Some(0b0110_1100));
        assert_eq!(a.not().to_u64(), Some(0b0011_0101));
    }

    #[test]
    fn shifts() {
        let a = Bv::from_u64(8, 0b0000_1111);
        assert_eq!(a.shl(2).to_u64(), Some(0b0011_1100));
        assert_eq!(a.shl(8).to_u64(), Some(0));
        assert_eq!(a.shr(2).to_u64(), Some(0b0000_0011));
        let wide = Bv::from_u64(130, 1).shl(129);
        assert!(wide.bit(129));
        assert_eq!(wide.shr(129).to_u64(), Some(1));
    }

    #[test]
    fn slices_and_concat() {
        let a = Bv::from_u64(12, 0xabc);
        assert_eq!(a.slice(4, 4).to_u64(), Some(0xb));
        assert_eq!(a.slice(8, 4).to_u64(), Some(0xa));
        let hi = Bv::from_u64(4, 0xd);
        let cat = hi.concat(&a);
        assert_eq!(cat.width(), 16);
        assert_eq!(cat.to_u64(), Some(0xdabc));
    }

    #[test]
    fn ordering_is_unsigned() {
        let a = Bv::from_u64(4, 2);
        let b = Bv::from_u64(4, 11);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&Bv::from_u64(4, 2)), Ordering::Equal);
        let wide_small = Bv::from_u64(152, 7);
        let wide_big = Bv::ones(152);
        assert!(wide_small < wide_big);
    }

    #[test]
    fn parse_literals() {
        assert_eq!("4'b1010".parse::<Bv>().unwrap().to_u64(), Some(10));
        assert_eq!("8'hff".parse::<Bv>().unwrap().to_u64(), Some(255));
        assert_eq!("12'd100".parse::<Bv>().unwrap().to_u64(), Some(100));
        assert_eq!("8'b0000_1111".parse::<Bv>().unwrap().to_u64(), Some(15));
        assert!("4'b102".parse::<Bv>().is_err());
        assert!("4'd16".parse::<Bv>().is_err());
        assert!("0'b1".parse::<Bv>().is_err());
        assert!("42".parse::<Bv>().is_err());
    }

    #[test]
    fn display_binary_and_hex() {
        let v = Bv::from_u64(6, 0b101101);
        assert_eq!(v.to_string(), "6'b101101");
        assert_eq!(format!("{:x}", v), "6'h2d");
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(Bv::from_u64(8, 0).trailing_zeros(), 8);
        assert_eq!(Bv::from_u64(8, 0b10100).trailing_zeros(), 2);
        assert_eq!(Bv::from_u64(100, 1).shl(70).trailing_zeros(), 70);
    }
}
