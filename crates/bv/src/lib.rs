//! # wlac-bv — 3-valued word-level bit-vector domain
//!
//! This crate provides the value domain used by the word-level ATPG engine of
//! the WLAC assertion checker (a reproduction of Huang & Cheng, *"Assertion
//! Checking by Combined Word-level ATPG and Modular Arithmetic
//! Constraint-Solving Techniques"*, DAC 2000).
//!
//! The domain consists of:
//!
//! * [`Tv`] — a single three-valued logic bit (`0`, `1`, `x`),
//! * [`Bv`] — a concrete fixed-width bit-vector of arbitrary width,
//! * [`Bv3`] — a *cube*: a fixed-width vector of [`Tv`] bits, representing the
//!   set of all concrete bit-vectors compatible with its known bits,
//! * range utilities ([`range`]) implementing the paper's comparator
//!   implication rules (minimum/maximum extraction and MSB-first re-cubing),
//! * three-valued arithmetic ([`arith`]) used for forward and backward
//!   implication across adders, subtractors and multipliers.
//!
//! # Examples
//!
//! ```
//! use wlac_bv::{Bv, Bv3};
//!
//! # fn main() -> Result<(), wlac_bv::ParseBvError> {
//! // The adder example from Fig. 3 of the paper: 4'b0111 minus 4'b1x1x.
//! let out: Bv3 = "4'b0111".parse()?;
//! let addend: Bv3 = "4'b1x1x".parse()?;
//! let (other, borrow) = wlac_bv::arith::sub3(&out, &addend);
//! assert_eq!(other.to_string(), "4'b1x0x");
//! assert_eq!(borrow, wlac_bv::Tv::One); // the adder's carry-out must be 1
//!
//! let twelve = Bv::from_u64(4, 12);
//! assert_eq!(twelve.to_u64(), Some(12));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bv;
mod bv3;
mod error;
mod small;
mod tv;

pub mod arith;
pub mod range;

pub use bv::Bv;
pub use bv3::Bv3;
pub use error::{ParseBvError, WidthMismatchError};
pub use tv::Tv;

/// Number of bits stored per machine word in [`Bv`] and [`Bv3`].
pub(crate) const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `width` bits.
pub(crate) fn words_for(width: usize) -> usize {
    width.div_ceil(WORD_BITS)
}

/// Mask selecting the valid bits of the last storage word for `width`.
pub(crate) fn last_word_mask(width: usize) -> u64 {
    let rem = width % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}
