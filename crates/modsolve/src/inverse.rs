//! Multiplicative inverses of bit-vectors with a product (Definitions 3–4,
//! Theorems 1–2 of the paper).
//!
//! In ℤ/2ⁿℤ only odd elements have a (unique) multiplicative inverse. The
//! paper extends the notion to the *multiplicative inverse with product k*:
//! the set `{ x | a·x ≡ k (mod 2ⁿ) }`. Theorem 1 characterises when the set
//! is empty, a singleton, or has exactly `2^m` members (`m` the 2-adic
//! valuation of `a`), and Theorem 2 gives the closed form
//! `x = b + 2^{n-m}·t` for `t = 0 .. 2^m - 1`.

use crate::modint::Ring;

/// The solution set of `a·x ≡ k (mod 2ⁿ)` in closed form.
///
/// Per Theorem 2 the set is an arithmetic progression
/// `base + step·t (mod 2ⁿ)` with `count` members.
///
/// # Examples
///
/// The paper's examples:
///
/// ```
/// use wlac_modsolve::{inverse_with_product, Ring};
///
/// // 3-bit: 3 is the inverse of 6 with product 2 (6·3 = 18 ≡ 2 mod 8).
/// let set = inverse_with_product(Ring::new(3), 6, 2).expect("solvable");
/// assert!(set.contains(3));
///
/// // 3-bit: 6 has no inverse with product 3 ...
/// assert!(inverse_with_product(Ring::new(3), 6, 3).is_none());
/// // ... but exactly two inverses with product 4: {2, 6}.
/// let set = inverse_with_product(Ring::new(3), 6, 4).unwrap();
/// let mut sols: Vec<u64> = set.iter().collect();
/// sols.sort();
/// assert_eq!(sols, vec![2, 6]);
///
/// // 4-bit: the inverses of 6 with product 10 are 7 + 8t = {7, 15}.
/// let set = inverse_with_product(Ring::new(4), 6, 10).unwrap();
/// assert_eq!(set.base(), 7);
/// assert_eq!(set.step(), 8);
/// assert_eq!(set.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InverseSet {
    ring: Ring,
    base: u64,
    step: u64,
    count: u64,
}

impl InverseSet {
    /// The smallest representative produced by the closed form.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The additive step `2^{n-m}` between consecutive solutions
    /// (0 when the set is the whole ring).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Number of solutions.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The ring the solutions live in.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Iterates over all solutions.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(move |t| self.ring.add(self.base, self.ring.mul(self.step, t)))
    }

    /// `true` if `x` satisfies `a·x ≡ k`.
    pub fn contains(&self, x: u64) -> bool {
        let x = self.ring.reduce(x);
        if self.count == 1 {
            return x == self.base;
        }
        if self.step == 0 {
            // Degenerate encoding of "the whole ring".
            return true;
        }
        let diff = self.ring.sub(x, self.base);
        diff.is_multiple_of(self.step) && (diff / self.step) < self.count
    }
}

/// Unique multiplicative inverse of an odd element (Definition 3); `None` for
/// even elements.
///
/// # Examples
///
/// ```
/// use wlac_modsolve::{inverse, Ring};
///
/// assert_eq!(inverse(Ring::new(3), 3), Some(3)); // 3·3 = 9 ≡ 1 (mod 8)
/// assert_eq!(inverse(Ring::new(3), 2), None);
/// ```
pub fn inverse(ring: Ring, a: u64) -> Option<u64> {
    ring.inverse_odd(a)
}

/// Multiplicative inverse with product `k` (Definition 4): the solution set
/// of `a·x ≡ k (mod 2ⁿ)`, or `None` when it is empty.
///
/// Implements Theorems 1 and 2:
///
/// * `a` odd → exactly one solution, `inverse(a)·k`;
/// * `a = a'·2^m` even and `2^m ∤ k` → no solution;
/// * `a = a'·2^m` even and `k = k'·2^m` → exactly `2^m` solutions
///   `b + 2^{n-m}·t`, where `b = inverse(a')·k'`;
/// * `a ≡ 0`: every element is a solution when `k ≡ 0`, otherwise none.
pub fn inverse_with_product(ring: Ring, a: u64, k: u64) -> Option<InverseSet> {
    let a = ring.reduce(a);
    let k = ring.reduce(k);
    if a == 0 {
        return if k == 0 {
            Some(InverseSet {
                ring,
                base: 0,
                step: if ring.width() == 64 { 0 } else { 1 },
                count: if ring.width() == 64 {
                    // Representing 2^64 members exactly overflows u64; the
                    // whole ring is encoded as step 0 / count u64::MAX.
                    u64::MAX
                } else {
                    ring.modulus() as u64
                },
            })
        } else {
            None
        };
    }
    let (a_odd, m) = ring.odd_part(a);
    let inv_odd = ring
        .inverse_odd(a_odd)
        .expect("odd part is always invertible");
    if m == 0 {
        // (T1.1) unique inverse with product k.
        return Some(InverseSet {
            ring,
            base: ring.mul(inv_odd, k),
            step: 0,
            count: 1,
        });
    }
    if ring.valuation(k).map(|v| v < m).unwrap_or(false) {
        // (T1.2) k is not a multiple of 2^m.
        return None;
    }
    // (T1.3) / Theorem 2: k = k'·2^m, b = inverse(a')·k', solutions b + 2^{n-m}·t.
    let k_prime = k >> m;
    let base = ring.mul(inv_odd, k_prime);
    let step = if m >= ring.width() {
        0
    } else {
        ring.reduce(1u64 << (ring.width() - m))
    };
    Some(InverseSet {
        ring,
        base,
        step,
        count: 1u64 << m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_elements_have_unique_inverse_with_product() {
        let ring = Ring::new(4);
        // multiplicative_inverse_k(a) = multiplicative_inverse(a) * k (T1.1).
        for a in (1..16u64).step_by(2) {
            for k in 0..16u64 {
                let set = inverse_with_product(ring, a, k).unwrap();
                assert_eq!(set.count(), 1);
                let expected = ring.mul(ring.inverse_odd(a).unwrap(), k);
                assert_eq!(set.base(), expected);
                assert_eq!(ring.mul(a, set.base()), k);
            }
        }
    }

    #[test]
    fn paper_example_three_bit() {
        let ring = Ring::new(3);
        // 3 is 6's multiplicative inverse with product 2.
        let set = inverse_with_product(ring, 6, 2).unwrap();
        assert!(set.contains(3));
        // 6 = 3·2^1 has no inverse with product 3 ...
        assert!(inverse_with_product(ring, 6, 3).is_none());
        // ... and exactly 2 inverses with product 4: {2, 6}.
        let set = inverse_with_product(ring, 6, 4).unwrap();
        assert_eq!(set.count(), 2);
        let mut all: Vec<u64> = set.iter().collect();
        all.sort();
        assert_eq!(all, vec![2, 6]);
    }

    #[test]
    fn paper_example_four_bit_theorem_two() {
        // a = 6 = 3·2, k = 10 = 5·2, inverse of 3 with product 5 is 7,
        // so the solutions are 7 + 2^3·t for t = 0, 1.
        let ring = Ring::new(4);
        let set = inverse_with_product(ring, 6, 10).unwrap();
        assert_eq!((set.base(), set.step(), set.count()), (7, 8, 2));
        for x in set.iter() {
            assert_eq!(ring.mul(6, x), 10);
        }
    }

    #[test]
    fn zero_divisor_cases() {
        let ring = Ring::new(4);
        // 0 has no inverse with non-zero product.
        assert!(inverse_with_product(ring, 0, 5).is_none());
        // Every bit-vector is the inverse of 0 with product 0.
        let set = inverse_with_product(ring, 0, 0).unwrap();
        assert_eq!(set.count(), 16);
        assert!(set.contains(11));
    }

    #[test]
    fn closed_form_matches_brute_force() {
        for width in 1..=8u32 {
            let ring = Ring::new(width);
            let modulus = ring.modulus() as u64;
            for a in 0..modulus {
                for k in 0..modulus {
                    let brute: Vec<u64> = (0..modulus).filter(|x| ring.mul(a, *x) == k).collect();
                    match inverse_with_product(ring, a, k) {
                        None => assert!(brute.is_empty(), "w={width} a={a} k={k}"),
                        Some(set) => {
                            let mut got: Vec<u64> = set.iter().collect();
                            got.sort();
                            assert_eq!(got, brute, "w={width} a={a} k={k}");
                            for x in 0..modulus {
                                assert_eq!(
                                    set.contains(x),
                                    brute.contains(&x),
                                    "contains w={width} a={a} k={k} x={x}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_one_counts() {
        let ring = Ring::new(5);
        // a = 12 = 3·2^2: 2^2 = 4 inverses when k is a multiple of 4.
        let set = inverse_with_product(ring, 12, 8).unwrap();
        assert_eq!(set.count(), 4);
        assert!(inverse_with_product(ring, 12, 6).is_none());
    }
}
