//! Mixed linear / nonlinear modular constraint systems.
//!
//! Nonlinear datapath constraints come from multipliers and shifters
//! (Section 4 of the paper). "Since completely solving them could be very
//! difficult, if not impossible", the paper applies analytical approaches
//! such as factor enumeration to *heuristically* enumerate candidate values,
//! substitutes them into the equations so the system becomes linear, and
//! hands the result to the linear solver.
//!
//! [`MixedSystem`] (and its clone-free engine [`solve_products_checkpointed`])
//! implements exactly that loop: product constraints `x_a · x_b = x_c` are
//! linearised by enumerating candidate values for one operand (guided by the
//! 2-adic valuation of a known product value when one is available), each
//! candidate pushing two checkpointed rows onto the incremental echelon form
//! of the linear system.

use crate::matrix::{CheckpointedSystem, LinearSystem, SolveAbort};
use crate::modint::Ring;

/// A product constraint `x_a · x_b ≡ x_c (mod 2ⁿ)` between three variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductConstraint {
    /// Left operand variable index.
    pub a: usize,
    /// Right operand variable index.
    pub b: usize,
    /// Product variable index.
    pub c: usize,
}

/// Outcome of solving a mixed system under an enumeration budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedOutcome {
    /// A satisfying assignment for all variables.
    Solution(Vec<u64>),
    /// The system was proven unsatisfiable (the enumeration was exhaustive).
    Infeasible,
    /// The enumeration budget ran out before a conclusion was reached.
    Unknown,
}

/// A system of linear equations plus multiplier product constraints.
///
/// # Examples
///
/// The paper's false-negative example: a multiplier with 3-bit inputs `a`,
/// `b` and a 4-bit output `c`, with `c = 12` and `a = 4`. Besides the obvious
/// `b = 3`, `b = 7` is also a solution because `4·7 = 28 ≡ 12 (mod 16)` — and
/// only the modular solver finds it when a side constraint rules out `b = 3`.
///
/// ```
/// use wlac_modsolve::{MixedSystem, Ring};
///
/// let mut sys = MixedSystem::new(Ring::new(4), 3); // variables a, b, c
/// sys.add_product(0, 1, 2);
/// sys.fix_variable(0, 4);
/// sys.fix_variable(2, 12);
/// // Side constraint: b + 1 ≡ 8, i.e. b = 7 (ruling out the integral answer 3).
/// sys.add_equation(&[0, 1, 0], 7);
/// let solution = sys.solve().expect_solution();
/// assert_eq!(solution, vec![4, 7, 12]);
/// ```
#[derive(Debug, Clone)]
pub struct MixedSystem {
    ring: Ring,
    num_vars: usize,
    linear: LinearSystem,
    products: Vec<ProductConstraint>,
    enumeration_limit: usize,
}

impl MixedOutcome {
    /// Unwraps a solution.
    ///
    /// # Panics
    ///
    /// Panics when the outcome is not [`MixedOutcome::Solution`].
    pub fn expect_solution(self) -> Vec<u64> {
        match self {
            MixedOutcome::Solution(x) => x,
            other => panic!("expected a solution, got {other:?}"),
        }
    }

    /// `true` when a solution was found.
    pub fn is_solution(&self) -> bool {
        matches!(self, MixedOutcome::Solution(_))
    }
}

impl MixedSystem {
    /// Creates an empty system with `num_vars` variables in the given ring.
    pub fn new(ring: Ring, num_vars: usize) -> Self {
        MixedSystem {
            ring,
            num_vars,
            linear: LinearSystem::new(ring, num_vars),
            products: Vec::new(),
            enumeration_limit: 256,
        }
    }

    /// Caps the number of candidate values enumerated per product constraint.
    pub fn set_enumeration_limit(&mut self, limit: usize) {
        self.enumeration_limit = limit.max(1);
    }

    /// The ring the system lives in.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a linear equation `Σ coeffs[i]·x_i ≡ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_equation(&mut self, coeffs: &[u64], rhs: u64) {
        self.linear.add_equation(coeffs, rhs);
    }

    /// Adds the equation `x_var ≡ value`.
    pub fn fix_variable(&mut self, var: usize, value: u64) {
        self.linear.fix_variable(var, value);
    }

    /// Adds the product constraint `x_a · x_b ≡ x_c`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn add_product(&mut self, a: usize, b: usize, c: usize) {
        assert!(
            a < self.num_vars && b < self.num_vars && c < self.num_vars,
            "product variable index out of range"
        );
        self.products.push(ProductConstraint { a, b, c });
    }

    /// `true` when `x` satisfies every linear equation and product constraint.
    pub fn is_solution(&self, x: &[u64]) -> bool {
        self.linear.is_solution(x)
            && self
                .products
                .iter()
                .all(|p| self.ring.mul(x[p.a], x[p.b]) == x[p.c])
    }

    /// Solves the system by linearising product constraints through candidate
    /// enumeration.
    pub fn solve(&self) -> MixedOutcome {
        self.solve_interruptible(&mut || false)
    }

    /// Like [`MixedSystem::solve`], but polls `is_interrupted` inside the
    /// candidate-enumeration outer loop and inside every Gaussian-elimination
    /// leaf solve. An interrupted run returns [`MixedOutcome::Unknown`] — a
    /// sound "no conclusion" answer, exactly like budget exhaustion — so a
    /// portfolio race supervisor can stop losing engines mid-solve.
    ///
    /// Internally this builds the incremental echelon form of the linear part
    /// once and delegates to [`solve_products_checkpointed`] — a single
    /// implementation of the enumeration decision procedure serves both this
    /// convenience API and the checker's hot path.
    pub fn solve_interruptible(&self, is_interrupted: &mut dyn FnMut() -> bool) -> MixedOutcome {
        let mut system = CheckpointedSystem::from_linear(&self.linear);
        solve_products_checkpointed(
            &mut system,
            &self.products,
            self.enumeration_limit,
            is_interrupted,
        )
    }
}

/// Candidate values for the left operand of a product constraint.
///
/// If the whole ring fits in the budget the full ring is enumerated (making
/// the search exhaustive); otherwise values consistent with a known product
/// value are preferred — useful `x_a` values have 2-adic valuation at most
/// that of the product (factor enumeration), so odd values and small powers
/// of two times odd values are sampled first.
fn product_candidates(ring: Ring, enumeration_limit: usize, known_c: Option<u64>) -> Vec<u64> {
    let modulus = ring.modulus();
    let limit = enumeration_limit as u128;
    if modulus <= limit {
        return (0..modulus as u64).collect();
    }
    let mut out = Vec::new();
    match known_c {
        Some(k) if k != 0 => {
            let max_val = ring.valuation(k).unwrap_or(0);
            'outer: for shift in 0..=max_val {
                let mut odd = 1u64;
                while (out.len() as u128) < limit {
                    let candidate = ring.reduce(odd << shift);
                    if candidate != 0 && !out.contains(&candidate) {
                        out.push(candidate);
                    }
                    odd += 2;
                    if (odd as u128) >= modulus {
                        continue 'outer;
                    }
                }
                break;
            }
        }
        _ => {
            out.extend((0..enumeration_limit as u64).map(|v| ring.reduce(v)));
            out.dedup();
        }
    }
    out
}

/// Solves the linear equations held by `system` together with `products` by
/// checkpointed candidate enumeration.
///
/// This is the incremental counterpart of [`MixedSystem::solve_interruptible`]:
/// instead of cloning the linear system per candidate, each candidate pushes
/// two rows (`x_a ≡ value` and `value·x_b − x_c ≡ 0`) under a
/// [`CheckpointedSystem`] checkpoint and pops them afterwards, so the shared
/// elimination prefix — typically an island's structural template — is reused
/// across the whole enumeration. The checkpoint state of `system` is restored
/// before returning.
pub fn solve_products_checkpointed(
    system: &mut CheckpointedSystem,
    products: &[ProductConstraint],
    enumeration_limit: usize,
    is_interrupted: &mut dyn FnMut() -> bool,
) -> MixedOutcome {
    let search = ProductSearch {
        ring: system.ring(),
        enumeration_limit: enumeration_limit.max(1),
        all: products,
    };
    search.solve(system, 0, is_interrupted)
}

/// Recursive state of the checkpointed product enumeration.
struct ProductSearch<'a> {
    ring: Ring,
    enumeration_limit: usize,
    all: &'a [ProductConstraint],
}

impl ProductSearch<'_> {
    fn solve(
        &self,
        system: &mut CheckpointedSystem,
        next: usize,
        is_interrupted: &mut dyn FnMut() -> bool,
    ) -> MixedOutcome {
        // One solve per level serves three purposes: the linear-feasibility
        // pruning check, pinned-product detection, and (at the leaf) the
        // concrete assignment.
        let sol = match system.solve_interruptible(is_interrupted) {
            Ok(sol) => sol,
            Err(SolveAbort::Infeasible) => return MixedOutcome::Infeasible,
            Err(SolveAbort::Interrupted) => return MixedOutcome::Unknown,
        };
        let Some(product) = self.all.get(next) else {
            return MixedOutcome::Solution(sol.instantiate(&vec![0; sol.num_free()]));
        };
        let pinned_c = if sol.null_matrix().iter().all(|col| col[product.c] == 0) {
            Some(sol.particular()[product.c])
        } else {
            None
        };
        let candidates = product_candidates(self.ring, self.enumeration_limit, pinned_c);
        let exhaustive = candidates.len() as u128 >= self.ring.modulus();
        let mut saw_unknown = false;
        for value in candidates {
            if is_interrupted() {
                return MixedOutcome::Unknown;
            }
            system.push_checkpoint();
            system.add_sparse_equation(&[(product.a, 1)], value);
            // value·x_b - x_c ≡ 0 becomes linear once x_a is fixed.
            system.add_sparse_equation(&[(product.b, value), (product.c, self.ring.neg(1))], 0);
            let outcome = self.solve(system, next + 1, is_interrupted);
            system.pop_checkpoint();
            match outcome {
                MixedOutcome::Solution(x) => {
                    if self.products_satisfied(&x) {
                        return MixedOutcome::Solution(x);
                    }
                    // A spurious candidate (free variables chosen badly);
                    // treat as inconclusive rather than a refutation.
                    saw_unknown = true;
                }
                MixedOutcome::Unknown => saw_unknown = true,
                MixedOutcome::Infeasible => {}
            }
        }
        if exhaustive && !saw_unknown {
            MixedOutcome::Infeasible
        } else {
            MixedOutcome::Unknown
        }
    }

    fn products_satisfied(&self, x: &[u64]) -> bool {
        self.all
            .iter()
            .all(|p| self.ring.mul(x[p.a], x[p.b]) == x[p.c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_false_negative_example() {
        // 3-bit a, b with 4-bit product c: c = 12, a = 4 admits b ∈ {3, 7}.
        // With b forced to 7 the modular solver still succeeds.
        let mut sys = MixedSystem::new(Ring::new(4), 3);
        sys.add_product(0, 1, 2);
        sys.fix_variable(0, 4);
        sys.fix_variable(2, 12);
        sys.add_equation(&[0, 1, 0], 7);
        assert_eq!(sys.solve(), MixedOutcome::Solution(vec![4, 7, 12]));
    }

    #[test]
    fn both_multiplier_solutions_reachable() {
        for b in [3u64, 7] {
            let mut sys = MixedSystem::new(Ring::new(4), 3);
            sys.add_product(0, 1, 2);
            sys.fix_variable(0, 4);
            sys.fix_variable(2, 12);
            sys.add_equation(&[0, 1, 0], b);
            let sol = sys.solve().expect_solution();
            assert_eq!(sol[1], b);
            assert!(sys.is_solution(&sol));
        }
    }

    #[test]
    fn pure_linear_systems_pass_through() {
        let mut sys = MixedSystem::new(Ring::new(3), 2);
        sys.add_equation(&[1, 1], 5);
        sys.add_equation(&[2, 7], 4);
        assert_eq!(sys.solve(), MixedOutcome::Solution(vec![3, 2]));
    }

    #[test]
    fn infeasible_product_detected_exhaustively() {
        // a·b = 5 with a forced even is impossible (odd product needs odd factors).
        let mut sys = MixedSystem::new(Ring::new(3), 3);
        sys.add_product(0, 1, 2);
        sys.fix_variable(2, 5);
        // a = 2·d for some d: encode a ≡ 2 (mod 8) ... simply force a = 2.
        sys.fix_variable(0, 2);
        assert_eq!(sys.solve(), MixedOutcome::Infeasible);
    }

    #[test]
    fn unconstrained_product_finds_any_solution() {
        let mut sys = MixedSystem::new(Ring::new(4), 3);
        sys.add_product(0, 1, 2);
        let out = sys.solve().expect_solution();
        assert!(sys.is_solution(&out));
    }

    #[test]
    fn chained_products() {
        // a·b = c, c·d = e with e = 9, all 4-bit. 9 is odd so every factor is odd.
        let mut sys = MixedSystem::new(Ring::new(4), 5);
        sys.add_product(0, 1, 2);
        sys.add_product(2, 3, 4);
        sys.fix_variable(4, 9);
        let sol = sys.solve().expect_solution();
        assert!(sys.is_solution(&sol));
        assert_eq!(sol[4], 9);
        assert_eq!(sys.ring().mul(sol[0], sol[1]), sol[2]);
    }

    #[test]
    fn budget_exhaustion_reports_unknown_not_infeasible() {
        // Wide ring with a tiny budget: the solver must not claim
        // infeasibility it cannot justify.
        let mut sys = MixedSystem::new(Ring::new(32), 3);
        sys.set_enumeration_limit(4);
        sys.add_product(0, 1, 2);
        sys.fix_variable(2, 0x1234_5678);
        // Force a to a value the tiny enumeration will not try.
        sys.add_equation(&[1, 0, 0], 0x0100_0000);
        let out = sys.solve();
        assert!(matches!(
            out,
            MixedOutcome::Unknown | MixedOutcome::Solution(_)
        ));
    }

    #[test]
    fn interrupted_solve_reports_unknown() {
        // An already-set interrupt flag must surface as `Unknown` — never as
        // a (false) infeasibility proof.
        let mut sys = MixedSystem::new(Ring::new(8), 3);
        sys.add_product(0, 1, 2);
        sys.fix_variable(2, 77);
        assert_eq!(sys.solve_interruptible(&mut || true), MixedOutcome::Unknown);
        // The same system solves normally without the interrupt.
        assert!(sys.solve().is_solution());
    }

    #[test]
    fn interrupt_mid_enumeration_reports_unknown() {
        // Let a few candidate enumerations pass, then interrupt: the solver
        // must stop with `Unknown` instead of finishing the enumeration.
        let mut sys = MixedSystem::new(Ring::new(10), 3);
        sys.add_product(0, 1, 2);
        sys.fix_variable(2, 999);
        // Rule out every candidate so the enumeration would run long.
        sys.add_equation(&[1, 0, 0], 0);
        let mut polls = 0u32;
        let out = sys.solve_interruptible(&mut || {
            polls += 1;
            polls > 5
        });
        assert_eq!(out, MixedOutcome::Unknown);
    }

    /// Runs the same constraints through the cloning and the checkpointed
    /// enumeration paths; outcome kinds must match and solutions must satisfy
    /// the original mixed system.
    fn assert_checkpointed_agrees(build: impl Fn(&mut MixedSystem, &mut CheckpointedSystem)) {
        let ring = Ring::new(4);
        let mut mixed = MixedSystem::new(ring, 3);
        mixed.add_product(0, 1, 2);
        let mut inc = CheckpointedSystem::new(ring, 3);
        build(&mut mixed, &mut inc);
        let products = [ProductConstraint { a: 0, b: 1, c: 2 }];
        let got = solve_products_checkpointed(&mut inc, &products, 256, &mut || false);
        let want = mixed.solve();
        match (&got, &want) {
            (MixedOutcome::Solution(x), MixedOutcome::Solution(_)) => {
                assert!(mixed.is_solution(x), "checkpointed solution invalid: {x:?}");
            }
            (a, b) => assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "outcome kind mismatch: {got:?} vs {want:?}"
            ),
        }
        // The enumeration must leave the checkpoint state balanced.
        inc.push_checkpoint();
        inc.pop_checkpoint();
    }

    #[test]
    fn checkpointed_product_enumeration_matches_cloning_path() {
        // Pinned product with a side constraint ruling out the integral root.
        assert_checkpointed_agrees(|mixed, inc| {
            mixed.add_equation(&[0, 1, 0], 7);
            mixed.fix_variable(0, 4);
            mixed.fix_variable(2, 12);
            inc.add_equation(&[0, 1, 0], 7);
            inc.fix_variable(0, 4);
            inc.fix_variable(2, 12);
        });
        // Infeasible: even factor, odd product.
        assert_checkpointed_agrees(|mixed, inc| {
            mixed.fix_variable(0, 2);
            mixed.fix_variable(2, 5);
            inc.fix_variable(0, 2);
            inc.fix_variable(2, 5);
        });
        // Unconstrained: any product triple.
        assert_checkpointed_agrees(|_, _| {});
    }

    #[test]
    fn checkpointed_chained_products() {
        // a·b = c, c·d = e with e = 9 over 4 bits (all factors odd).
        let ring = Ring::new(4);
        let mut sys = CheckpointedSystem::new(ring, 5);
        sys.fix_variable(4, 9);
        let products = [
            ProductConstraint { a: 0, b: 1, c: 2 },
            ProductConstraint { a: 2, b: 3, c: 4 },
        ];
        let out = solve_products_checkpointed(&mut sys, &products, 256, &mut || false);
        let MixedOutcome::Solution(x) = out else {
            panic!("expected a solution, got {out:?}");
        };
        assert_eq!(x[4], 9);
        assert_eq!(ring.mul(x[0], x[1]), x[2]);
        assert_eq!(ring.mul(x[2], x[3]), x[4]);
    }

    #[test]
    fn checkpointed_interrupt_reports_unknown() {
        let ring = Ring::new(8);
        let mut sys = CheckpointedSystem::new(ring, 3);
        sys.fix_variable(2, 77);
        let products = [ProductConstraint { a: 0, b: 1, c: 2 }];
        assert_eq!(
            solve_products_checkpointed(&mut sys, &products, 256, &mut || true),
            MixedOutcome::Unknown
        );
        assert!(solve_products_checkpointed(&mut sys, &products, 256, &mut || false).is_solution());
    }

    #[test]
    fn solution_respects_linear_side_constraints() {
        // a·b = c, a + b = 10, c = 21 over 5 bits: e.g. a=3, b=7.
        let mut sys = MixedSystem::new(Ring::new(5), 3);
        sys.add_product(0, 1, 2);
        sys.add_equation(&[1, 1, 0], 10);
        sys.fix_variable(2, 21);
        let sol = sys.solve().expect_solution();
        assert!(sys.is_solution(&sol));
        assert_eq!(sys.ring().add(sol[0], sol[1]), 10);
        assert_eq!(sys.ring().mul(sol[0], sol[1]), 21);
    }
}
