//! # wlac-modsolve — modular arithmetic constraint solving
//!
//! The arithmetic constraint solver of the WLAC assertion checker
//! (Section 4 of Huang & Cheng, DAC 2000). Because hardware signals are
//! fixed-width bit-vectors, datapath constraints are solved in the *modular*
//! number system ℤ/2ⁿℤ rather than over the integers — this is what lets the
//! checker find counter-examples that only exist because of wrap-around and
//! avoid the "false negative effect".
//!
//! The crate provides:
//!
//! * [`Ring`] — scalar arithmetic modulo `2^n`,
//! * [`inverse`] / [`inverse_with_product`] — the multiplicative inverse of a
//!   bit-vector and its extension *with product k* (Definitions 3–4,
//!   Theorems 1–2), returned in closed form as an [`InverseSet`],
//! * [`LinearSystem`] — Gauss–Jordan elimination over ℤ/2ⁿℤ producing **all**
//!   solutions as `x = x0 + N·f` ([`SolutionSet`]),
//! * [`CheckpointedSystem`] — the same elimination kept in *incremental
//!   echelon form*: rows are reduced as they are pushed and
//!   `push_checkpoint`/`pop_checkpoint` bracket speculative rows, so a hot
//!   caller (the checker's per-decision datapath leaf) re-solves by back
//!   substitution alone,
//! * [`MixedSystem`] — linear systems plus multiplier product constraints,
//!   linearised by heuristic candidate enumeration
//!   ([`solve_products_checkpointed`] is the clone-free incremental variant).
//!
//! # Examples
//!
//! ```
//! use wlac_modsolve::{LinearSystem, Ring};
//!
//! # fn main() -> Result<(), wlac_modsolve::InfeasibleError> {
//! // x + y = 5 and 2x + 7y = 4 over 3-bit vectors: integrally unsolvable,
//! // modularly (x, y) = (3, 2).
//! let mut sys = LinearSystem::new(Ring::new(3), 2);
//! sys.add_equation(&[1, 1], 5);
//! sys.add_equation(&[2, 7], 4);
//! assert_eq!(sys.solve()?.particular(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inverse;
mod matrix;
mod modint;
mod nonlinear;

pub use inverse::{inverse, inverse_with_product, InverseSet};
pub use matrix::{
    CheckpointedSystem, InfeasibleError, LinearSystem, SolutionIter, SolutionSet, SolveAbort,
};
pub use modint::Ring;
pub use nonlinear::{solve_products_checkpointed, MixedOutcome, MixedSystem, ProductConstraint};
