//! Linear bit-vector constraint solving over ℤ/2ⁿℤ.
//!
//! The paper's linear constraint solver (Section 4.1) transforms a linear
//! datapath sub-circuit into a matrix equation `A·x = b` over the modular
//! number system and finds **all** solutions in the closed form
//! `x = x0 + N·f`, where `x0` is a particular solution, `N` the *null matrix*
//! and `f` a column of free variables.
//!
//! [`LinearSystem::solve`] implements this with Gauss–Jordan elimination
//! extended by the multiplicative-inverse-with-product concept: pivots are
//! chosen with minimal 2-adic valuation (complete pivoting), scaled by the
//! inverse of their odd part, and rows below are eliminated. Back
//! substitution then produces the closed form; pivots with valuation `v > 0`
//! contribute an extra degree of freedom `2^{n-v}·t` exactly as in Theorem 2.

// Gaussian elimination reads clearest with explicit row/column indices.
#![allow(clippy::needless_range_loop)]

use crate::modint::Ring;
use std::error::Error;
use std::fmt;

/// A system of linear equations over ℤ/2ⁿℤ.
///
/// # Examples
///
/// The worked example of Section 4.1: `x + y = 5`, `2x + 7y = 4` over 3-bit
/// vectors has the (unique) solution `(x, y) = (3, 2)` even though it has no
/// integral solution.
///
/// ```
/// use wlac_modsolve::{LinearSystem, Ring};
///
/// # fn main() -> Result<(), wlac_modsolve::InfeasibleError> {
/// let mut sys = LinearSystem::new(Ring::new(3), 2);
/// sys.add_equation(&[1, 1], 5);
/// sys.add_equation(&[2, 7], 4);
/// let sol = sys.solve()?;
/// assert_eq!(sol.particular(), &[3, 2]);
/// assert_eq!(sol.num_free(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearSystem {
    ring: Ring,
    num_vars: usize,
    rows: Vec<(Vec<u64>, u64)>,
}

/// Error returned when a linear system has no solution in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfeasibleError;

impl fmt::Display for InfeasibleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear system has no solution modulo 2^n")
    }
}

impl Error for InfeasibleError {}

/// Why an interruptible solve ended without a solution set.
///
/// `wlac-modsolve` has no dependency on the checker's `CancelToken`, so
/// interruption is expressed as a plain polling closure; `Interrupted` is the
/// cooperative-cancellation outcome, distinct from a genuine `Infeasible`
/// proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveAbort {
    /// The system has no solution in the modular ring.
    Infeasible,
    /// The interrupt poll returned `true` before a conclusion was reached.
    Interrupted,
}

impl fmt::Display for SolveAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveAbort::Infeasible => write!(f, "{InfeasibleError}"),
            SolveAbort::Interrupted => write!(f, "linear solve interrupted"),
        }
    }
}

impl Error for SolveAbort {}

impl LinearSystem {
    /// Creates an empty system with `num_vars` variables in the given ring.
    pub fn new(ring: Ring, num_vars: usize) -> Self {
        LinearSystem {
            ring,
            num_vars,
            rows: Vec::new(),
        }
    }

    /// The ring the system lives in.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Number of variables (columns).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of equations (rows).
    pub fn num_equations(&self) -> usize {
        self.rows.len()
    }

    /// Adds the equation `Σ coeffs[i]·x_i ≡ rhs (mod 2ⁿ)`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_equation(&mut self, coeffs: &[u64], rhs: u64) {
        assert_eq!(coeffs.len(), self.num_vars, "coefficient count mismatch");
        let row = coeffs.iter().map(|c| self.ring.reduce(*c)).collect();
        self.rows.push((row, self.ring.reduce(rhs)));
    }

    /// Adds the equation `x_var ≡ value`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn fix_variable(&mut self, var: usize, value: u64) {
        assert!(var < self.num_vars, "variable index out of range");
        let mut coeffs = vec![0; self.num_vars];
        coeffs[var] = 1;
        self.add_equation(&coeffs, value);
    }

    /// `true` when `x` satisfies every equation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars`.
    pub fn is_solution(&self, x: &[u64]) -> bool {
        assert_eq!(x.len(), self.num_vars, "assignment length mismatch");
        self.rows.iter().all(|(coeffs, rhs)| {
            let mut acc = 0u64;
            for (c, v) in coeffs.iter().zip(x.iter()) {
                acc = self.ring.add(acc, self.ring.mul(*c, *v));
            }
            acc == *rhs
        })
    }

    /// Solves the system, returning all solutions in closed form.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleError`] when the system has no solution in the
    /// modular ring. (Unlike an integral solver this never reports a false
    /// negative caused by wrap-around — the paper's motivating observation.)
    pub fn solve(&self) -> Result<SolutionSet, InfeasibleError> {
        self.solve_with_interrupt(&mut || false).map_err(|abort| {
            debug_assert_eq!(abort, SolveAbort::Infeasible);
            InfeasibleError
        })
    }

    /// Like [`LinearSystem::solve`], but polls `is_interrupted` once per
    /// Gauss–Jordan elimination round so a race supervisor (e.g. the
    /// portfolio engine's `CancelToken`) can stop a long-running leaf solve.
    ///
    /// # Errors
    ///
    /// Returns [`SolveAbort::Infeasible`] when the system has no solution and
    /// [`SolveAbort::Interrupted`] when the poll fired first.
    pub fn solve_with_interrupt(
        &self,
        is_interrupted: &mut dyn FnMut() -> bool,
    ) -> Result<SolutionSet, SolveAbort> {
        let a: Vec<Vec<u64>> = self.rows.iter().map(|(c, _)| c.clone()).collect();
        let b: Vec<u64> = self.rows.iter().map(|(_, r)| *r).collect();
        batch_solve(self.ring, self.num_vars, a, b, is_interrupted)
    }
}

/// Full Gauss–Jordan elimination with complete pivoting over owned rows.
///
/// This is the batch solver behind [`LinearSystem::solve`]; it is also the
/// fallback of [`CheckpointedSystem`] when a pushed row cannot be reduced
/// incrementally (a pivot with positive 2-adic valuation followed by a row
/// with a smaller valuation in that column).
fn batch_solve(
    ring: Ring,
    nv: usize,
    mut a: Vec<Vec<u64>>,
    mut b: Vec<u64>,
    is_interrupted: &mut dyn FnMut() -> bool,
) -> Result<SolutionSet, SolveAbort> {
    let m = a.len();
    let mut col_used = vec![false; nv];
    let mut pivots: Vec<(usize, usize, u32)> = Vec::new();

    let mut r = 0usize;
    while r < m {
        if is_interrupted() {
            return Err(SolveAbort::Interrupted);
        }
        // Complete pivoting: pick the entry with the smallest 2-adic
        // valuation among the remaining rows and unused columns.
        let mut best: Option<(usize, usize, u32)> = None;
        for i in r..m {
            for (j, used) in col_used.iter().enumerate() {
                if *used || a[i][j] == 0 {
                    continue;
                }
                let v = ring.valuation(a[i][j]).expect("non-zero");
                if best.map(|(_, _, bv)| v < bv).unwrap_or(true) {
                    best = Some((i, j, v));
                }
            }
        }
        let Some((pi, pj, v)) = best else { break };
        a.swap(r, pi);
        b.swap(r, pi);
        // Scale the pivot row by the inverse of the pivot's odd part so
        // the pivot becomes exactly 2^v.
        let (odd, _) = ring.odd_part(a[r][pj]);
        let inv = ring.inverse_odd(odd).expect("odd part invertible");
        for c in 0..nv {
            a[r][c] = ring.mul(a[r][c], inv);
        }
        b[r] = ring.mul(b[r], inv);
        // Eliminate the pivot column below the pivot. Every entry below
        // has valuation >= v by the pivot choice, so the factor is exact.
        for i in r + 1..m {
            let e = a[i][pj];
            if e == 0 {
                continue;
            }
            let factor = e >> v;
            for c in 0..nv {
                let sub = ring.mul(factor, a[r][c]);
                a[i][c] = ring.sub(a[i][c], sub);
            }
            b[i] = ring.sub(b[i], ring.mul(factor, b[r]));
        }
        col_used[pj] = true;
        pivots.push((r, pj, v));
        r += 1;
    }

    // Rows without a pivot are all-zero on the left; their right-hand
    // side must be zero.
    for i in r..m {
        if b[i] != 0 {
            return Err(SolveAbort::Infeasible);
        }
    }
    // Each pivot equation 2^v·x_j + Σ (coeffs with valuation >= v)·x = b
    // is solvable iff 2^v divides b — independent of the free variables.
    for (row, _, v) in &pivots {
        if *v > 0 {
            match ring.valuation(b[*row]) {
                Some(bv) if bv < *v => return Err(SolveAbort::Infeasible),
                _ => {}
            }
        }
    }

    Ok(closed_form(ring, nv, &a, &b, &col_used, &pivots))
}

/// Back substitution over an echelon form: computes the closed form
/// `x = x0 + N·f` from the pivot rows.
///
/// Requirements (established by both the batch and the incremental
/// eliminators): pivot `k`'s row has zero entries in the columns of pivots
/// *earlier* in the list, every entry of a pivot row (and its right-hand
/// side) has 2-adic valuation at least the pivot's, and rows without a pivot
/// are all-zero with zero right-hand side.
fn closed_form(
    ring: Ring,
    nv: usize,
    a: &[Vec<u64>],
    b: &[u64],
    col_used: &[bool],
    pivots: &[(usize, usize, u32)],
) -> SolutionSet {
    // Assign parameter slots: one per unused column, plus one per pivot
    // with positive valuation (Theorem 2's extra freedom).
    let free_cols: Vec<usize> = (0..nv).filter(|j| !col_used[*j]).collect();
    let extra_pivots: Vec<usize> = (0..pivots.len()).filter(|i| pivots[*i].2 > 0).collect();
    let num_params = free_cols.len() + extra_pivots.len();

    // Affine form per variable: constant + Σ coeff_k · f_k.
    let mut affine: Vec<(u64, Vec<u64>)> = vec![(0, vec![0; num_params]); nv];
    for (k, j) in free_cols.iter().enumerate() {
        affine[*j].1[k] = 1;
    }
    let mut log2_count = (free_cols.len() as u32) * ring.width();

    for (pivot_idx, (row, j, v)) in pivots.iter().enumerate().rev() {
        let shift = *v;
        let mut const_term = b[*row] >> shift;
        let mut coeffs = vec![0u64; num_params];
        for c in 0..nv {
            if c == *j || a[*row][c] == 0 {
                continue;
            }
            let ac = a[*row][c] >> shift;
            let (x_const, x_coeffs) = &affine[c];
            const_term = ring.sub(const_term, ring.mul(ac, *x_const));
            for (dst, src) in coeffs.iter_mut().zip(x_coeffs.iter()) {
                *dst = ring.sub(*dst, ring.mul(ac, *src));
            }
        }
        if shift > 0 {
            let param = free_cols.len()
                + extra_pivots
                    .iter()
                    .position(|p| *p == pivot_idx)
                    .expect("registered extra pivot");
            let step = if shift >= ring.width() {
                0
            } else {
                1u64 << (ring.width() - shift)
            };
            coeffs[param] = ring.add(coeffs[param], step);
            log2_count += shift;
        }
        affine[*j] = (ring.reduce(const_term), coeffs);
    }

    let particular: Vec<u64> = affine.iter().map(|(c, _)| *c).collect();
    let mut basis = vec![vec![0u64; nv]; num_params];
    for (var, (_, coeffs)) in affine.iter().enumerate() {
        for (k, coeff) in coeffs.iter().enumerate() {
            basis[k][var] = *coeff;
        }
    }

    SolutionSet {
        ring,
        num_vars: nv,
        particular,
        basis,
        log2_count,
    }
}

/// A linear system over ℤ/2ⁿℤ kept in *incremental echelon form* with
/// checkpointed row pushes.
///
/// Rows are reduced against the existing pivots as they are inserted, so
/// re-solving after pushing a handful of rows costs back substitution only —
/// the already-eliminated prefix is never re-processed. [`Self::push_checkpoint`]
/// / [`Self::pop_checkpoint`] bracket speculative rows exactly like the
/// word-level assignment's delta trail brackets speculative refinements:
/// popping restores the echelon state bit-for-bit (rows are never mutated
/// after insertion, so undo is pure truncation).
///
/// This is the solver behind the checker's per-decision datapath leaf calls:
/// the island's structural equations are inserted once (the *template*) and
/// every decision only pushes the current value rows under a checkpoint.
///
/// # Examples
///
/// ```
/// use wlac_modsolve::{CheckpointedSystem, Ring};
///
/// let mut sys = CheckpointedSystem::new(Ring::new(4), 2);
/// sys.add_sparse_equation(&[(0, 1), (1, 1)], 5); // x + y = 5 (template)
/// sys.push_checkpoint();
/// sys.add_sparse_equation(&[(0, 1)], 12); // speculative: x = 12
/// assert_eq!(sys.solve().unwrap().particular(), &[12, 9]);
/// sys.pop_checkpoint();
/// sys.push_checkpoint();
/// sys.add_sparse_equation(&[(0, 1)], 3); // a different speculation
/// assert_eq!(sys.solve().unwrap().particular(), &[3, 2]);
/// sys.pop_checkpoint();
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointedSystem {
    ring: Ring,
    num_vars: usize,
    /// Reduced coefficient rows. Never mutated after insertion.
    rows: Vec<Vec<u64>>,
    rhs: Vec<u64>,
    /// `(row, col, valuation)` in insertion order.
    pivots: Vec<(usize, usize, u32)>,
    col_used: Vec<bool>,
    /// Row count at which infeasibility was first detected.
    infeasible_at: Option<usize>,
    /// Row count at which incremental reduction first failed; from there on
    /// rows are appended raw and [`Self::solve`] falls back to batch
    /// elimination (row operations preserve the solution set, so the
    /// already-reduced prefix stays valid input).
    dirty_at: Option<usize>,
    /// `(rows.len(), pivots.len())` marks.
    checkpoints: Vec<(usize, usize)>,
    /// Row buffer pool so steady-state push/pop cycles do not allocate.
    spare: Vec<Vec<u64>>,
}

impl CheckpointedSystem {
    /// Builds the incremental echelon form of an existing batch system's
    /// equations (in insertion order).
    pub fn from_linear(linear: &LinearSystem) -> Self {
        let mut system = CheckpointedSystem::new(linear.ring(), linear.num_vars());
        for (coeffs, rhs) in &linear.rows {
            system.add_equation(coeffs, *rhs);
        }
        system
    }

    /// Creates an empty system with `num_vars` variables in the given ring.
    pub fn new(ring: Ring, num_vars: usize) -> Self {
        CheckpointedSystem {
            ring,
            num_vars,
            rows: Vec::new(),
            rhs: Vec::new(),
            pivots: Vec::new(),
            col_used: vec![false; num_vars],
            infeasible_at: None,
            dirty_at: None,
            checkpoints: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// The ring the system lives in.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Number of variables (columns).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of equations inserted (including redundant all-zero rows).
    pub fn num_equations(&self) -> usize {
        self.rows.len()
    }

    /// `true` once an inserted row proved the system unsatisfiable.
    ///
    /// This is an *early* verdict — [`Self::solve`] reports the same result —
    /// and it is undone by [`Self::pop_checkpoint`] when the offending row
    /// was pushed after the checkpoint. While the system is in batch-fallback
    /// mode (see [`Self::is_incremental`]) infeasibility is only discovered
    /// by `solve`, so `false` here is not a feasibility promise.
    pub fn is_infeasible(&self) -> bool {
        self.infeasible_at.is_some()
    }

    /// `true` while every inserted row has been reduced incrementally; when
    /// `false`, solving falls back to batch elimination until the raw rows
    /// are popped.
    pub fn is_incremental(&self) -> bool {
        self.dirty_at.is_none()
    }

    /// Marks the current state; [`Self::pop_checkpoint`] restores it.
    pub fn push_checkpoint(&mut self) {
        self.checkpoints.push((self.rows.len(), self.pivots.len()));
    }

    /// Restores the state at the matching [`Self::push_checkpoint`].
    ///
    /// # Panics
    ///
    /// Panics when no checkpoint is active.
    pub fn pop_checkpoint(&mut self) {
        let (rows, pivots) = self.checkpoints.pop().expect("no checkpoint to pop");
        for (_, col, _) in self.pivots.drain(pivots..) {
            self.col_used[col] = false;
        }
        for mut row in self.rows.drain(rows..) {
            row.clear();
            self.spare.push(row);
        }
        self.rhs.truncate(rows);
        if self.infeasible_at.is_some_and(|at| at >= rows) {
            self.infeasible_at = None;
        }
        if self.dirty_at.is_some_and(|at| at >= rows) {
            self.dirty_at = None;
        }
    }

    /// Adds the equation `Σ coeffs[i]·x_i ≡ rhs (mod 2ⁿ)`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_equation(&mut self, coeffs: &[u64], rhs: u64) {
        assert_eq!(coeffs.len(), self.num_vars, "coefficient count mismatch");
        let mut row = self.fresh_row();
        for (dst, c) in row.iter_mut().zip(coeffs.iter()) {
            *dst = self.ring.reduce(*c);
        }
        self.insert_row(row, self.ring.reduce(rhs));
    }

    /// Adds the equation `Σ coeff·x_var ≡ rhs` from sparse `(var, coeff)`
    /// terms; duplicate variables accumulate.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn add_sparse_equation(&mut self, terms: &[(usize, u64)], rhs: u64) {
        let mut row = self.fresh_row();
        for (var, coeff) in terms {
            assert!(*var < self.num_vars, "variable index out of range");
            row[*var] = self.ring.add(row[*var], self.ring.reduce(*coeff));
        }
        self.insert_row(row, self.ring.reduce(rhs));
    }

    /// Adds the equation `x_var ≡ value`.
    pub fn fix_variable(&mut self, var: usize, value: u64) {
        self.add_sparse_equation(&[(var, 1)], value);
    }

    /// `true` when `x` satisfies every inserted equation (in reduced form —
    /// row operations preserve the solution set, so this is equivalent to
    /// checking the originally inserted equations).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars`.
    pub fn is_solution(&self, x: &[u64]) -> bool {
        assert_eq!(x.len(), self.num_vars, "assignment length mismatch");
        self.rows.iter().zip(self.rhs.iter()).all(|(coeffs, rhs)| {
            let mut acc = 0u64;
            for (c, v) in coeffs.iter().zip(x.iter()) {
                acc = self.ring.add(acc, self.ring.mul(*c, *v));
            }
            acc == *rhs
        })
    }

    /// Solves the current system, returning all solutions in closed form.
    ///
    /// On the incremental path this is back substitution only; elimination
    /// work happened at insertion time and is shared by every solve between
    /// checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleError`] when the system has no solution.
    pub fn solve(&self) -> Result<SolutionSet, InfeasibleError> {
        self.solve_interruptible(&mut || false).map_err(|abort| {
            debug_assert_eq!(abort, SolveAbort::Infeasible);
            InfeasibleError
        })
    }

    /// Like [`Self::solve`], but polls `is_interrupted` so a portfolio race
    /// supervisor can stop a long-running leaf solve.
    ///
    /// # Errors
    ///
    /// Returns [`SolveAbort::Infeasible`] when the system has no solution and
    /// [`SolveAbort::Interrupted`] when the poll fired first.
    pub fn solve_interruptible(
        &self,
        is_interrupted: &mut dyn FnMut() -> bool,
    ) -> Result<SolutionSet, SolveAbort> {
        if self.dirty_at.is_some() {
            // A row escaped incremental reduction: solve the (equivalent)
            // current rows from scratch.
            return batch_solve(
                self.ring,
                self.num_vars,
                self.rows.clone(),
                self.rhs.clone(),
                is_interrupted,
            );
        }
        if self.infeasible_at.is_some() {
            return Err(SolveAbort::Infeasible);
        }
        if is_interrupted() {
            return Err(SolveAbort::Interrupted);
        }
        Ok(closed_form(
            self.ring,
            self.num_vars,
            &self.rows,
            &self.rhs,
            &self.col_used,
            &self.pivots,
        ))
    }

    fn fresh_row(&mut self) -> Vec<u64> {
        match self.spare.pop() {
            Some(mut row) => {
                row.resize(self.num_vars, 0);
                row
            }
            None => vec![0; self.num_vars],
        }
    }

    /// Reduces `row` against the existing pivots and registers it (as a new
    /// pivot, a redundant zero row, or an infeasibility witness).
    fn insert_row(&mut self, mut row: Vec<u64>, mut rhs: u64) {
        let ring = self.ring;
        if self.dirty_at.is_none() {
            // Reduce in pivot-insertion order: pivot k's row is zero in all
            // earlier pivot columns, so a cleared column never re-fills.
            for &(prow, pcol, pv) in &self.pivots {
                let e = row[pcol];
                if e == 0 {
                    continue;
                }
                let ve = ring.valuation(e).expect("non-zero");
                if ve < pv {
                    // The new row would be a *better* pivot for this column;
                    // rewriting history is not worth the complexity (this
                    // needs a positive-valuation pivot first, which datapath
                    // islands essentially never produce). Fall back to batch
                    // solves until this row is popped.
                    self.dirty_at = Some(self.rows.len());
                    break;
                }
                let factor = e >> pv;
                let pivot_row = &self.rows[prow];
                for (dst, src) in row.iter_mut().zip(pivot_row.iter()) {
                    *dst = ring.sub(*dst, ring.mul(factor, *src));
                }
                rhs = ring.sub(rhs, ring.mul(factor, self.rhs[prow]));
            }
        }
        if self.dirty_at.is_none() {
            // Choose this row's pivot: minimal 2-adic valuation among unused
            // columns (ensures every other entry is divisible by the pivot).
            let mut best: Option<(usize, u32)> = None;
            for (j, used) in self.col_used.iter().enumerate() {
                if *used || row[j] == 0 {
                    continue;
                }
                let v = ring.valuation(row[j]).expect("non-zero");
                if best.map(|(_, bv)| v < bv).unwrap_or(true) {
                    best = Some((j, v));
                }
            }
            match best {
                None => {
                    // All-zero on the left: redundant, or an infeasibility proof.
                    if rhs != 0 && self.infeasible_at.is_none() {
                        self.infeasible_at = Some(self.rows.len());
                    }
                }
                Some((j, v)) => {
                    let (odd, _) = ring.odd_part(row[j]);
                    let inv = ring.inverse_odd(odd).expect("odd part invertible");
                    for c in row.iter_mut() {
                        *c = ring.mul(*c, inv);
                    }
                    rhs = ring.mul(rhs, inv);
                    // 2^v·x_j + … = rhs is solvable iff 2^v divides rhs.
                    if v > 0
                        && rhs != 0
                        && ring.valuation(rhs).expect("non-zero") < v
                        && self.infeasible_at.is_none()
                    {
                        self.infeasible_at = Some(self.rows.len());
                    }
                    self.pivots.push((self.rows.len(), j, v));
                    self.col_used[j] = true;
                }
            }
        }
        self.rows.push(row);
        self.rhs.push(rhs);
    }
}

/// All solutions of a linear system in the closed form `x = x0 + N·f`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionSet {
    ring: Ring,
    num_vars: usize,
    particular: Vec<u64>,
    /// `basis[k][var]` is the coefficient of free variable `f_k` in `x_var`
    /// (the `k`-th column of the null matrix `N`).
    basis: Vec<Vec<u64>>,
    log2_count: u32,
}

impl SolutionSet {
    /// The ring the solutions live in.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The particular solution `x0`.
    pub fn particular(&self) -> &[u64] {
        &self.particular
    }

    /// Number of free variables in `f`.
    pub fn num_free(&self) -> usize {
        self.basis.len()
    }

    /// Columns of the null matrix `N`: `null_matrix()[k][var]` is the
    /// coefficient of free variable `k` in variable `var`.
    pub fn null_matrix(&self) -> &[Vec<u64>] {
        &self.basis
    }

    /// Base-2 logarithm of the number of distinct solutions.
    pub fn log2_count(&self) -> u32 {
        self.log2_count
    }

    /// Instantiates the closed form for the given free-variable values.
    ///
    /// # Panics
    ///
    /// Panics if `free.len() != num_free()`.
    pub fn instantiate(&self, free: &[u64]) -> Vec<u64> {
        assert_eq!(free.len(), self.basis.len(), "free variable count mismatch");
        let mut x = self.particular.clone();
        for (k, f) in free.iter().enumerate() {
            for (var, coeff) in self.basis[k].iter().enumerate() {
                x[var] = self.ring.add(x[var], self.ring.mul(*coeff, *f));
            }
        }
        x
    }

    /// Iterates over solutions by counting through free-variable assignments
    /// (lexicographically, each free variable over the full ring).
    ///
    /// The iterator is unbounded in practice for systems with many free
    /// variables — callers are expected to `take(limit)`.
    pub fn iter_solutions(&self) -> SolutionIter<'_> {
        SolutionIter {
            set: self,
            current: vec![0; self.basis.len()],
            done: false,
        }
    }
}

/// Iterator over the solutions of a [`SolutionSet`].
#[derive(Debug, Clone)]
pub struct SolutionIter<'a> {
    set: &'a SolutionSet,
    current: Vec<u64>,
    done: bool,
}

impl Iterator for SolutionIter<'_> {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.done {
            return None;
        }
        let out = self.set.instantiate(&self.current);
        // Advance the mixed-radix counter.
        let max = self.set.ring.mask();
        let mut idx = 0;
        loop {
            if idx == self.current.len() {
                self.done = true;
                break;
            }
            if self.current[idx] == max {
                self.current[idx] = 0;
                idx += 1;
            } else {
                self.current[idx] += 1;
                break;
            }
        }
        if self.current.is_empty() {
            self.done = true;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_two_by_two() {
        // Section 4.1: [[1,1],[2,7]]·[x,y] = [5,4] over 3-bit vectors.
        let mut sys = LinearSystem::new(Ring::new(3), 2);
        sys.add_equation(&[1, 1], 5);
        sys.add_equation(&[2, 7], 4);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.particular(), &[3, 2]);
        assert_eq!(sol.num_free(), 0);
        assert_eq!(sol.log2_count(), 0);
        assert!(sys.is_solution(&[3, 2]));
        // There is no other solution.
        let all: Vec<_> = sol.iter_solutions().collect();
        assert_eq!(all, vec![vec![3, 2]]);
    }

    #[test]
    fn paper_intermediate_elimination_form() {
        // After eliminating x the paper reaches 5y ≡ 2 (mod 8) ⇒ y = 2 via
        // the multiplicative inverse of 5.
        let mut sys = LinearSystem::new(Ring::new(3), 1);
        sys.add_equation(&[5], 2);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.particular(), &[2]);
    }

    #[test]
    fn underdetermined_system_has_free_variables() {
        // x + y ≡ 5 (mod 16): 16 solutions, one free variable.
        let ring = Ring::new(4);
        let mut sys = LinearSystem::new(ring, 2);
        sys.add_equation(&[1, 1], 5);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.num_free(), 1);
        assert_eq!(sol.log2_count(), 4);
        for x in sol.iter_solutions().take(16) {
            assert!(sys.is_solution(&x));
        }
    }

    #[test]
    fn even_pivot_contributes_extra_freedom() {
        // 2x ≡ 6 (mod 16): solutions are x = 3 + 8t, i.e. {3, 11}.
        let mut sys = LinearSystem::new(Ring::new(4), 1);
        sys.add_equation(&[2], 6);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.log2_count(), 1);
        let mut xs: Vec<u64> = sol.iter_solutions().map(|v| v[0]).collect();
        xs.sort();
        xs.dedup();
        assert_eq!(xs, vec![3, 11]);
    }

    #[test]
    fn interrupted_elimination_is_distinguished_from_infeasible() {
        let mut sys = LinearSystem::new(Ring::new(8), 2);
        sys.add_equation(&[1, 1], 5);
        sys.add_equation(&[2, 7], 4);
        assert_eq!(
            sys.solve_with_interrupt(&mut || true),
            Err(SolveAbort::Interrupted)
        );
        assert!(sys.solve_with_interrupt(&mut || false).is_ok());
        // An infeasible system still reports Infeasible when not interrupted.
        let mut bad = LinearSystem::new(Ring::new(4), 1);
        bad.add_equation(&[2], 5);
        assert_eq!(
            bad.solve_with_interrupt(&mut || false),
            Err(SolveAbort::Infeasible)
        );
    }

    #[test]
    fn infeasible_by_parity() {
        // 2x ≡ 5 (mod 16) has no solution.
        let mut sys = LinearSystem::new(Ring::new(4), 1);
        sys.add_equation(&[2], 5);
        assert_eq!(sys.solve(), Err(InfeasibleError));
    }

    #[test]
    fn inconsistent_rows_detected() {
        let mut sys = LinearSystem::new(Ring::new(4), 2);
        sys.add_equation(&[1, 1], 3);
        sys.add_equation(&[2, 2], 7); // 2·(x+y) would be 6, not 7
        assert_eq!(sys.solve(), Err(InfeasibleError));
    }

    #[test]
    fn fix_variable_is_an_equation() {
        let mut sys = LinearSystem::new(Ring::new(4), 2);
        sys.add_equation(&[1, 1], 9);
        sys.fix_variable(0, 12);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.particular(), &[12, 13]);
    }

    #[test]
    fn modular_solution_exists_where_integral_does_not() {
        // The paper's key observation: [[1,1],[2,7]]x = [5,4] is integrally
        // unsolvable (x = 31/5) but modularly solvable. A "false negative"
        // integral reasoning would prune a real counter-example.
        let mut sys = LinearSystem::new(Ring::new(3), 2);
        sys.add_equation(&[1, 1], 5);
        sys.add_equation(&[2, 7], 4);
        assert!(sys.solve().is_ok());
        // Sanity: 5·(31/5) isn't an integer pair, checked symbolically: the
        // integral determinant method gives x = 31/5 which is not integral.
        // (Nothing to execute here; the integral baseline crate demonstrates
        // the false negative end-to-end.)
    }

    /// Exhaustive cross-check against brute force for every 2x2 and a set of
    /// 2x3 systems over small rings.
    #[test]
    fn brute_force_cross_check_small_systems() {
        let ring = Ring::new(3);
        let modulus = ring.modulus() as u64;
        let mut checked = 0u64;
        for a00 in 0..modulus {
            for a01 in 0..modulus {
                for rhs0 in [0u64, 3, 6] {
                    for a10 in [0u64, 2, 5] {
                        for a11 in [1u64, 4] {
                            for rhs1 in [1u64, 7] {
                                let mut sys = LinearSystem::new(ring, 2);
                                sys.add_equation(&[a00, a01], rhs0);
                                sys.add_equation(&[a10, a11], rhs1);
                                let brute: Vec<Vec<u64>> = (0..modulus)
                                    .flat_map(|x| {
                                        (0..modulus).map(move |y| vec![x, y]).collect::<Vec<_>>()
                                    })
                                    .filter(|xy| sys.is_solution(xy))
                                    .collect();
                                match sys.solve() {
                                    Err(_) => assert!(
                                        brute.is_empty(),
                                        "solver said infeasible but {brute:?} solve [{a00},{a01};{a10},{a11}]=[{rhs0},{rhs1}]"
                                    ),
                                    Ok(sol) => {
                                        assert!(!brute.is_empty());
                                        assert_eq!(
                                            1u64 << sol.log2_count(),
                                            brute.len() as u64,
                                            "count mismatch for [{a00},{a01};{a10},{a11}]=[{rhs0},{rhs1}]"
                                        );
                                        let mut got: Vec<Vec<u64>> =
                                            sol.iter_solutions().collect();
                                        got.sort();
                                        got.dedup();
                                        let mut want = brute.clone();
                                        want.sort();
                                        assert_eq!(got, want);
                                    }
                                }
                                checked += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(checked > 500);
    }

    #[test]
    fn checkpointed_matches_batch_on_template_plus_value_rows() {
        // The structural template x + y + z = 6 / y - z = 2 (mod 16) with a
        // rotating set of speculative value rows: every checkpointed solve
        // must agree with a from-scratch batch solve of the same equations.
        let ring = Ring::new(4);
        let mut inc = CheckpointedSystem::new(ring, 3);
        inc.add_sparse_equation(&[(0, 1), (1, 1), (2, 1)], 6);
        inc.add_sparse_equation(&[(1, 1), (2, ring.neg(1))], 2);
        for fixed in 0..16u64 {
            inc.push_checkpoint();
            inc.fix_variable(0, fixed);
            let mut batch = LinearSystem::new(ring, 3);
            batch.add_equation(&[1, 1, 1], 6);
            batch.add_equation(&[0, 1, ring.neg(1)], 2);
            batch.fix_variable(0, fixed);
            match (inc.solve(), batch.solve()) {
                (Ok(got), Ok(want)) => {
                    assert_eq!(got.log2_count(), want.log2_count(), "fixed = {fixed}");
                    let x = got.instantiate(&vec![0; got.num_free()]);
                    assert!(batch.is_solution(&x), "fixed = {fixed}: {x:?}");
                    assert!(inc.is_solution(&x));
                }
                // x even determines 2y = 8 - x; odd x is infeasible mod 16.
                (Err(_), Err(_)) => assert_eq!(fixed % 2, 1, "fixed = {fixed}"),
                (got, want) => {
                    panic!("feasibility disagreement for x = {fixed}: {got:?} vs {want:?}")
                }
            }
            inc.pop_checkpoint();
        }
    }

    #[test]
    fn checkpoint_rollback_interleaves_push_solve_pop() {
        // Mirrors the PR 2 delta-trail regression test: nested speculative
        // levels with solves at every depth; each pop must restore the exact
        // solution set of the outer level.
        let ring = Ring::new(5);
        let mut sys = CheckpointedSystem::new(ring, 4);
        sys.add_sparse_equation(&[(0, 1), (1, 1)], 10); // a + b = 10
        sys.add_sparse_equation(&[(2, 1), (3, ring.neg(1))], 1); // c - d = 1
        let base = sys.solve().unwrap();
        assert_eq!(base.num_free(), 2);

        sys.push_checkpoint(); // level 1: a = 3
        sys.fix_variable(0, 3);
        let l1 = sys.solve().unwrap();
        assert_eq!(l1.particular()[0], 3);
        assert_eq!(l1.particular()[1], 7);
        assert_eq!(l1.num_free(), 1);

        sys.push_checkpoint(); // level 2: d = 5 (and an infeasible probe)
        sys.fix_variable(3, 5);
        let l2 = sys.solve().unwrap();
        assert_eq!(l2.particular()[2], 6);
        assert_eq!(l2.num_free(), 0);
        sys.push_checkpoint(); // level 3: contradict c
        sys.fix_variable(2, 0);
        assert!(sys.is_infeasible());
        assert_eq!(sys.solve(), Err(InfeasibleError));
        sys.pop_checkpoint();
        assert!(!sys.is_infeasible());
        let l2_again = sys.solve().unwrap();
        assert_eq!(l2_again.particular(), l2.particular());

        sys.pop_checkpoint(); // back to level 1
        let l1_again = sys.solve().unwrap();
        assert_eq!(l1_again.particular(), l1.particular());
        assert_eq!(l1_again.num_free(), 1);

        sys.pop_checkpoint(); // back to the template
        let base_again = sys.solve().unwrap();
        assert_eq!(base_again.num_free(), 2);
        assert_eq!(base_again.particular(), base.particular());
    }

    #[test]
    fn low_valuation_row_after_even_pivot_falls_back_to_batch() {
        // Template 2x ≡ 6 (mod 16) pivots with valuation 1; pushing x ≡ 11
        // cannot be reduced incrementally (valuation 0 < 1) and must flip the
        // system into batch mode — and still produce the right answer.
        let ring = Ring::new(4);
        let mut sys = CheckpointedSystem::new(ring, 1);
        sys.add_equation(&[2], 6); // x ∈ {3, 11}
        assert!(sys.is_incremental());
        sys.push_checkpoint();
        sys.fix_variable(0, 11);
        assert!(!sys.is_incremental());
        let sol = sys.solve().expect("11 is a solution of 2x = 6 mod 16");
        assert_eq!(sol.particular(), &[11]);
        sys.pop_checkpoint();
        assert!(sys.is_incremental());
        // And an infeasible member of the coset is rejected by the fallback.
        sys.push_checkpoint();
        sys.fix_variable(0, 4);
        assert_eq!(sys.solve(), Err(InfeasibleError));
        sys.pop_checkpoint();
        let mut back: Vec<u64> = sys
            .solve()
            .unwrap()
            .iter_solutions()
            .map(|v| v[0])
            .collect();
        back.sort();
        back.dedup();
        assert_eq!(back, vec![3, 11]);
    }

    #[test]
    fn checkpointed_differential_against_batch_small_systems() {
        // Insert the same equation sets into a CheckpointedSystem (template +
        // one checkpointed row) and a LinearSystem; feasibility and solution
        // counts must agree everywhere, and particular solutions must satisfy
        // both systems.
        let ring = Ring::new(3);
        let modulus = ring.modulus() as u64;
        let mut checked = 0u32;
        for a00 in 0..modulus {
            for a01 in [1u64, 2, 5] {
                for rhs0 in 0..modulus {
                    for a10 in [0u64, 2, 4, 7] {
                        for rhs1 in [0u64, 3, 5] {
                            let mut inc = CheckpointedSystem::new(ring, 2);
                            inc.add_equation(&[a00, a01], rhs0);
                            inc.push_checkpoint();
                            inc.add_equation(&[a10, 1], rhs1);
                            let mut batch = LinearSystem::new(ring, 2);
                            batch.add_equation(&[a00, a01], rhs0);
                            batch.add_equation(&[a10, 1], rhs1);
                            match (inc.solve(), batch.solve()) {
                                (Ok(got), Ok(want)) => {
                                    assert_eq!(
                                        got.log2_count(),
                                        want.log2_count(),
                                        "[{a00},{a01};{a10},1]=[{rhs0},{rhs1}]"
                                    );
                                    let x = got.instantiate(&vec![0; got.num_free()]);
                                    assert!(batch.is_solution(&x));
                                }
                                (Err(_), Err(_)) => {}
                                (got, want) => panic!(
                                    "feasibility disagreement for \
                                     [{a00},{a01};{a10},1]=[{rhs0},{rhs1}]: \
                                     incremental {got:?} vs batch {want:?}"
                                ),
                            }
                            inc.pop_checkpoint();
                            assert_eq!(inc.num_equations(), 1);
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 500);
    }
}
