//! Linear bit-vector constraint solving over ℤ/2ⁿℤ.
//!
//! The paper's linear constraint solver (Section 4.1) transforms a linear
//! datapath sub-circuit into a matrix equation `A·x = b` over the modular
//! number system and finds **all** solutions in the closed form
//! `x = x0 + N·f`, where `x0` is a particular solution, `N` the *null matrix*
//! and `f` a column of free variables.
//!
//! [`LinearSystem::solve`] implements this with Gauss–Jordan elimination
//! extended by the multiplicative-inverse-with-product concept: pivots are
//! chosen with minimal 2-adic valuation (complete pivoting), scaled by the
//! inverse of their odd part, and rows below are eliminated. Back
//! substitution then produces the closed form; pivots with valuation `v > 0`
//! contribute an extra degree of freedom `2^{n-v}·t` exactly as in Theorem 2.

// Gaussian elimination reads clearest with explicit row/column indices.
#![allow(clippy::needless_range_loop)]

use crate::modint::Ring;
use std::error::Error;
use std::fmt;

/// A system of linear equations over ℤ/2ⁿℤ.
///
/// # Examples
///
/// The worked example of Section 4.1: `x + y = 5`, `2x + 7y = 4` over 3-bit
/// vectors has the (unique) solution `(x, y) = (3, 2)` even though it has no
/// integral solution.
///
/// ```
/// use wlac_modsolve::{LinearSystem, Ring};
///
/// # fn main() -> Result<(), wlac_modsolve::InfeasibleError> {
/// let mut sys = LinearSystem::new(Ring::new(3), 2);
/// sys.add_equation(&[1, 1], 5);
/// sys.add_equation(&[2, 7], 4);
/// let sol = sys.solve()?;
/// assert_eq!(sol.particular(), &[3, 2]);
/// assert_eq!(sol.num_free(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearSystem {
    ring: Ring,
    num_vars: usize,
    rows: Vec<(Vec<u64>, u64)>,
}

/// Error returned when a linear system has no solution in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfeasibleError;

impl fmt::Display for InfeasibleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear system has no solution modulo 2^n")
    }
}

impl Error for InfeasibleError {}

/// Why an interruptible solve ended without a solution set.
///
/// `wlac-modsolve` has no dependency on the checker's `CancelToken`, so
/// interruption is expressed as a plain polling closure; `Interrupted` is the
/// cooperative-cancellation outcome, distinct from a genuine `Infeasible`
/// proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveAbort {
    /// The system has no solution in the modular ring.
    Infeasible,
    /// The interrupt poll returned `true` before a conclusion was reached.
    Interrupted,
}

impl fmt::Display for SolveAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveAbort::Infeasible => write!(f, "{InfeasibleError}"),
            SolveAbort::Interrupted => write!(f, "linear solve interrupted"),
        }
    }
}

impl Error for SolveAbort {}

impl LinearSystem {
    /// Creates an empty system with `num_vars` variables in the given ring.
    pub fn new(ring: Ring, num_vars: usize) -> Self {
        LinearSystem {
            ring,
            num_vars,
            rows: Vec::new(),
        }
    }

    /// The ring the system lives in.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Number of variables (columns).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of equations (rows).
    pub fn num_equations(&self) -> usize {
        self.rows.len()
    }

    /// Adds the equation `Σ coeffs[i]·x_i ≡ rhs (mod 2ⁿ)`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_equation(&mut self, coeffs: &[u64], rhs: u64) {
        assert_eq!(coeffs.len(), self.num_vars, "coefficient count mismatch");
        let row = coeffs.iter().map(|c| self.ring.reduce(*c)).collect();
        self.rows.push((row, self.ring.reduce(rhs)));
    }

    /// Adds the equation `x_var ≡ value`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn fix_variable(&mut self, var: usize, value: u64) {
        assert!(var < self.num_vars, "variable index out of range");
        let mut coeffs = vec![0; self.num_vars];
        coeffs[var] = 1;
        self.add_equation(&coeffs, value);
    }

    /// `true` when `x` satisfies every equation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars`.
    pub fn is_solution(&self, x: &[u64]) -> bool {
        assert_eq!(x.len(), self.num_vars, "assignment length mismatch");
        self.rows.iter().all(|(coeffs, rhs)| {
            let mut acc = 0u64;
            for (c, v) in coeffs.iter().zip(x.iter()) {
                acc = self.ring.add(acc, self.ring.mul(*c, *v));
            }
            acc == *rhs
        })
    }

    /// Solves the system, returning all solutions in closed form.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleError`] when the system has no solution in the
    /// modular ring. (Unlike an integral solver this never reports a false
    /// negative caused by wrap-around — the paper's motivating observation.)
    pub fn solve(&self) -> Result<SolutionSet, InfeasibleError> {
        self.solve_with_interrupt(&mut || false).map_err(|abort| {
            debug_assert_eq!(abort, SolveAbort::Infeasible);
            InfeasibleError
        })
    }

    /// Like [`LinearSystem::solve`], but polls `is_interrupted` once per
    /// Gauss–Jordan elimination round so a race supervisor (e.g. the
    /// portfolio engine's `CancelToken`) can stop a long-running leaf solve.
    ///
    /// # Errors
    ///
    /// Returns [`SolveAbort::Infeasible`] when the system has no solution and
    /// [`SolveAbort::Interrupted`] when the poll fired first.
    pub fn solve_with_interrupt(
        &self,
        is_interrupted: &mut dyn FnMut() -> bool,
    ) -> Result<SolutionSet, SolveAbort> {
        let ring = self.ring;
        let nv = self.num_vars;
        let m = self.rows.len();
        let mut a: Vec<Vec<u64>> = self.rows.iter().map(|(c, _)| c.clone()).collect();
        let mut b: Vec<u64> = self.rows.iter().map(|(_, r)| *r).collect();
        let mut col_used = vec![false; nv];
        let mut pivots: Vec<(usize, usize, u32)> = Vec::new();

        let mut r = 0usize;
        while r < m {
            if is_interrupted() {
                return Err(SolveAbort::Interrupted);
            }
            // Complete pivoting: pick the entry with the smallest 2-adic
            // valuation among the remaining rows and unused columns.
            let mut best: Option<(usize, usize, u32)> = None;
            for i in r..m {
                for (j, used) in col_used.iter().enumerate() {
                    if *used || a[i][j] == 0 {
                        continue;
                    }
                    let v = ring.valuation(a[i][j]).expect("non-zero");
                    if best.map(|(_, _, bv)| v < bv).unwrap_or(true) {
                        best = Some((i, j, v));
                    }
                }
            }
            let Some((pi, pj, v)) = best else { break };
            a.swap(r, pi);
            b.swap(r, pi);
            // Scale the pivot row by the inverse of the pivot's odd part so
            // the pivot becomes exactly 2^v.
            let (odd, _) = ring.odd_part(a[r][pj]);
            let inv = ring.inverse_odd(odd).expect("odd part invertible");
            for c in 0..nv {
                a[r][c] = ring.mul(a[r][c], inv);
            }
            b[r] = ring.mul(b[r], inv);
            // Eliminate the pivot column below the pivot. Every entry below
            // has valuation >= v by the pivot choice, so the factor is exact.
            for i in r + 1..m {
                let e = a[i][pj];
                if e == 0 {
                    continue;
                }
                let factor = e >> v;
                for c in 0..nv {
                    let sub = ring.mul(factor, a[r][c]);
                    a[i][c] = ring.sub(a[i][c], sub);
                }
                b[i] = ring.sub(b[i], ring.mul(factor, b[r]));
            }
            col_used[pj] = true;
            pivots.push((r, pj, v));
            r += 1;
        }

        // Rows without a pivot are all-zero on the left; their right-hand
        // side must be zero.
        for i in r..m {
            if b[i] != 0 {
                return Err(SolveAbort::Infeasible);
            }
        }
        // Each pivot equation 2^v·x_j + Σ (coeffs with valuation >= v)·x = b
        // is solvable iff 2^v divides b — independent of the free variables.
        for (row, _, v) in &pivots {
            if *v > 0 {
                match ring.valuation(b[*row]) {
                    Some(bv) if bv < *v => return Err(SolveAbort::Infeasible),
                    _ => {}
                }
            }
        }

        // Assign parameter slots: one per unused column, plus one per pivot
        // with positive valuation (Theorem 2's extra freedom).
        let free_cols: Vec<usize> = (0..nv).filter(|j| !col_used[*j]).collect();
        let extra_pivots: Vec<usize> = (0..pivots.len()).filter(|i| pivots[*i].2 > 0).collect();
        let num_params = free_cols.len() + extra_pivots.len();

        // Affine form per variable: constant + Σ coeff_k · f_k.
        let mut affine: Vec<(u64, Vec<u64>)> = vec![(0, vec![0; num_params]); nv];
        for (k, j) in free_cols.iter().enumerate() {
            affine[*j].1[k] = 1;
        }
        let mut log2_count = (free_cols.len() as u32) * ring.width();

        for (pivot_idx, (row, j, v)) in pivots.iter().enumerate().rev() {
            let shift = *v;
            let mut const_term = b[*row] >> shift;
            let mut coeffs = vec![0u64; num_params];
            for c in 0..nv {
                if c == *j || a[*row][c] == 0 {
                    continue;
                }
                let ac = a[*row][c] >> shift;
                let (x_const, x_coeffs) = &affine[c];
                const_term = ring.sub(const_term, ring.mul(ac, *x_const));
                for (dst, src) in coeffs.iter_mut().zip(x_coeffs.iter()) {
                    *dst = ring.sub(*dst, ring.mul(ac, *src));
                }
            }
            if shift > 0 {
                let param = free_cols.len()
                    + extra_pivots
                        .iter()
                        .position(|p| *p == pivot_idx)
                        .expect("registered extra pivot");
                let step = if shift >= ring.width() {
                    0
                } else {
                    1u64 << (ring.width() - shift)
                };
                coeffs[param] = ring.add(coeffs[param], step);
                log2_count += shift;
            }
            affine[*j] = (ring.reduce(const_term), coeffs);
        }

        let particular: Vec<u64> = affine.iter().map(|(c, _)| *c).collect();
        let mut basis = vec![vec![0u64; nv]; num_params];
        for (var, (_, coeffs)) in affine.iter().enumerate() {
            for (k, coeff) in coeffs.iter().enumerate() {
                basis[k][var] = *coeff;
            }
        }

        Ok(SolutionSet {
            ring,
            num_vars: nv,
            particular,
            basis,
            log2_count,
        })
    }
}

/// All solutions of a linear system in the closed form `x = x0 + N·f`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionSet {
    ring: Ring,
    num_vars: usize,
    particular: Vec<u64>,
    /// `basis[k][var]` is the coefficient of free variable `f_k` in `x_var`
    /// (the `k`-th column of the null matrix `N`).
    basis: Vec<Vec<u64>>,
    log2_count: u32,
}

impl SolutionSet {
    /// The ring the solutions live in.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The particular solution `x0`.
    pub fn particular(&self) -> &[u64] {
        &self.particular
    }

    /// Number of free variables in `f`.
    pub fn num_free(&self) -> usize {
        self.basis.len()
    }

    /// Columns of the null matrix `N`: `null_matrix()[k][var]` is the
    /// coefficient of free variable `k` in variable `var`.
    pub fn null_matrix(&self) -> &[Vec<u64>] {
        &self.basis
    }

    /// Base-2 logarithm of the number of distinct solutions.
    pub fn log2_count(&self) -> u32 {
        self.log2_count
    }

    /// Instantiates the closed form for the given free-variable values.
    ///
    /// # Panics
    ///
    /// Panics if `free.len() != num_free()`.
    pub fn instantiate(&self, free: &[u64]) -> Vec<u64> {
        assert_eq!(free.len(), self.basis.len(), "free variable count mismatch");
        let mut x = self.particular.clone();
        for (k, f) in free.iter().enumerate() {
            for (var, coeff) in self.basis[k].iter().enumerate() {
                x[var] = self.ring.add(x[var], self.ring.mul(*coeff, *f));
            }
        }
        x
    }

    /// Iterates over solutions by counting through free-variable assignments
    /// (lexicographically, each free variable over the full ring).
    ///
    /// The iterator is unbounded in practice for systems with many free
    /// variables — callers are expected to `take(limit)`.
    pub fn iter_solutions(&self) -> SolutionIter<'_> {
        SolutionIter {
            set: self,
            current: vec![0; self.basis.len()],
            done: false,
        }
    }
}

/// Iterator over the solutions of a [`SolutionSet`].
#[derive(Debug, Clone)]
pub struct SolutionIter<'a> {
    set: &'a SolutionSet,
    current: Vec<u64>,
    done: bool,
}

impl Iterator for SolutionIter<'_> {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.done {
            return None;
        }
        let out = self.set.instantiate(&self.current);
        // Advance the mixed-radix counter.
        let max = self.set.ring.mask();
        let mut idx = 0;
        loop {
            if idx == self.current.len() {
                self.done = true;
                break;
            }
            if self.current[idx] == max {
                self.current[idx] = 0;
                idx += 1;
            } else {
                self.current[idx] += 1;
                break;
            }
        }
        if self.current.is_empty() {
            self.done = true;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_two_by_two() {
        // Section 4.1: [[1,1],[2,7]]·[x,y] = [5,4] over 3-bit vectors.
        let mut sys = LinearSystem::new(Ring::new(3), 2);
        sys.add_equation(&[1, 1], 5);
        sys.add_equation(&[2, 7], 4);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.particular(), &[3, 2]);
        assert_eq!(sol.num_free(), 0);
        assert_eq!(sol.log2_count(), 0);
        assert!(sys.is_solution(&[3, 2]));
        // There is no other solution.
        let all: Vec<_> = sol.iter_solutions().collect();
        assert_eq!(all, vec![vec![3, 2]]);
    }

    #[test]
    fn paper_intermediate_elimination_form() {
        // After eliminating x the paper reaches 5y ≡ 2 (mod 8) ⇒ y = 2 via
        // the multiplicative inverse of 5.
        let mut sys = LinearSystem::new(Ring::new(3), 1);
        sys.add_equation(&[5], 2);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.particular(), &[2]);
    }

    #[test]
    fn underdetermined_system_has_free_variables() {
        // x + y ≡ 5 (mod 16): 16 solutions, one free variable.
        let ring = Ring::new(4);
        let mut sys = LinearSystem::new(ring, 2);
        sys.add_equation(&[1, 1], 5);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.num_free(), 1);
        assert_eq!(sol.log2_count(), 4);
        for x in sol.iter_solutions().take(16) {
            assert!(sys.is_solution(&x));
        }
    }

    #[test]
    fn even_pivot_contributes_extra_freedom() {
        // 2x ≡ 6 (mod 16): solutions are x = 3 + 8t, i.e. {3, 11}.
        let mut sys = LinearSystem::new(Ring::new(4), 1);
        sys.add_equation(&[2], 6);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.log2_count(), 1);
        let mut xs: Vec<u64> = sol.iter_solutions().map(|v| v[0]).collect();
        xs.sort();
        xs.dedup();
        assert_eq!(xs, vec![3, 11]);
    }

    #[test]
    fn interrupted_elimination_is_distinguished_from_infeasible() {
        let mut sys = LinearSystem::new(Ring::new(8), 2);
        sys.add_equation(&[1, 1], 5);
        sys.add_equation(&[2, 7], 4);
        assert_eq!(
            sys.solve_with_interrupt(&mut || true),
            Err(SolveAbort::Interrupted)
        );
        assert!(sys.solve_with_interrupt(&mut || false).is_ok());
        // An infeasible system still reports Infeasible when not interrupted.
        let mut bad = LinearSystem::new(Ring::new(4), 1);
        bad.add_equation(&[2], 5);
        assert_eq!(
            bad.solve_with_interrupt(&mut || false),
            Err(SolveAbort::Infeasible)
        );
    }

    #[test]
    fn infeasible_by_parity() {
        // 2x ≡ 5 (mod 16) has no solution.
        let mut sys = LinearSystem::new(Ring::new(4), 1);
        sys.add_equation(&[2], 5);
        assert_eq!(sys.solve(), Err(InfeasibleError));
    }

    #[test]
    fn inconsistent_rows_detected() {
        let mut sys = LinearSystem::new(Ring::new(4), 2);
        sys.add_equation(&[1, 1], 3);
        sys.add_equation(&[2, 2], 7); // 2·(x+y) would be 6, not 7
        assert_eq!(sys.solve(), Err(InfeasibleError));
    }

    #[test]
    fn fix_variable_is_an_equation() {
        let mut sys = LinearSystem::new(Ring::new(4), 2);
        sys.add_equation(&[1, 1], 9);
        sys.fix_variable(0, 12);
        let sol = sys.solve().unwrap();
        assert_eq!(sol.particular(), &[12, 13]);
    }

    #[test]
    fn modular_solution_exists_where_integral_does_not() {
        // The paper's key observation: [[1,1],[2,7]]x = [5,4] is integrally
        // unsolvable (x = 31/5) but modularly solvable. A "false negative"
        // integral reasoning would prune a real counter-example.
        let mut sys = LinearSystem::new(Ring::new(3), 2);
        sys.add_equation(&[1, 1], 5);
        sys.add_equation(&[2, 7], 4);
        assert!(sys.solve().is_ok());
        // Sanity: 5·(31/5) isn't an integer pair, checked symbolically: the
        // integral determinant method gives x = 31/5 which is not integral.
        // (Nothing to execute here; the integral baseline crate demonstrates
        // the false negative end-to-end.)
    }

    /// Exhaustive cross-check against brute force for every 2x2 and a set of
    /// 2x3 systems over small rings.
    #[test]
    fn brute_force_cross_check_small_systems() {
        let ring = Ring::new(3);
        let modulus = ring.modulus() as u64;
        let mut checked = 0u64;
        for a00 in 0..modulus {
            for a01 in 0..modulus {
                for rhs0 in [0u64, 3, 6] {
                    for a10 in [0u64, 2, 5] {
                        for a11 in [1u64, 4] {
                            for rhs1 in [1u64, 7] {
                                let mut sys = LinearSystem::new(ring, 2);
                                sys.add_equation(&[a00, a01], rhs0);
                                sys.add_equation(&[a10, a11], rhs1);
                                let brute: Vec<Vec<u64>> = (0..modulus)
                                    .flat_map(|x| {
                                        (0..modulus).map(move |y| vec![x, y]).collect::<Vec<_>>()
                                    })
                                    .filter(|xy| sys.is_solution(xy))
                                    .collect();
                                match sys.solve() {
                                    Err(_) => assert!(
                                        brute.is_empty(),
                                        "solver said infeasible but {brute:?} solve [{a00},{a01};{a10},{a11}]=[{rhs0},{rhs1}]"
                                    ),
                                    Ok(sol) => {
                                        assert!(!brute.is_empty());
                                        assert_eq!(
                                            1u64 << sol.log2_count(),
                                            brute.len() as u64,
                                            "count mismatch for [{a00},{a01};{a10},{a11}]=[{rhs0},{rhs1}]"
                                        );
                                        let mut got: Vec<Vec<u64>> =
                                            sol.iter_solutions().collect();
                                        got.sort();
                                        got.dedup();
                                        let mut want = brute.clone();
                                        want.sort();
                                        assert_eq!(got, want);
                                    }
                                }
                                checked += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(checked > 500);
    }
}
