//! Scalar arithmetic in the ring ℤ/2ⁿℤ (`1 <= n <= 64`).
//!
//! Hardware signals are fixed-width bit-vectors, so the paper's arithmetic
//! constraint solver works in the *modular* number system rather than the
//! integers. These helpers implement the scalar ring operations used by the
//! matrix solver: reduction, addition, multiplication, negation, the 2-adic
//! valuation and the multiplicative inverse of odd elements.

/// The ring ℤ/2ⁿℤ for a fixed word width `n`.
///
/// # Examples
///
/// ```
/// use wlac_modsolve::Ring;
///
/// let r = Ring::new(4); // arithmetic modulo 16
/// assert_eq!(r.mul(5, 7), 3);
/// assert_eq!(r.add(9, 11), 4);
/// assert_eq!(r.neg(1), 15);
/// assert_eq!(r.inverse_odd(3), Some(11)); // 3 * 11 = 33 ≡ 1 (mod 16)
/// assert_eq!(r.inverse_odd(6), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ring {
    width: u32,
}

impl Ring {
    /// Creates the ring ℤ/2ⁿℤ.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 64`.
    pub fn new(width: u32) -> Self {
        assert!(
            (1..=64).contains(&width),
            "modular ring width must be between 1 and 64 bits, got {width}"
        );
        Ring { width }
    }

    /// The bit width `n`.
    pub fn width(self) -> u32 {
        self.width
    }

    /// The modulus `2^n` as a `u128` (it does not fit a `u64` when `n == 64`).
    pub fn modulus(self) -> u128 {
        1u128 << self.width
    }

    /// Mask of the `n` low bits.
    pub fn mask(self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Reduces a value into the ring.
    pub fn reduce(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Reduces a `u128` into the ring.
    pub fn reduce128(self, v: u128) -> u64 {
        (v as u64) & self.mask()
    }

    /// Modular addition.
    pub fn add(self, a: u64, b: u64) -> u64 {
        self.reduce(a.wrapping_add(b))
    }

    /// Modular subtraction.
    pub fn sub(self, a: u64, b: u64) -> u64 {
        self.reduce(a.wrapping_sub(b))
    }

    /// Modular negation.
    pub fn neg(self, a: u64) -> u64 {
        self.reduce(a.wrapping_neg())
    }

    /// Modular multiplication.
    pub fn mul(self, a: u64, b: u64) -> u64 {
        self.reduce128(self.reduce(a) as u128 * self.reduce(b) as u128)
    }

    /// 2-adic valuation: the largest `m` with `2^m | a`, or `None` for `a == 0`
    /// (whose valuation is unbounded in the ring).
    pub fn valuation(self, a: u64) -> Option<u32> {
        let a = self.reduce(a);
        if a == 0 {
            None
        } else {
            Some(a.trailing_zeros())
        }
    }

    /// The greatest odd factor `a'` of a non-zero element, with `a = a'·2^m`.
    ///
    /// Returns `(a', m)`.
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0`.
    pub fn odd_part(self, a: u64) -> (u64, u32) {
        let a = self.reduce(a);
        assert!(a != 0, "zero has no odd part");
        let m = a.trailing_zeros();
        (a >> m, m)
    }

    /// Multiplicative inverse of an odd element (Definition 3 of the paper).
    ///
    /// In ℤ/2ⁿℤ only odd numbers are invertible, and their inverse is unique;
    /// returns `None` for even elements (including zero).
    pub fn inverse_odd(self, a: u64) -> Option<u64> {
        let a = self.reduce(a);
        if a & 1 == 0 {
            return None;
        }
        // Newton–Hensel iteration: x ← x·(2 − a·x) doubles the number of
        // correct low-order bits each step; 6 steps cover 64 bits.
        let mut x: u64 = 1;
        for _ in 0..6 {
            let ax = a.wrapping_mul(x);
            x = x.wrapping_mul(2u64.wrapping_sub(ax));
        }
        Some(self.reduce(x))
    }

    /// Modular exponentiation by squaring (used by tests and the nonlinear
    /// enumeration heuristics).
    pub fn pow(self, base: u64, mut exp: u64) -> u64 {
        let mut result = self.reduce(1);
        let mut base = self.reduce(base);
        while exp > 0 {
            if exp & 1 == 1 {
                result = self.mul(result, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_basic_ops() {
        let r = Ring::new(3);
        assert_eq!(r.modulus(), 8);
        assert_eq!(r.reduce(9), 1);
        assert_eq!(r.add(5, 6), 3);
        assert_eq!(r.sub(2, 5), 5);
        assert_eq!(r.neg(0), 0);
        assert_eq!(r.mul(3, 3), 1);
    }

    #[test]
    fn full_width_ring() {
        let r = Ring::new(64);
        assert_eq!(r.mask(), u64::MAX);
        assert_eq!(r.add(u64::MAX, 1), 0);
        assert_eq!(r.mul(u64::MAX, u64::MAX), 1);
    }

    #[test]
    #[should_panic(expected = "between 1 and 64")]
    fn zero_width_rejected() {
        let _ = Ring::new(0);
    }

    #[test]
    fn valuation_and_odd_part() {
        let r = Ring::new(4);
        assert_eq!(r.valuation(0), None);
        assert_eq!(r.valuation(1), Some(0));
        assert_eq!(r.valuation(12), Some(2));
        assert_eq!(r.odd_part(12), (3, 2));
        assert_eq!(r.odd_part(6), (3, 1));
        // Reduction happens first: 16 ≡ 0 (mod 16)
        assert_eq!(Ring::new(4).valuation(16), None);
    }

    #[test]
    fn inverse_of_odd_elements() {
        // The paper's example: in 3-bit vectors, 3 is its own inverse.
        let r = Ring::new(3);
        assert_eq!(r.inverse_odd(3), Some(3));
        assert_eq!(r.inverse_odd(2), None);
        for width in 1..=16u32 {
            let r = Ring::new(width);
            for a in (1..r.modulus() as u64).step_by(2) {
                let inv = r.inverse_odd(a).expect("odd elements are invertible");
                assert_eq!(r.mul(a, inv), 1, "width {width}, a {a}");
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let r = Ring::new(8);
        let mut acc = 1;
        for e in 0..10u64 {
            assert_eq!(r.pow(7, e), acc);
            acc = r.mul(acc, 7);
        }
    }
}
