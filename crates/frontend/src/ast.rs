//! Abstract syntax tree of the supported Verilog subset.

/// A parsed module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Port declarations in source order.
    pub ports: Vec<Port>,
    /// Internal wire/reg declarations.
    pub declarations: Vec<Declaration>,
    /// Continuous assignments.
    pub assigns: Vec<Assign>,
    /// Clocked always-blocks.
    pub always_blocks: Vec<AlwaysBlock>,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Direction.
    pub direction: Direction,
    /// Signal name.
    pub name: String,
    /// Width in bits.
    pub width: usize,
    /// `true` when declared as `reg`.
    pub is_reg: bool,
}

/// A `wire` or `reg` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// Signal name.
    pub name: String,
    /// Width in bits.
    pub width: usize,
    /// `true` for `reg` declarations (assignable in always-blocks).
    pub is_reg: bool,
}

/// `assign target = expr;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// Target signal name.
    pub target: String,
    /// Right-hand side.
    pub expr: Expr,
}

/// `always @(posedge clk) begin ... end`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlwaysBlock {
    /// Clock signal name.
    pub clock: String,
    /// Body statements.
    pub body: Vec<Statement>,
}

/// A statement inside an always-block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// Non-blocking assignment `target <= expr;`
    NonBlocking {
        /// Target register name.
        target: String,
        /// Assigned expression.
        expr: Expr,
    },
    /// `if (cond) ... else ...`
    If {
        /// Condition expression.
        condition: Expr,
        /// Then-branch statements.
        then_body: Vec<Statement>,
        /// Else-branch statements.
        else_body: Vec<Statement>,
    },
}

/// Binary operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
}

/// Unary operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `~` bitwise complement
    Not,
    /// `!` logical negation (reduce-or then invert)
    LogicalNot,
    /// `&` reduction AND
    ReduceAnd,
    /// `|` reduction OR
    ReduceOr,
    /// `^` reduction XOR
    ReduceXor,
}

/// Expressions of the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Signal reference.
    Identifier(String),
    /// Sized literal such as `4'b1010` or `8'd42`.
    Literal {
        /// Width in bits.
        width: usize,
        /// Value (must fit in 64 bits).
        value: u64,
    },
    /// Bit select `sig[3]` or part select `sig[7:4]`.
    Select {
        /// Base signal name.
        name: String,
        /// Most significant selected bit.
        high: usize,
        /// Least significant selected bit.
        low: usize,
    },
    /// Concatenation `{a, b, c}` (first element is most significant).
    Concat(Vec<Expr>),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conditional `cond ? a : b`.
    Conditional {
        /// Condition.
        condition: Box<Expr>,
        /// Value when the condition is true.
        then_value: Box<Expr>,
        /// Value when the condition is false.
        else_value: Box<Expr>,
    },
}
