//! Elaboration ("quick synthesis") of the parsed AST into a word-level netlist.
//!
//! Mirroring the paper's front end, no logic optimisation is performed: the
//! AST is mapped 1:1 onto word-level primitives — expressions become
//! arithmetic units, comparators and Boolean gates, `?:` and `if`/`else`
//! become multiplexor trees, and every `reg` assigned under
//! `always @(posedge clk)` becomes a D flip-flop whose next-state value is
//! the mux tree described by the block.

use crate::ast::*;
use crate::error::FrontendError;
use std::collections::{BTreeMap, HashMap};
use wlac_bv::Bv;
use wlac_netlist::{GateId, GateKind, NetId, Netlist};

#[derive(Debug, Clone, Copy)]
struct Signal {
    net: NetId,
    width: usize,
    is_reg: bool,
}

/// Parses and elaborates Verilog source into a word-level netlist.
///
/// # Errors
///
/// Returns a [`FrontendError`] for syntax errors, references to undeclared
/// signals, width-zero declarations, registers assigned outside
/// always-blocks, and similar elaboration problems.
///
/// # Examples
///
/// ```
/// let source = r#"
///     module sat_sub(input [7:0] a, input [7:0] b, output [7:0] y);
///       assign y = (a > b) ? (a - b) : 8'd0;
///     endmodule
/// "#;
/// let netlist = wlac_frontend::compile(source)?;
/// assert_eq!(netlist.name(), "sat_sub");
/// assert_eq!(netlist.inputs().len(), 2);
/// # Ok::<(), wlac_frontend::FrontendError>(())
/// ```
pub fn compile(source: &str) -> Result<Netlist, FrontendError> {
    let module = crate::parser::parse_module(source)?;
    let mut netlist = elaborate(&module)?;
    netlist.set_source_lines(source.lines().filter(|l| !l.trim().is_empty()).count());
    Ok(netlist)
}

/// Elaborates a parsed [`Module`] into a word-level netlist.
///
/// # Errors
///
/// See [`compile`].
pub fn elaborate(module: &Module) -> Result<Netlist, FrontendError> {
    Elaborator::new(module).run()
}

struct Elaborator<'a> {
    module: &'a Module,
    netlist: Netlist,
    signals: HashMap<String, Signal>,
    registers: HashMap<String, GateId>,
}

impl<'a> Elaborator<'a> {
    fn new(module: &'a Module) -> Self {
        Elaborator {
            module,
            netlist: Netlist::new(module.name.clone()),
            signals: HashMap::new(),
            registers: HashMap::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> FrontendError {
        FrontendError::new(message, 0)
    }

    fn run(mut self) -> Result<Netlist, FrontendError> {
        self.declare_signals()?;
        for assign in &self.module.assigns {
            self.elaborate_assign(assign)?;
        }
        for block in &self.module.always_blocks {
            self.elaborate_always(block)?;
        }
        // Mark the output ports.
        for port in &self.module.ports {
            if port.direction == Direction::Output {
                let signal = self.signals[&port.name];
                self.netlist.mark_output(port.name.clone(), signal.net);
            }
        }
        Ok(self.netlist)
    }

    fn declare_signals(&mut self) -> Result<(), FrontendError> {
        // Clock names never carry data; they are still declared as inputs.
        for port in &self.module.ports {
            if port.width == 0 {
                return Err(self.error(format!("port `{}` has zero width", port.name)));
            }
            let signal = match port.direction {
                Direction::Input => Signal {
                    net: self.netlist.input(port.name.clone(), port.width),
                    width: port.width,
                    is_reg: false,
                },
                Direction::Output => self.declare_internal(&port.name, port.width, port.is_reg),
            };
            if self.signals.insert(port.name.clone(), signal).is_some() {
                return Err(self.error(format!("duplicate declaration of `{}`", port.name)));
            }
        }
        for decl in &self.module.declarations {
            if decl.width == 0 {
                return Err(self.error(format!("signal `{}` has zero width", decl.name)));
            }
            if self.signals.contains_key(&decl.name) {
                return Err(self.error(format!("duplicate declaration of `{}`", decl.name)));
            }
            let signal = self.declare_internal(&decl.name, decl.width, decl.is_reg);
            self.signals.insert(decl.name.clone(), signal);
        }
        Ok(())
    }

    fn declare_internal(&mut self, name: &str, width: usize, is_reg: bool) -> Signal {
        if is_reg {
            let (q, ff) = self.netlist.dff_deferred(width, Some(Bv::zero(width)));
            self.registers.insert(name.to_string(), ff);
            Signal {
                net: q,
                width,
                is_reg: true,
            }
        } else {
            let net = self.netlist.add_named_net(width, Some(name.to_string()));
            Signal {
                net,
                width,
                is_reg: false,
            }
        }
    }

    fn lookup(&self, name: &str) -> Result<Signal, FrontendError> {
        self.signals
            .get(name)
            .copied()
            .ok_or_else(|| self.error(format!("reference to undeclared signal `{name}`")))
    }

    fn elaborate_assign(&mut self, assign: &Assign) -> Result<(), FrontendError> {
        let target = self.lookup(&assign.target)?;
        if target.is_reg {
            return Err(self.error(format!(
                "`{}` is a reg and must be assigned in an always block",
                assign.target
            )));
        }
        let value = self.expr(&assign.expr)?;
        let value = self.coerce(value, target.width);
        self.netlist
            .add_gate(GateKind::Buf, vec![value], target.net)
            .map_err(|e| self.error(format!("cannot drive `{}`: {e}", assign.target)))?;
        Ok(())
    }

    fn elaborate_always(&mut self, block: &AlwaysBlock) -> Result<(), FrontendError> {
        // The clock must at least be a declared signal.
        self.lookup(&block.clock)?;
        // Start from "hold": every register keeps its value.
        let mut current: BTreeMap<String, NetId> = self
            .signals
            .iter()
            .filter(|(_, s)| s.is_reg)
            .map(|(name, s)| (name.clone(), s.net))
            .collect();
        self.apply_statements(&block.body, &mut current)?;
        for (name, next) in current {
            let signal = self.signals[&name];
            if next != signal.net {
                let ff = self.registers[&name];
                self.netlist.connect_dff_data(ff, next);
            }
        }
        Ok(())
    }

    fn apply_statements(
        &mut self,
        statements: &[Statement],
        current: &mut BTreeMap<String, NetId>,
    ) -> Result<(), FrontendError> {
        for statement in statements {
            match statement {
                Statement::NonBlocking { target, expr } => {
                    let signal = self.lookup(target)?;
                    if !signal.is_reg {
                        return Err(
                            self.error(format!("non-blocking assignment to non-reg `{target}`"))
                        );
                    }
                    let value = self.expr(expr)?;
                    let value = self.coerce(value, signal.width);
                    current.insert(target.clone(), value);
                }
                Statement::If {
                    condition,
                    then_body,
                    else_body,
                } => {
                    let cond = self.expr(condition)?;
                    let cond = self.bool_net(cond);
                    let mut then_map = current.clone();
                    let mut else_map = current.clone();
                    self.apply_statements(then_body, &mut then_map)?;
                    self.apply_statements(else_body, &mut else_map)?;
                    for (name, base) in current.iter_mut() {
                        let t = then_map[name];
                        let e = else_map[name];
                        if t != e {
                            *base = self.netlist.mux(cond, t, e);
                        } else {
                            *base = t;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn coerce(&mut self, net: NetId, width: usize) -> NetId {
        let have = self.netlist.net_width(net);
        if have == width {
            net
        } else if have < width {
            self.netlist.zext(net, width)
        } else {
            self.netlist.slice(net, 0, width)
        }
    }

    fn bool_net(&mut self, net: NetId) -> NetId {
        if self.netlist.net_width(net) == 1 {
            net
        } else {
            self.netlist.reduce_or(net)
        }
    }

    fn expr(&mut self, expr: &Expr) -> Result<NetId, FrontendError> {
        match expr {
            Expr::Identifier(name) => Ok(self.lookup(name)?.net),
            Expr::Literal { width, value } => Ok(self
                .netlist
                .constant(&Bv::from_u64((*width).max(1), *value))),
            Expr::Select { name, high, low } => {
                let signal = self.lookup(name)?;
                if *high < *low || *high >= signal.width {
                    return Err(self.error(format!(
                        "bit select `{name}[{high}:{low}]` out of range for width {}",
                        signal.width
                    )));
                }
                Ok(self.netlist.slice(signal.net, *low, high - low + 1))
            }
            Expr::Concat(parts) => {
                let mut nets = Vec::with_capacity(parts.len());
                for part in parts {
                    nets.push(self.expr(part)?);
                }
                let mut iter = nets.into_iter();
                let mut acc = iter
                    .next()
                    .ok_or_else(|| self.error("empty concatenation"))?;
                for low in iter {
                    acc = self.netlist.concat(acc, low);
                }
                Ok(acc)
            }
            Expr::Unary { op, operand } => {
                let value = self.expr(operand)?;
                Ok(match op {
                    UnaryOp::Not => self.netlist.not(value),
                    UnaryOp::LogicalNot => {
                        let b = self.bool_net(value);
                        self.netlist.not(b)
                    }
                    UnaryOp::ReduceAnd => self.netlist.reduce_and(value),
                    UnaryOp::ReduceOr => self.netlist.reduce_or(value),
                    UnaryOp::ReduceXor => self.netlist.reduce_xor(value),
                })
            }
            Expr::Binary { op, left, right } => {
                let l = self.expr(left)?;
                let r = self.expr(right)?;
                self.binary(*op, l, r)
            }
            Expr::Conditional {
                condition,
                then_value,
                else_value,
            } => {
                let cond = self.expr(condition)?;
                let cond = self.bool_net(cond);
                let t = self.expr(then_value)?;
                let e = self.expr(else_value)?;
                let width = self.netlist.net_width(t).max(self.netlist.net_width(e));
                let t = self.coerce(t, width);
                let e = self.coerce(e, width);
                Ok(self.netlist.mux(cond, t, e))
            }
        }
    }

    fn binary(&mut self, op: BinaryOp, l: NetId, r: NetId) -> Result<NetId, FrontendError> {
        let width = self.netlist.net_width(l).max(self.netlist.net_width(r));
        let balanced = |this: &mut Self| {
            let lw = this.coerce(l, width);
            let rw = this.coerce(r, width);
            (lw, rw)
        };
        Ok(match op {
            BinaryOp::Add => {
                let (l, r) = balanced(self);
                self.netlist.add(l, r)
            }
            BinaryOp::Sub => {
                let (l, r) = balanced(self);
                self.netlist.sub(l, r)
            }
            BinaryOp::Mul => {
                let (l, r) = balanced(self);
                self.netlist.mul(l, r)
            }
            BinaryOp::And => {
                let (l, r) = balanced(self);
                self.netlist.and2(l, r)
            }
            BinaryOp::Or => {
                let (l, r) = balanced(self);
                self.netlist.or2(l, r)
            }
            BinaryOp::Xor => {
                let (l, r) = balanced(self);
                self.netlist.xor2(l, r)
            }
            BinaryOp::Eq => {
                let (l, r) = balanced(self);
                self.netlist.eq(l, r)
            }
            BinaryOp::Ne => {
                let (l, r) = balanced(self);
                self.netlist.ne(l, r)
            }
            BinaryOp::Lt => {
                let (l, r) = balanced(self);
                self.netlist.lt(l, r)
            }
            BinaryOp::Le => {
                let (l, r) = balanced(self);
                self.netlist.le(l, r)
            }
            BinaryOp::Gt => {
                let (l, r) = balanced(self);
                self.netlist.gt(l, r)
            }
            BinaryOp::Ge => {
                let (l, r) = balanced(self);
                self.netlist.ge(l, r)
            }
            BinaryOp::Shl => self.netlist.shl(l, r),
            BinaryOp::Shr => self.netlist.shr(l, r),
            BinaryOp::LogicalAnd => {
                let lb = self.bool_net(l);
                let rb = self.bool_net(r);
                self.netlist.and2(lb, rb)
            }
            BinaryOp::LogicalOr => {
                let lb = self.bool_net(l);
                let rb = self.bool_net(r);
                self.netlist.or2(lb, rb)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;
    use wlac_bv::Bv;
    use wlac_sim::{simulate, Simulator};

    #[test]
    fn combinational_module_simulates_correctly() {
        let nl = compile(
            r#"
            module sat_sub(input [7:0] a, input [7:0] b, output [7:0] y);
              assign y = (a > b) ? (a - b) : 8'd0;
            endmodule
            "#,
        )
        .unwrap();
        let a = nl.find_net("a").unwrap();
        let b = nl.find_net("b").unwrap();
        let y = nl.find_net("y").unwrap();
        for (av, bv, expect) in [(9u64, 3u64, 6u64), (3, 9, 0), (200, 200, 0)] {
            let inputs: Map<_, _> = [(a, Bv::from_u64(8, av)), (b, Bv::from_u64(8, bv))]
                .into_iter()
                .collect();
            let run = simulate(&nl, &[], &[inputs]).unwrap();
            assert_eq!(run.value(0, y).to_u64(), Some(expect), "{av} - {bv}");
        }
    }

    #[test]
    fn sequential_counter_elaborates_to_flip_flops() {
        let nl = compile(
            r#"
            module counter(input clk, input rst, input en, output reg [3:0] q);
              always @(posedge clk) begin
                if (rst)
                  q <= 4'd0;
                else if (en)
                  q <= q + 4'd1;
              end
            endmodule
            "#,
        )
        .unwrap();
        assert_eq!(nl.stats().flip_flop_bits, 4);
        let rst = nl.find_net("rst").unwrap();
        let en = nl.find_net("en").unwrap();
        let q = nl.find_net("q").unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let one = Bv::from_u64(1, 1);
        let zero = Bv::from_u64(1, 0);
        sim.step(&[(rst, zero.clone()), (en, one.clone())]).unwrap();
        sim.step(&[(rst, zero.clone()), (en, one.clone())]).unwrap();
        sim.step(&[(rst, zero.clone()), (en, zero.clone())])
            .unwrap();
        assert_eq!(sim.net_value(q).to_u64(), Some(2));
        sim.step(&[(rst, one), (en, zero)]).unwrap();
        assert_eq!(sim.net_value(q).to_u64(), Some(0));
    }

    #[test]
    fn selects_concats_and_shifts() {
        let nl = compile(
            r#"
            module mix(input [7:0] a, input [2:0] s, output [7:0] y, output msb);
              wire [7:0] rotated;
              assign rotated = (a << s) | (a >> 3'd4);
              assign y = {rotated[3:0], a[7:4]};
              assign msb = a[7];
            endmodule
            "#,
        )
        .unwrap();
        let a = nl.find_net("a").unwrap();
        let s = nl.find_net("s").unwrap();
        let y = nl.find_net("y").unwrap();
        let msb = nl.find_net("msb").unwrap();
        let inputs: Map<_, _> = [(a, Bv::from_u64(8, 0xa5)), (s, Bv::from_u64(3, 1))]
            .into_iter()
            .collect();
        let run = simulate(&nl, &[], &[inputs]).unwrap();
        let rotated = ((0xa5u64 << 1) | (0xa5 >> 4)) & 0xff;
        let expect = ((rotated & 0xf) << 4) | (0xa5 >> 4);
        assert_eq!(run.value(0, y).to_u64(), Some(expect));
        assert_eq!(run.value(0, msb).to_u64(), Some(1));
    }

    #[test]
    fn undeclared_signal_is_an_error() {
        let err = compile("module bad(input a, output y); assign y = a & missing; endmodule")
            .unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn assign_to_reg_is_an_error() {
        let err =
            compile("module bad(input clk, output reg q); assign q = 1'd1; endmodule").unwrap_err();
        assert!(err.to_string().contains("always block"));
    }

    #[test]
    fn checked_end_to_end_with_the_atpg_engine() {
        // The elaborated design feeds straight into the assertion checker.
        let nl = compile(
            r#"
            module modulo5(input clk, input tick, output reg [2:0] cnt);
              always @(posedge clk) begin
                if (tick)
                  if (cnt == 3'd4)
                    cnt <= 3'd0;
                  else
                    cnt <= cnt + 3'd1;
              end
            endmodule
            "#,
        )
        .unwrap();
        let cnt = nl.find_net("cnt").unwrap();
        let mut design = nl.clone();
        let five = design.constant(&Bv::from_u64(3, 5));
        let ok = design.lt(cnt, five);
        let property = wlac_atpg::Property::always(&design, "cnt_below_5", ok);
        let verification = wlac_atpg::Verification::new(design, property);
        let options = wlac_atpg::CheckerOptions {
            max_frames: 5,
            ..wlac_atpg::CheckerOptions::default()
        };
        let report = wlac_atpg::AssertionChecker::new(options).check(&verification);
        assert!(report.result.is_pass(), "got {:?}", report.result);
    }

    #[test]
    fn elaboration_is_deterministic_across_compiles() {
        // Multi-register always blocks exercise the register-map merge; the
        // same source must elaborate to the identical netlist every time
        // (hash-keyed consumers — the verification service's design
        // registry, on-disk snapshots — depend on it).
        let source = r#"
            module two_regs(input clk, input go, output ok);
              reg [7:0] acc;
              reg [1:0] stage;
              always @(posedge clk) begin
                if (stage == 0) begin
                  if (go) begin
                    acc <= acc + 8'd1;
                    stage <= 1;
                  end
                end else
                  stage <= 0;
              end
              assign ok = stage != 3;
            endmodule
            "#;
        let first = compile(source).unwrap();
        for _ in 0..10 {
            let again = compile(source).unwrap();
            assert_eq!(again.net_count(), first.net_count());
            assert_eq!(again.gate_count(), first.gate_count());
            for ((_, a), (_, b)) in again.gates().zip(first.gates()) {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.output, b.output);
                assert_eq!(a.inputs.to_vec(), b.inputs.to_vec());
            }
            assert_eq!(again.inputs(), first.inputs());
            assert_eq!(again.outputs(), first.outputs());
        }
    }
}
