//! Lexer and recursive-descent parser for the Verilog subset.

use crate::ast::*;
use crate::error::FrontendError;

/// Tokens of the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u64),
    SizedLiteral { width: usize, value: u64 },
    Symbol(&'static str),
    Keyword(&'static str),
}

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "wire",
    "reg",
    "assign",
    "always",
    "posedge",
    "begin",
    "end",
    "if",
    "else",
];

const SYMBOLS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "@", "(", ")", "[", "]", "{", "}", ":", ";",
    ",", "=", "+", "-", "*", "&", "|", "^", "~", "!", "<", ">", "?",
];

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> FrontendError {
        FrontendError::new(message, self.line)
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = self.rest();
            if rest.starts_with("//") {
                let end = rest
                    .find('\n')
                    .map(|i| self.pos + i)
                    .unwrap_or(self.src.len());
                self.pos = end;
            } else if rest.starts_with("/*") {
                if let Some(end) = rest.find("*/") {
                    self.line += rest[..end].matches('\n').count();
                    self.pos += end + 2;
                } else {
                    self.pos = self.src.len();
                }
            } else if let Some(c) = rest.chars().next() {
                if c.is_whitespace() {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.pos += c.len_utf8();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Token, usize)>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            if self.pos >= self.src.len() {
                break;
            }
            let line = self.line;
            let rest = self.rest();
            let c = rest.chars().next().expect("non-empty");
            if c.is_ascii_alphabetic() || c == '_' {
                let end = rest
                    .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                    .unwrap_or(rest.len());
                let word = rest[..end].to_string();
                self.pos += end;
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == word) {
                    out.push((Token::Keyword(kw), line));
                } else {
                    out.push((Token::Ident(word), line));
                }
            } else if c.is_ascii_digit() {
                let end = rest
                    .find(|ch: char| !(ch.is_ascii_digit() || ch == '_'))
                    .unwrap_or(rest.len());
                let digits: String = rest[..end].chars().filter(|c| *c != '_').collect();
                let value: u64 = digits
                    .parse()
                    .map_err(|_| self.error(format!("invalid number `{digits}`")))?;
                self.pos += end;
                // A sized literal like 4'b1010 / 8'hff / 6'd42?
                if self.rest().starts_with('\'') {
                    self.pos += 1;
                    let base = self
                        .rest()
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("missing literal base"))?
                        .to_ascii_lowercase();
                    self.pos += 1;
                    let rest2 = self.rest();
                    let end2 = rest2
                        .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                        .unwrap_or(rest2.len());
                    let digits2: String = rest2[..end2].chars().filter(|c| *c != '_').collect();
                    self.pos += end2;
                    let radix = match base {
                        'b' => 2,
                        'h' => 16,
                        'd' => 10,
                        other => return Err(self.error(format!("unsupported base `{other}`"))),
                    };
                    let lit_value = u64::from_str_radix(&digits2, radix)
                        .map_err(|_| self.error(format!("invalid literal digits `{digits2}`")))?;
                    out.push((
                        Token::SizedLiteral {
                            width: value as usize,
                            value: lit_value,
                        },
                        line,
                    ));
                } else {
                    out.push((Token::Number(value), line));
                }
            } else {
                let sym = SYMBOLS
                    .iter()
                    .find(|s| rest.starts_with(**s))
                    .ok_or_else(|| self.error(format!("unexpected character `{c}`")))?;
                self.pos += sym.len();
                out.push((Token::Symbol(sym), line));
            }
        }
        Ok(out)
    }
}

/// Parses a single Verilog module from source text.
///
/// # Errors
///
/// Returns a [`FrontendError`] describing the first syntax error.
pub fn parse_module(source: &str) -> Result<Module, FrontendError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.module()
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> FrontendError {
        FrontendError::new(message, self.line())
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), FrontendError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{sym}`, found {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if *k == kw) && {
            self.pos += 1;
            true
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), FrontendError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontendError> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<u64, FrontendError> {
        match self.next() {
            Some(Token::Number(v)) => Ok(v),
            other => Err(self.error(format!("expected number, found {other:?}"))),
        }
    }

    fn module(&mut self) -> Result<Module, FrontendError> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        let mut ports = Vec::new();
        self.expect_symbol("(")?;
        if !self.eat_symbol(")") {
            loop {
                ports.push(self.port()?);
                if self.eat_symbol(")") {
                    break;
                }
                self.expect_symbol(",")?;
            }
        }
        self.expect_symbol(";")?;
        let mut declarations = Vec::new();
        let mut assigns = Vec::new();
        let mut always_blocks = Vec::new();
        loop {
            if self.eat_keyword("endmodule") {
                break;
            }
            match self.peek() {
                Some(Token::Keyword("wire")) | Some(Token::Keyword("reg")) => {
                    declarations.extend(self.declaration()?);
                }
                Some(Token::Keyword("assign")) => assigns.push(self.assign()?),
                Some(Token::Keyword("always")) => always_blocks.push(self.always_block()?),
                other => {
                    return Err(self.error(format!("unexpected token {other:?} in module body")))
                }
            }
        }
        Ok(Module {
            name,
            ports,
            declarations,
            assigns,
            always_blocks,
        })
    }

    fn range(&mut self) -> Result<usize, FrontendError> {
        // Optional `[hi:lo]`; returns the width (assumes lo == 0).
        if self.eat_symbol("[") {
            let high = self.expect_number()? as usize;
            self.expect_symbol(":")?;
            let low = self.expect_number()? as usize;
            self.expect_symbol("]")?;
            if low != 0 || high < low {
                return Err(self.error("only [N:0] ranges are supported"));
            }
            Ok(high - low + 1)
        } else {
            Ok(1)
        }
    }

    fn port(&mut self) -> Result<Port, FrontendError> {
        let direction = if self.eat_keyword("input") {
            Direction::Input
        } else if self.eat_keyword("output") {
            Direction::Output
        } else {
            return Err(self.error("expected `input` or `output`"));
        };
        let is_reg = self.eat_keyword("reg");
        let width = self.range()?;
        let name = self.expect_ident()?;
        Ok(Port {
            direction,
            name,
            width,
            is_reg,
        })
    }

    fn declaration(&mut self) -> Result<Vec<Declaration>, FrontendError> {
        let is_reg = if self.eat_keyword("reg") {
            true
        } else {
            self.expect_keyword("wire")?;
            false
        };
        let width = self.range()?;
        let mut out = Vec::new();
        loop {
            let name = self.expect_ident()?;
            out.push(Declaration {
                name,
                width,
                is_reg,
            });
            if self.eat_symbol(";") {
                break;
            }
            self.expect_symbol(",")?;
        }
        Ok(out)
    }

    fn assign(&mut self) -> Result<Assign, FrontendError> {
        self.expect_keyword("assign")?;
        let target = self.expect_ident()?;
        self.expect_symbol("=")?;
        let expr = self.expression()?;
        self.expect_symbol(";")?;
        Ok(Assign { target, expr })
    }

    fn always_block(&mut self) -> Result<AlwaysBlock, FrontendError> {
        self.expect_keyword("always")?;
        self.expect_symbol("@")?;
        self.expect_symbol("(")?;
        self.expect_keyword("posedge")?;
        let clock = self.expect_ident()?;
        self.expect_symbol(")")?;
        let body = self.statement_block()?;
        Ok(AlwaysBlock { clock, body })
    }

    fn statement_block(&mut self) -> Result<Vec<Statement>, FrontendError> {
        if self.eat_keyword("begin") {
            let mut out = Vec::new();
            while !self.eat_keyword("end") {
                out.push(self.statement()?);
            }
            Ok(out)
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Statement, FrontendError> {
        if self.eat_keyword("if") {
            self.expect_symbol("(")?;
            let condition = self.expression()?;
            self.expect_symbol(")")?;
            let then_body = self.statement_block()?;
            let else_body = if self.eat_keyword("else") {
                self.statement_block()?
            } else {
                Vec::new()
            };
            return Ok(Statement::If {
                condition,
                then_body,
                else_body,
            });
        }
        let target = self.expect_ident()?;
        self.expect_symbol("<=")?;
        let expr = self.expression()?;
        self.expect_symbol(";")?;
        Ok(Statement::NonBlocking { target, expr })
    }

    fn expression(&mut self) -> Result<Expr, FrontendError> {
        self.conditional()
    }

    fn conditional(&mut self) -> Result<Expr, FrontendError> {
        let condition = self.logical_or()?;
        if self.eat_symbol("?") {
            let then_value = self.expression()?;
            self.expect_symbol(":")?;
            let else_value = self.conditional()?;
            Ok(Expr::Conditional {
                condition: Box::new(condition),
                then_value: Box::new(then_value),
                else_value: Box::new(else_value),
            })
        } else {
            Ok(condition)
        }
    }

    fn binary_level(
        &mut self,
        ops: &[(&str, BinaryOp)],
        next: fn(&mut Self) -> Result<Expr, FrontendError>,
    ) -> Result<Expr, FrontendError> {
        let mut left = next(self)?;
        'outer: loop {
            for (sym, op) in ops {
                if matches!(self.peek(), Some(Token::Symbol(s)) if s == sym) {
                    self.pos += 1;
                    let right = next(self)?;
                    left = Expr::Binary {
                        op: *op,
                        left: Box::new(left),
                        right: Box::new(right),
                    };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(left)
    }

    fn logical_or(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[("||", BinaryOp::LogicalOr)], Self::logical_and)
    }

    fn logical_and(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[("&&", BinaryOp::LogicalAnd)], Self::bit_or)
    }

    fn bit_or(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[("|", BinaryOp::Or)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[("^", BinaryOp::Xor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[("&", BinaryOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[("==", BinaryOp::Eq), ("!=", BinaryOp::Ne)],
            Self::relational,
        )
    }

    fn relational(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[
                ("<=", BinaryOp::Le),
                (">=", BinaryOp::Ge),
                ("<", BinaryOp::Lt),
                (">", BinaryOp::Gt),
            ],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[("<<", BinaryOp::Shl), (">>", BinaryOp::Shr)],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(
            &[("+", BinaryOp::Add), ("-", BinaryOp::Sub)],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(&[("*", BinaryOp::Mul)], Self::unary)
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        let op = match self.peek() {
            Some(Token::Symbol("~")) => Some(UnaryOp::Not),
            Some(Token::Symbol("!")) => Some(UnaryOp::LogicalNot),
            Some(Token::Symbol("&")) => Some(UnaryOp::ReduceAnd),
            Some(Token::Symbol("|")) => Some(UnaryOp::ReduceOr),
            Some(Token::Symbol("^")) => Some(UnaryOp::ReduceXor),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        match self.next() {
            Some(Token::SizedLiteral { width, value }) => Ok(Expr::Literal { width, value }),
            Some(Token::Number(value)) => {
                // Unsized decimal: use the minimal width (at least 1 bit), as
                // a pragmatic approximation of Verilog's 32-bit default.
                let width = (64 - value.leading_zeros() as usize).max(1);
                Ok(Expr::Literal { width, value })
            }
            Some(Token::Ident(name)) => {
                if self.eat_symbol("[") {
                    let high = self.expect_number()? as usize;
                    let low = if self.eat_symbol(":") {
                        self.expect_number()? as usize
                    } else {
                        high
                    };
                    self.expect_symbol("]")?;
                    Ok(Expr::Select { name, high, low })
                } else {
                    Ok(Expr::Identifier(name))
                }
            }
            Some(Token::Symbol("(")) => {
                let inner = self.expression()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            Some(Token::Symbol("{")) => {
                let mut parts = vec![self.expression()?];
                while self.eat_symbol(",") {
                    parts.push(self.expression()?);
                }
                self.expect_symbol("}")?;
                Ok(Expr::Concat(parts))
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ports_declarations_and_assigns() {
        let src = r#"
            // saturating subtractor
            module sat_sub(input [7:0] a, input [7:0] b, output [7:0] y);
              wire [7:0] diff;
              wire gt;
              assign gt = a > b;
              assign diff = a - b;
              assign y = gt ? diff : 8'd0;
            endmodule
        "#;
        let module = parse_module(src).unwrap();
        assert_eq!(module.name, "sat_sub");
        assert_eq!(module.ports.len(), 3);
        assert_eq!(module.ports[0].width, 8);
        assert_eq!(module.declarations.len(), 2);
        assert_eq!(module.assigns.len(), 3);
        assert!(matches!(module.assigns[2].expr, Expr::Conditional { .. }));
    }

    #[test]
    fn parses_always_blocks_with_if_else() {
        let src = r#"
            module counter(input clk, input rst, input en, output reg [3:0] q);
              always @(posedge clk) begin
                if (rst)
                  q <= 4'd0;
                else if (en)
                  q <= q + 4'd1;
              end
            endmodule
        "#;
        let module = parse_module(src).unwrap();
        assert_eq!(module.always_blocks.len(), 1);
        assert_eq!(module.always_blocks[0].clock, "clk");
        match &module.always_blocks[0].body[0] {
            Statement::If { else_body, .. } => {
                assert!(matches!(else_body[0], Statement::If { .. }));
            }
            other => panic!("unexpected statement {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let src = r#"
            module p(input [3:0] a, input [3:0] b, output y);
              assign y = a + b * 4'd2 == 4'd6;
            endmodule
        "#;
        let module = parse_module(src).unwrap();
        // == binds weaker than + and *.
        match &module.assigns[0].expr {
            Expr::Binary {
                op: BinaryOp::Eq,
                left,
                ..
            } => match left.as_ref() {
                Expr::Binary {
                    op: BinaryOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(
                        right.as_ref(),
                        Expr::Binary {
                            op: BinaryOp::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_selects_concats_and_reductions() {
        let src = r#"
            module s(input [7:0] a, output [3:0] y, output any);
              assign y = {a[7:6], a[1:0]};
              assign any = |a;
            endmodule
        "#;
        let module = parse_module(src).unwrap();
        assert!(matches!(module.assigns[0].expr, Expr::Concat(_)));
        assert!(matches!(
            module.assigns[1].expr,
            Expr::Unary {
                op: UnaryOp::ReduceOr,
                ..
            }
        ));
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let src = "module m(input a);\n  assign = 1;\nendmodule";
        let err = parse_module(src).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(parse_module("module m(input a; endmodule").is_err());
        assert!(parse_module("garbage").is_err());
    }
}
