//! # wlac-frontend — a Verilog-subset front end
//!
//! The paper's prototype uses a commercial HDL parser and a "quick
//! synthesis" step to turn RTL Verilog/VHDL into a netlist of word-level
//! primitives. This crate is the open substitution: a parser and elaborator
//! for a synthesizable Verilog subset (module ports, `wire`/`reg`
//! declarations, continuous assignments, `always @(posedge clk)` blocks with
//! `if`/`else` and non-blocking assignments, and the usual expression
//! operators) that produces the same [`wlac_netlist::Netlist`] consumed by
//! the checker. No logic optimisation is performed, preserving the design's
//! word-level structure exactly as the paper requires.
//!
//! # Examples
//!
//! ```
//! let netlist = wlac_frontend::compile(r#"
//!     module majority(input a, input b, input c, output y);
//!       assign y = (a & b) | (a & c) | (b & c);
//!     endmodule
//! "#)?;
//! assert_eq!(netlist.name(), "majority");
//! assert_eq!(netlist.outputs().len(), 1);
//! # Ok::<(), wlac_frontend::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod elaborate;
mod error;
mod parser;

pub use elaborate::{compile, elaborate};
pub use error::FrontendError;
pub use parser::parse_module;
