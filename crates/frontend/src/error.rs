//! Front-end error type.

use std::error::Error;
use std::fmt;

/// Error produced while parsing or elaborating Verilog source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    message: String,
    line: usize,
}

impl FrontendError {
    pub(crate) fn new(message: impl Into<String>, line: usize) -> Self {
        FrontendError {
            message: message.into(),
            line,
        }
    }

    /// One-based source line the error was detected on (0 when unknown).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        assert_eq!(
            FrontendError::new("bad token", 3).to_string(),
            "line 3: bad token"
        );
        assert_eq!(FrontendError::new("no module", 0).to_string(), "no module");
        assert_eq!(FrontendError::new("x", 7).line(), 7);
    }
}
