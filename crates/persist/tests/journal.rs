//! Write-ahead-journal contract tests: append/recover round-trips, torn-tail
//! quarantine (longest valid prefix wins, never a failure), compaction
//! resets, fault-injected append failures, and a seeded fuzz sweep over
//! truncated / bit-flipped journals asserting valid-prefix recovery with no
//! panics.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use wlac_baselines::{FrameClause, FrameLit};
use wlac_bv::Bv;
use wlac_faultinject::{FaultPlan, FaultSite};
use wlac_netlist::{NetId, Netlist};
use wlac_persist::{
    journal_file_name, read_journal, recover_journal, truncate_to_valid, DurabilityMode,
    JournalRecord, JournalSink, JournalWriter, PersistError,
};
use wlac_portfolio::{Engine, Verdict};
use wlac_rng::Rng64;
use wlac_service::{
    design_hash, DesignHash, DurabilityRecord, DurabilitySink, PropertyHash, VerdictRecord,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!(
            "wlac-journal-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    fn entries(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(&self.0)
            .expect("read temp dir")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        names.sort();
        names
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

fn sample_netlist() -> Netlist {
    let mut nl = Netlist::new("journal_sample");
    let (q, ff) = nl.dff_deferred(8, Some(Bv::from_u64(8, 0)));
    let one = nl.constant(&Bv::from_u64(8, 1));
    let next = nl.add(q, one);
    nl.connect_dff_data(ff, next);
    let cap = nl.constant(&Bv::from_u64(8, 11));
    let ok = nl.lt(q, cap);
    nl.mark_output("ok", ok);
    nl
}

/// A distinct, recognisable record: the `seq` value is woven into every
/// field so a recovered prefix can be checked record by record.
fn sample_record(seq: u64) -> JournalRecord {
    JournalRecord {
        verdict: (!seq.is_multiple_of(3)).then(|| VerdictRecord {
            property: PropertyHash(0x1000 + seq),
            config: 0x42,
            verdict: Verdict::Holds {
                proved: false,
                frames: seq as usize + 1,
            },
            winner: Some(Engine::Atpg),
        }),
        clauses: vec![FrameClause {
            depth: seq as u32,
            lits: vec![FrameLit {
                frame: seq as u32,
                net: NetId::from_index(seq as usize % 5),
                bit: 0,
                negated: seq.is_multiple_of(2),
            }],
        }],
        estg_delta: vec![(NetId::from_index(1), true, seq + 1)],
        ran: vec![Engine::Atpg],
        winner: Some(Engine::Atpg),
    }
}

fn assert_same_record(got: &JournalRecord, want: &JournalRecord, context: &str) {
    match (&got.verdict, &want.verdict) {
        (None, None) => {}
        (Some(g), Some(w)) => {
            assert_eq!(g.property, w.property, "{context}: verdict property");
            assert_eq!(g.config, w.config, "{context}: verdict config");
            assert_eq!(g.verdict, w.verdict, "{context}: verdict");
            assert_eq!(g.winner, w.winner, "{context}: verdict winner");
        }
        _ => panic!("{context}: verdict presence differs"),
    }
    assert_eq!(got.clauses, want.clauses, "{context}: clauses");
    assert_eq!(got.estg_delta, want.estg_delta, "{context}: estg delta");
    assert_eq!(got.ran, want.ran, "{context}: ran");
    assert_eq!(got.winner, want.winner, "{context}: winner");
}

/// Writes a journal of `count` records and returns (path, per-record end
/// offsets including the header boundary at index 0).
fn build_journal(dir: &TempDir, count: u64) -> (PathBuf, DesignHash, Vec<u64>) {
    let netlist = sample_netlist();
    let design = design_hash(&netlist);
    let path = dir.path(&journal_file_name(design));
    let (mut writer, quarantined) =
        JournalWriter::open(&path, design, &netlist, 4, FaultPlan::disabled())
            .expect("open fresh journal");
    assert_eq!(quarantined, 0);
    let mut boundaries = vec![writer.len()];
    for seq in 0..count {
        writer.append(&sample_record(seq)).expect("append");
        boundaries.push(writer.len());
    }
    writer.flush().expect("flush");
    (path, design, boundaries)
}

#[test]
fn round_trip_preserves_every_record() {
    let dir = TempDir::new();
    let (path, design, boundaries) = build_journal(&dir, 5);
    assert_eq!(
        fs::metadata(&path).expect("metadata").len(),
        *boundaries.last().expect("boundary"),
        "writer length tracks the file"
    );
    let replay = read_journal(&path).expect("recover");
    assert_eq!(replay.design, design);
    assert_eq!(design_hash(&replay.netlist), design);
    assert_eq!(replay.records.len(), 5);
    assert_eq!(replay.quarantined_bytes, 0);
    for (seq, record) in replay.records.iter().enumerate() {
        assert_same_record(record, &sample_record(seq as u64), &format!("record {seq}"));
    }
}

#[test]
fn reopen_appends_after_the_existing_records() {
    let dir = TempDir::new();
    let (path, design, _) = build_journal(&dir, 3);
    let netlist = sample_netlist();
    let (mut writer, quarantined) =
        JournalWriter::open(&path, design, &netlist, 4, FaultPlan::disabled()).expect("reopen");
    assert_eq!(quarantined, 0, "clean journal reopens without quarantine");
    writer.append(&sample_record(3)).expect("append");
    drop(writer);
    let replay = read_journal(&path).expect("recover");
    assert_eq!(replay.records.len(), 4);
    assert_same_record(&replay.records[3], &sample_record(3), "appended record");
}

#[test]
fn truncation_recovers_the_longest_valid_prefix_at_every_length() {
    let dir = TempDir::new();
    let (path, _, boundaries) = build_journal(&dir, 4);
    let bytes = fs::read(&path).expect("read journal");
    let header_len = boundaries[0];
    for len in 0..bytes.len() {
        let cut = &bytes[..len];
        if (len as u64) < header_len {
            assert!(
                recover_journal(cut).is_err(),
                "a torn header (len {len}) must be an error — nothing was acknowledged"
            );
            continue;
        }
        let replay = recover_journal(cut).expect("recovery past the header never fails");
        // The valid prefix is the last record boundary at or below the cut.
        let expected = boundaries.iter().filter(|b| **b <= len as u64).count() - 1;
        assert_eq!(
            replay.records.len(),
            expected,
            "truncation to {len} bytes (boundaries {boundaries:?})"
        );
        assert_eq!(replay.valid_bytes, boundaries[expected]);
        assert_eq!(replay.quarantined_bytes, len as u64 - boundaries[expected]);
        for (seq, record) in replay.records.iter().enumerate() {
            assert_same_record(record, &sample_record(seq as u64), "prefix record");
        }
    }
}

#[test]
fn a_bit_flip_quarantines_from_its_record_onward() {
    let dir = TempDir::new();
    let (path, _, boundaries) = build_journal(&dir, 4);
    let bytes = fs::read(&path).expect("read journal");
    let header_len = boundaries[0] as usize;
    for byte in header_len..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[byte] ^= 0x10;
        let replay = recover_journal(&corrupt).expect("record damage is never a failure");
        // Recovery must keep every record before the damaged frame...
        let intact_before = boundaries.iter().filter(|b| **b <= byte as u64).count() - 1;
        assert!(
            replay.records.len() >= intact_before,
            "flip at {byte} lost records before the damage"
        );
        for (seq, record) in replay.records.iter().take(intact_before).enumerate() {
            assert_same_record(record, &sample_record(seq as u64), "record before flip");
        }
        // ...and must never hallucinate a record past the last boundary.
        assert!(replay.records.len() <= 4);
    }
}

#[test]
fn reset_compacts_back_to_the_header() {
    let dir = TempDir::new();
    let netlist = sample_netlist();
    let design = design_hash(&netlist);
    let path = dir.path(&journal_file_name(design));
    let (mut writer, _) =
        JournalWriter::open(&path, design, &netlist, 1, FaultPlan::disabled()).expect("open");
    for seq in 0..3 {
        writer.append(&sample_record(seq)).expect("append");
    }
    assert!(!writer.is_empty());
    writer.reset().expect("reset");
    assert!(writer.is_empty());
    let replay = read_journal(&path).expect("recover");
    assert_eq!(replay.records.len(), 0, "compaction removed the records");
    assert_eq!(replay.design, design, "the header survives compaction");
    // And the journal keeps working after compaction.
    writer
        .append(&sample_record(9))
        .expect("append after reset");
    let replay = read_journal(&path).expect("recover");
    assert_eq!(replay.records.len(), 1);
    assert_same_record(&replay.records[0], &sample_record(9), "post-reset record");
}

#[test]
fn torn_append_wedges_the_writer_until_reset() {
    let dir = TempDir::new();
    let netlist = sample_netlist();
    let design = design_hash(&netlist);
    let path = dir.path(&journal_file_name(design));
    let faults = FaultPlan::new().fire_nth(FaultSite::JournalTorn, 2);
    let (mut writer, _) = JournalWriter::open(&path, design, &netlist, 1, faults).expect("open");
    writer.append(&sample_record(0)).expect("clean append");
    // The second append tears mid-frame.
    assert!(matches!(
        writer.append(&sample_record(1)),
        Err(PersistError::Io(_))
    ));
    // A wedged writer refuses to bury the tear under further appends.
    assert!(matches!(
        writer.append(&sample_record(2)),
        Err(PersistError::Io(_))
    ));
    // The file carries record 0 plus the torn half-frame; recovery
    // quarantines exactly the tear.
    let replay = read_journal(&path).expect("recover");
    assert_eq!(replay.records.len(), 1);
    assert!(
        replay.quarantined_bytes > 0,
        "the torn half-frame is quarantined"
    );
    // Compaction truncates the damage away and un-wedges the writer.
    writer.reset().expect("reset");
    writer
        .append(&sample_record(3))
        .expect("append after reset");
    let replay = read_journal(&path).expect("recover");
    assert_eq!(replay.records.len(), 1);
    assert_eq!(replay.quarantined_bytes, 0);
}

#[test]
fn append_io_fault_fails_without_touching_the_file() {
    let dir = TempDir::new();
    let netlist = sample_netlist();
    let design = design_hash(&netlist);
    let path = dir.path(&journal_file_name(design));
    let faults = FaultPlan::new().fire_nth(FaultSite::JournalAppend, 1);
    let (mut writer, _) = JournalWriter::open(&path, design, &netlist, 1, faults).expect("open");
    let clean_len = fs::metadata(&path).expect("metadata").len();
    assert!(matches!(
        writer.append(&sample_record(0)),
        Err(PersistError::Io(_))
    ));
    assert_eq!(
        fs::metadata(&path).expect("metadata").len(),
        clean_len,
        "a failed append writes nothing"
    );
    // The fault is exhausted; the writer is not wedged and serves on.
    writer.append(&sample_record(0)).expect("append");
    assert_eq!(read_journal(&path).expect("recover").records.len(), 1);
}

#[test]
fn reopening_a_torn_journal_quarantines_the_tail_to_a_side_file() {
    let dir = TempDir::new();
    let (path, design, boundaries) = build_journal(&dir, 3);
    // Tear the last record in half on disk, as a kill mid-append would.
    let bytes = fs::read(&path).expect("read journal");
    let torn_len = (boundaries[2] + (boundaries[3] - boundaries[2]) / 2) as usize;
    fs::write(&path, &bytes[..torn_len]).expect("tear");

    let netlist = sample_netlist();
    let (mut writer, quarantined) =
        JournalWriter::open(&path, design, &netlist, 4, FaultPlan::disabled())
            .expect("reopen torn journal");
    assert_eq!(
        quarantined,
        torn_len as u64 - boundaries[2],
        "exactly the torn tail is quarantined"
    );
    let side = dir.path(&format!("{}.quarantine", journal_file_name(design)));
    assert!(side.exists(), "torn bytes preserved for the operator");
    // The writer appends cleanly after the surviving prefix.
    writer.append(&sample_record(7)).expect("append");
    let replay = read_journal(&path).expect("recover");
    assert_eq!(replay.records.len(), 3);
    assert_same_record(&replay.records[2], &sample_record(7), "record after tear");
    assert_eq!(replay.quarantined_bytes, 0);
}

#[test]
fn a_foreign_file_under_the_journal_name_is_quarantined_wholesale() {
    let dir = TempDir::new();
    let netlist = sample_netlist();
    let design = design_hash(&netlist);
    let path = dir.path(&journal_file_name(design));
    fs::write(&path, b"this was never a journal").expect("plant foreign file");
    let (mut writer, quarantined) =
        JournalWriter::open(&path, design, &netlist, 1, FaultPlan::disabled()).expect("open");
    assert_eq!(quarantined, 24, "every foreign byte is quarantined");
    assert!(dir
        .entries()
        .iter()
        .any(|name| name.ends_with(".quarantine")));
    writer.append(&sample_record(0)).expect("append");
    assert_eq!(read_journal(&path).expect("recover").records.len(), 1);
}

#[test]
fn truncate_to_valid_cuts_the_quarantined_tail_out_of_the_file() {
    let dir = TempDir::new();
    let (path, design, boundaries) = build_journal(&dir, 3);
    // Tear the last record in half on disk, as a kill mid-append would.
    let bytes = fs::read(&path).expect("read journal");
    let torn_len = (boundaries[2] + (boundaries[3] - boundaries[2]) / 2) as usize;
    fs::write(&path, &bytes[..torn_len]).expect("tear");

    let replay = read_journal(&path).expect("recover");
    assert!(replay.quarantined_bytes > 0);
    truncate_to_valid(&path, &replay).expect("truncate");
    assert_eq!(
        fs::metadata(&path).expect("metadata").len(),
        replay.valid_bytes,
        "the file shrinks to exactly the valid prefix"
    );
    let side = dir.path(&format!("{}.quarantine", journal_file_name(design)));
    assert!(side.exists(), "torn bytes preserved for the operator");
    let again = read_journal(&path).expect("recover truncated");
    assert_eq!(again.records.len(), 2);
    assert_eq!(again.quarantined_bytes, 0, "nothing left to quarantine");
}

/// Emits one record through the sink's `DurabilitySink` surface, the way the
/// service's worker threads do.
fn emit_via_sink(sink: &JournalSink, netlist: &Netlist, seq: u64) {
    let sample = sample_record(seq);
    sink.record(&DurabilityRecord {
        design: design_hash(netlist),
        netlist,
        verdict: sample.verdict.clone(),
        clauses: &sample.clauses,
        estg_delta: sample.estg_delta.clone(),
        ran: &sample.ran,
        winner: sample.winner,
    });
}

#[test]
fn sink_reset_refuses_when_an_append_raced_the_snapshot() {
    let dir = TempDir::new();
    let netlist = sample_netlist();
    let design = design_hash(&netlist);
    let path = dir.path(&journal_file_name(design));
    let sink = JournalSink::new(&dir.0, 1, FaultPlan::disabled());
    assert_eq!(sink.append_token(design), 0, "no appends yet");

    emit_via_sink(&sink, &netlist, 0);
    // Compaction captures the token, then a record lands while the snapshot
    // is being exported and written — the snapshot cannot contain it.
    let token = sink.append_token(design);
    emit_via_sink(&sink, &netlist, 1);
    assert!(
        !sink.reset(design, token),
        "a stale token must keep the journal"
    );
    assert_eq!(
        read_journal(&path).expect("recover").records.len(),
        2,
        "the raced record is still on disk"
    );

    // The retry, with nothing racing, truncates.
    assert!(sink.reset(design, sink.append_token(design)));
    assert_eq!(read_journal(&path).expect("recover").records.len(), 0);
    assert_eq!(
        read_journal(&path).expect("recover").design,
        design,
        "the header survives compaction"
    );
}

#[test]
fn sink_reset_with_no_writer_deletes_a_boot_leftover_journal() {
    let dir = TempDir::new();
    let (path, design, _) = build_journal(&dir, 2);
    // A sink that never appended (the journal is a boot leftover, already
    // replayed into the snapshot being compacted) deletes the file outright.
    let sink = JournalSink::new(&dir.0, 1, FaultPlan::disabled());
    assert!(sink.reset(design, sink.append_token(design)));
    assert!(!path.exists(), "the superseded journal is gone");
    // Deleting an already-absent journal is a success, not an error.
    assert!(sink.reset(design, 0));
}

#[test]
fn durability_mode_parses_its_own_names() {
    for mode in [
        DurabilityMode::Snapshot,
        DurabilityMode::Journal,
        DurabilityMode::Strict,
    ] {
        assert_eq!(DurabilityMode::parse(mode.as_str()), Some(mode));
    }
    assert_eq!(DurabilityMode::parse("paranoid"), None);
    assert_eq!(DurabilityMode::default(), DurabilityMode::Journal);
    assert!(!DurabilityMode::Snapshot.journals());
    assert!(DurabilityMode::Journal.journals());
    assert!(DurabilityMode::Strict.journals());
}

/// Satellite: a deterministic seeded fuzz sweep. Random journals are
/// truncated, bit-flipped and tail-garbled at random; recovery must never
/// panic, must never invent records, and whatever prefix it accepts must be
/// byte-for-byte the records that were appended.
#[test]
fn fuzz_recovery_always_yields_a_valid_prefix_and_never_panics() {
    let dir = TempDir::new();
    let mut rng = Rng64::seed_from_u64(0xD1CE_F00D);
    for round in 0..120 {
        let count = rng.next_range(1, 8);
        let (path, _, boundaries) = build_journal(&dir, count);
        let clean = fs::read(&path).expect("read journal");
        let header_len = boundaries[0];
        let mut bytes = clean.clone();
        // One to three random mutations per round.
        for _ in 0..rng.next_range(1, 4) {
            match rng.next_below(4) {
                // Truncate anywhere, header included.
                0 => bytes.truncate(rng.next_below(bytes.len() as u64 + 1) as usize),
                // Flip a random bit anywhere.
                1 if !bytes.is_empty() => {
                    let at = rng.next_below(bytes.len() as u64) as usize;
                    bytes[at] ^= 1 << rng.next_below(8);
                }
                // Append random garbage (a torn next append).
                2 => {
                    for _ in 0..rng.next_range(1, 40) {
                        bytes.push(rng.next_u64() as u8);
                    }
                }
                // Zero a random run (sparse-file style damage).
                _ if !bytes.is_empty() => {
                    let at = rng.next_below(bytes.len() as u64) as usize;
                    let run = (rng.next_range(1, 16) as usize).min(bytes.len() - at);
                    bytes[at..at + run].fill(0);
                }
                _ => {}
            }
        }
        let context = format!("round {round} ({} bytes)", bytes.len());
        match recover_journal(&bytes) {
            // Header damaged: allowed, as long as it is a clean error.
            Err(_) => {}
            Ok(replay) => {
                assert!(
                    replay.records.len() <= count as usize,
                    "{context}: recovered more records than were written"
                );
                assert!(
                    replay.valid_bytes >= header_len,
                    "{context}: valid prefix shorter than the header"
                );
                assert_eq!(
                    replay.valid_bytes + replay.quarantined_bytes,
                    bytes.len() as u64,
                    "{context}: prefix + quarantine must cover the file"
                );
                // Any accepted record whose frame bytes are untouched must
                // decode identically; checksum collisions under these tiny
                // mutations are out of scope, so a record that differs from
                // what was appended means recovery misaligned — check all.
                for (seq, record) in replay.records.iter().enumerate() {
                    let start = boundaries[seq] as usize;
                    let end = boundaries[seq + 1] as usize;
                    if bytes.len() >= end && bytes[start..end] == clean[start..end] {
                        assert_same_record(record, &sample_record(seq as u64), &context);
                    }
                }
            }
        }
        fs::remove_file(&path).ok();
    }
}
