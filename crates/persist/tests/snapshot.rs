//! Persistence contract tests: round-trip equality, rejection of truncated /
//! bit-flipped / foreign-design snapshots, and atomicity of the writer.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use wlac_atpg::Trace;
use wlac_baselines::{FrameClause, FrameLit};
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};
use wlac_persist::{load_snapshot, save_snapshot, snapshot_file_name, PersistError, Snapshot};
use wlac_portfolio::{Engine, EngineHistory, Verdict};
use wlac_service::{design_hash, KnowledgeBase, PropertyHash, VerdictRecord};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique fresh directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!(
            "wlac-persist-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    fn entries(&self) -> Vec<String> {
        fs::read_dir(&self.0)
            .expect("read temp dir")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

/// A sequential design exercising every serialized construct: named and
/// unnamed nets, constants, a DFF with an initial value, arithmetic,
/// comparators, a mux and marked outputs.
fn sample_netlist() -> Netlist {
    let mut nl = Netlist::new("snapshot_sample");
    let (q, ff) = nl.dff_deferred(8, Some(Bv::from_u64(8, 3)));
    let one = nl.constant(&Bv::from_u64(8, 1));
    let plus = nl.add(q, one);
    let cap = nl.constant(&Bv::from_u64(8, 200));
    let at_cap = nl.eq(q, cap);
    let next = nl.mux(at_cap, cap, plus);
    nl.connect_dff_data(ff, next);
    let in_a = nl.input("a", 8);
    let sum = nl.add(q, in_a);
    let ok = nl.lt(sum, cap);
    nl.mark_output("ok", ok);
    nl
}

fn sample_snapshot() -> Snapshot {
    let netlist = sample_netlist();
    let design = design_hash(&netlist);
    let mut knowledge = KnowledgeBase::new(design);
    knowledge.clauses.insert(&FrameClause {
        depth: 2,
        lits: vec![
            FrameLit {
                frame: 0,
                net: NetId::from_index(0),
                bit: 1,
                negated: false,
            },
            FrameLit {
                frame: 1,
                net: NetId::from_index(2),
                bit: 0,
                negated: true,
            },
        ],
    });
    knowledge
        .search
        .estg
        .record_conflicts(NetId::from_index(4), true, 17);
    knowledge
        .search
        .estg
        .record_conflicts(NetId::from_index(4), false, 3);
    knowledge.history = EngineHistory::from_counts([5, 2, 0], [7, 7, 6]);
    let verdicts = vec![
        VerdictRecord {
            property: PropertyHash(0xABCD),
            config: 0x1234,
            verdict: Verdict::Holds {
                proved: false,
                frames: 8,
            },
            winner: Some(Engine::Atpg),
        },
        VerdictRecord {
            property: PropertyHash(0xEF01),
            config: 0x1234,
            verdict: Verdict::Violated {
                trace: Trace {
                    initial_state: vec![(NetId::from_index(0), Bv::from_u64(8, 3))],
                    inputs: vec![
                        vec![(NetId::from_index(8), Bv::from_u64(8, 250))],
                        vec![(NetId::from_index(8), Bv::from_u64(8, 251))],
                    ],
                },
            },
            winner: Some(Engine::RandomSim),
        },
    ];
    Snapshot {
        netlist,
        knowledge,
        verdicts,
    }
}

#[test]
fn round_trip_preserves_everything() {
    let dir = TempDir::new();
    let snapshot = sample_snapshot();
    let design = snapshot.knowledge.design();
    let path = dir.path(&snapshot_file_name(design));
    save_snapshot(&path, &snapshot).expect("save");
    let restored = load_snapshot(&path).expect("load");

    // The netlist reproduces the same structural identity...
    assert_eq!(design_hash(&restored.netlist), design);
    // ...including names, which the hash ignores.
    assert_eq!(restored.netlist.name(), "snapshot_sample");
    assert_eq!(
        restored.netlist.find_net("a"),
        snapshot.netlist.find_net("a")
    );
    assert_eq!(restored.netlist.outputs(), snapshot.netlist.outputs());

    // Knowledge round-trips field by field.
    assert_eq!(restored.knowledge.design(), design);
    assert_eq!(
        restored.knowledge.clauses.to_seeds(),
        snapshot.knowledge.clauses.to_seeds()
    );
    let estg = &restored.knowledge.search.estg;
    assert_eq!(estg.conflict_count(NetId::from_index(4), true), 17);
    assert_eq!(estg.conflict_count(NetId::from_index(4), false), 3);
    assert_eq!(estg.recorded(), 20);
    assert_eq!(restored.knowledge.history, snapshot.knowledge.history);
    // Datapath facts are excluded by construction.
    assert_eq!(restored.knowledge.search.datapath_facts.len(), 0);

    // Verdicts, winners and the embedded trace round-trip.
    assert_eq!(restored.verdicts.len(), 2);
    assert_eq!(restored.verdicts[0].property, PropertyHash(0xABCD));
    assert_eq!(restored.verdicts[0].winner, Some(Engine::Atpg));
    assert_eq!(
        restored.verdicts[0].verdict,
        Verdict::Holds {
            proved: false,
            frames: 8
        }
    );
    let Verdict::Violated { trace } = &restored.verdicts[1].verdict else {
        panic!("expected the violation verdict");
    };
    assert_eq!(trace.len(), 2);
    assert_eq!(
        trace.initial_state,
        vec![(NetId::from_index(0), Bv::from_u64(8, 3))]
    );
}

#[test]
fn truncated_snapshots_are_rejected_at_every_length() {
    let dir = TempDir::new();
    let snapshot = sample_snapshot();
    let path = dir.path("full.wlacsnap");
    save_snapshot(&path, &snapshot).expect("save");
    let bytes = fs::read(&path).expect("read back");
    let stride = (bytes.len() / 97).max(1); // sample lengths, ends inclusive
    let cut_path = dir.path("cut.wlacsnap");
    for len in (0..bytes.len()).step_by(stride).chain([bytes.len() - 1]) {
        fs::write(&cut_path, &bytes[..len]).expect("write truncation");
        assert!(
            load_snapshot(&cut_path).is_err(),
            "truncation to {len} bytes was accepted"
        );
    }
}

#[test]
fn bit_flipped_snapshots_are_rejected() {
    let dir = TempDir::new();
    let snapshot = sample_snapshot();
    let path = dir.path("full.wlacsnap");
    save_snapshot(&path, &snapshot).expect("save");
    let bytes = fs::read(&path).expect("read back");
    let flip_path = dir.path("flipped.wlacsnap");
    let stride = (bytes.len() / 131).max(1);
    for byte in (0..bytes.len()).step_by(stride) {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            fs::write(&flip_path, &corrupt).expect("write corruption");
            assert!(
                load_snapshot(&flip_path).is_err(),
                "flip of byte {byte} bit {bit} was accepted"
            );
        }
    }
}

#[test]
fn foreign_design_snapshots_are_rejected_by_the_service_import() {
    let dir = TempDir::new();
    let snapshot = sample_snapshot();
    let path = dir.path("a.wlacsnap");
    save_snapshot(&path, &snapshot).expect("save");
    let restored = load_snapshot(&path).expect("load");

    // The snapshot is internally consistent, but it describes a different
    // design than the one the receiving service has registered — the
    // existing KnowledgeError validation is the trust boundary.
    let mut other = sample_netlist();
    let extra = other.input("extra", 4);
    other.mark_output("extra", extra);
    let service = wlac_service::VerificationService::new(wlac_service::ServiceConfig::default());
    let other_hash = service.register_design(&other);
    assert!(matches!(
        service.import_knowledge(other_hash, &restored.knowledge),
        Err(wlac_service::KnowledgeError::DesignMismatch { .. })
    ));

    // A tampered design-hash field no longer matches the netlist: rejected
    // at load time (the checksum catches casual corruption; this guards a
    // deliberately re-sealed file).
    let design = snapshot.knowledge.design();
    let foreign = Snapshot {
        netlist: other,
        knowledge: KnowledgeBase::new(design), // claims the sample's hash
        verdicts: Vec::new(),
    };
    let forged = dir.path("forged.wlacsnap");
    save_snapshot(&forged, &foreign).expect("save");
    assert!(matches!(
        load_snapshot(&forged),
        Err(PersistError::Malformed(_))
    ));
}

#[test]
fn atomic_write_leaves_no_partial_file_behind() {
    let dir = TempDir::new();
    let snapshot = sample_snapshot();
    let path = dir.path("design.wlacsnap");

    // Success path: exactly the target file, no temporary residue.
    save_snapshot(&path, &snapshot).expect("save");
    assert_eq!(dir.entries(), vec!["design.wlacsnap".to_string()]);

    // Overwrite path: the file is replaced in place with no temp residue;
    // the previous generation is kept as the last-good backup.
    let mut updated = snapshot.clone();
    updated.verdicts.clear();
    save_snapshot(&path, &updated).expect("overwrite");
    assert_eq!(
        dir.entries(),
        vec![
            "design.wlacsnap".to_string(),
            "design.wlacsnap.bak".to_string()
        ]
    );
    assert!(load_snapshot(&path).expect("load").verdicts.is_empty());
    let backup = load_snapshot(&dir.path("design.wlacsnap.bak")).expect("backup loads");
    assert_eq!(
        backup.verdicts.len(),
        snapshot.verdicts.len(),
        "the backup is the previous generation"
    );

    // Failure path: writing into a missing directory fails without creating
    // anything anywhere (in particular no half-written target).
    let missing = dir.path("no-such-dir").join("design.wlacsnap");
    assert!(matches!(
        save_snapshot(&missing, &snapshot),
        Err(PersistError::Io(_))
    ));
    assert_eq!(
        dir.entries(),
        vec![
            "design.wlacsnap".to_string(),
            "design.wlacsnap.bak".to_string()
        ]
    );
}

#[test]
fn torn_write_leaves_the_published_snapshot_intact() {
    use wlac_faultinject::{FaultPlan, FaultSite};
    use wlac_persist::{clean_stale_temp_files, save_snapshot_faulted};

    let dir = TempDir::new();
    let snapshot = sample_snapshot();
    let path = dir.path("design.wlacsnap");
    save_snapshot(&path, &snapshot).expect("initial save");

    // A kill mid-write (simulated): the save fails, half a frame lands in a
    // temp file, and the published snapshot is untouched.
    let faults = FaultPlan::new().fire_nth(FaultSite::SnapshotTorn, 1);
    let mut updated = snapshot.clone();
    updated.verdicts.clear();
    assert!(matches!(
        save_snapshot_faulted(&path, &updated, &faults),
        Err(PersistError::Io(_))
    ));
    let mut entries = dir.entries();
    entries.sort();
    assert!(
        entries.iter().any(|e| e.contains(".wlacsnap.tmp")),
        "torn temp file left behind: {entries:?}"
    );
    let loaded = load_snapshot(&path).expect("published snapshot still loads");
    assert_eq!(loaded.verdicts.len(), snapshot.verdicts.len());

    // Boot-time sweep removes the debris and nothing else.
    let removed = clean_stale_temp_files(&dir.0).expect("sweep");
    assert_eq!(removed, 1);
    let mut entries = dir.entries();
    entries.sort();
    assert_eq!(entries, vec!["design.wlacsnap".to_string()]);
}

#[test]
fn snapshot_write_fault_fails_without_touching_disk() {
    use wlac_faultinject::{FaultPlan, FaultSite};
    use wlac_persist::save_snapshot_faulted;

    let dir = TempDir::new();
    let snapshot = sample_snapshot();
    let path = dir.path("design.wlacsnap");
    let faults = FaultPlan::new().fire_nth(FaultSite::SnapshotWrite, 1);
    assert!(matches!(
        save_snapshot_faulted(&path, &snapshot, &faults),
        Err(PersistError::Io(_))
    ));
    assert!(dir.entries().is_empty(), "nothing may reach the disk");
    // The next save (fault exhausted) succeeds normally.
    save_snapshot_faulted(&path, &snapshot, &faults).expect("second save");
    assert_eq!(dir.entries(), vec!["design.wlacsnap".to_string()]);
}

#[test]
fn corrupt_primary_falls_back_to_the_last_good_backup() {
    use wlac_persist::load_snapshot_with_fallback;

    let dir = TempDir::new();
    let snapshot = sample_snapshot();
    let path = dir.path("design.wlacsnap");
    save_snapshot(&path, &snapshot).expect("generation 1");
    let mut updated = snapshot.clone();
    updated.verdicts.clear();
    save_snapshot(&path, &updated).expect("generation 2 (keeps 1 as .bak)");

    // Healthy primary: no fallback.
    let (loaded, from_backup) = load_snapshot_with_fallback(&path).expect("load");
    assert!(!from_backup);
    assert!(loaded.verdicts.is_empty());

    // Corrupt the primary; the loader reports the backup generation.
    let mut bytes = fs::read(&path).expect("read frame");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&path, &bytes).expect("corrupt primary");
    let (loaded, from_backup) = load_snapshot_with_fallback(&path).expect("fallback load");
    assert!(from_backup, "must boot from the backup");
    assert_eq!(loaded.verdicts.len(), snapshot.verdicts.len());

    // Both generations gone: the primary's error surfaces.
    fs::remove_file(dir.path("design.wlacsnap.bak")).expect("drop backup");
    assert!(matches!(
        load_snapshot_with_fallback(&path),
        Err(PersistError::ChecksumMismatch)
    ));
}

#[test]
fn timeout_verdicts_are_never_persisted() {
    let dir = TempDir::new();
    let mut snapshot = sample_snapshot();
    snapshot.verdicts.push(VerdictRecord {
        property: PropertyHash(0xFEED),
        config: 1,
        verdict: Verdict::Timeout {
            budget: std::time::Duration::from_secs(1),
        },
        winner: None,
    });
    assert!(matches!(
        save_snapshot(&dir.path("design.wlacsnap"), &snapshot),
        Err(PersistError::Malformed(_))
    ));
    assert!(dir.entries().is_empty());
}
