//! The binary frame: little-endian primitives, a magic/version header and a
//! trailing FNV-64 checksum, with a bounds-checked reader.

use std::error::Error;
use std::fmt;

/// First eight bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"WLACSNAP";

/// Current format version; files written by a different version are
/// rejected rather than guessed at.
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the frame contents (bit rot,
    /// truncation past the length field, or tampering).
    ChecksumMismatch,
    /// The file ends before the declared frame does.
    Truncated,
    /// The frame decoded, but its contents are not a valid snapshot.
    Malformed(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a wlac snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {FORMAT_VERSION})"
                )
            }
            PersistError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            PersistError::Truncated => write!(f, "snapshot truncated"),
            PersistError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// 64-bit FNV-1a over a byte slice (the workspace-standard offline hash).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only little-endian encoder.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian decoder over one frame's payload.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or(PersistError::Truncated)?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Malformed("boolean out of range")),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PersistError> {
        let bytes: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| PersistError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| PersistError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// A scalar encoded as u64 (an index, a width, a frame count). Unlike
    /// [`Reader::len`] it carries no relation to the remaining bytes.
    pub(crate) fn scalar(&mut self) -> Result<usize, PersistError> {
        self.u64()?
            .try_into()
            .map_err(|_| PersistError::Malformed("scalar out of range"))
    }

    /// A length/count field. Validated against `unit_bytes` (the minimum
    /// encoded size of one element) and the bytes actually remaining, so a
    /// corrupt count can never drive a huge allocation.
    pub(crate) fn len(&mut self, unit_bytes: usize) -> Result<usize, PersistError> {
        let n = self.u64()?;
        let n: usize = n.try_into().map_err(|_| PersistError::Truncated)?;
        if n.checked_mul(unit_bytes.max(1))
            .filter(|need| *need <= self.bytes.len() - self.pos)
            .is_none()
        {
            return Err(PersistError::Truncated);
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, PersistError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed("string is not utf-8"))
    }
}

/// Wraps a payload in the on-disk frame: magic, version, payload length,
/// payload, FNV-64 checksum over everything preceding the checksum.
pub(crate) fn seal(payload: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + MAGIC.len() + 20);
    frame.extend_from_slice(MAGIC);
    frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&payload);
    let checksum = fnv64(&frame);
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame
}

/// Validates a frame and returns its payload slice.
pub(crate) fn unseal(frame: &[u8]) -> Result<&[u8], PersistError> {
    let header = MAGIC.len() + 4 + 8;
    if frame.len() < header + 8 {
        return Err(PersistError::Truncated);
    }
    if &frame[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version_bytes: [u8; 4] = frame[8..12]
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    let version = u32::from_le_bytes(version_bytes);
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let len_bytes: [u8; 8] = frame[12..20]
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    let payload_len = u64::from_le_bytes(len_bytes);
    let payload_len: usize = payload_len
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    let expected_total = header
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or(PersistError::Truncated)?;
    if frame.len() != expected_total {
        return Err(PersistError::Truncated);
    }
    let body_end = header + payload_len;
    let checksum_bytes: [u8; 8] = frame[body_end..]
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    let stored = u64::from_le_bytes(checksum_bytes);
    if fnv64(&frame[..body_end]) != stored {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok(&frame[header..body_end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDAC2000);
        w.u64(u64::MAX);
        w.str("snapshot");
        let frame = seal(w.into_bytes());
        let payload = unseal(&frame).expect("valid frame");
        let mut r = Reader::new(payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDAC2000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "snapshot");
        assert!(r.is_done());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let mut w = Writer::new();
        w.str("payload of a reasonable length");
        let frame = seal(w.into_bytes());
        for len in 0..frame.len() {
            assert!(unseal(&frame[..len]).is_err(), "truncated to {len} bytes");
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let mut w = Writer::new();
        w.u64(42);
        let frame = seal(w.into_bytes());
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    unseal(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn foreign_and_future_files_are_rejected() {
        assert!(matches!(unseal(b""), Err(PersistError::Truncated)));
        let other = seal(vec![1, 2, 3]);
        let mut wrong_magic = other.clone();
        wrong_magic[..8].copy_from_slice(b"NOTASNAP");
        assert!(matches!(unseal(&wrong_magic), Err(PersistError::BadMagic)));
        let mut future = other;
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            unseal(&future),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn corrupt_length_cannot_drive_huge_allocations() {
        // A payload claiming a 2^60-element string must fail fast.
        let mut w = Writer::new();
        w.u64(1 << 60);
        let frame = seal(w.into_bytes());
        let payload = unseal(&frame).expect("frame itself is fine");
        let mut r = Reader::new(payload);
        assert!(matches!(r.str(), Err(PersistError::Truncated)));
    }
}
