//! Snapshot encoding/decoding and atomic file i/o.

use crate::format::{seal, unseal, PersistError, Reader, Writer};
use std::fs;
use std::io::Write as _;
use std::path::Path;
use wlac_atpg::Trace;
use wlac_baselines::{FrameClause, FrameLit};
use wlac_bv::Bv;
use wlac_faultinject::{FaultPlan, FaultSite};
use wlac_netlist::{GateKind, NetId, Netlist};
use wlac_portfolio::{Engine, EngineHistory, Verdict};
use wlac_service::{design_hash, DesignHash, KnowledgeBase, PropertyHash, VerdictRecord};

/// One design's durable state: the canonical netlist (so a restarted server
/// can re-register the design without any client round-trip), the learning
/// store, and the cached verdicts.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The canonical netlist; its [`design_hash`] must match the knowledge
    /// base's binding (checked on load).
    pub netlist: Netlist,
    /// The design's learning store. Datapath infeasibility facts are never
    /// written (matching the service's import trust policy); everything else
    /// — frame-relative clauses, ESTG conflict cubes, engine history —
    /// round-trips.
    pub knowledge: KnowledgeBase,
    /// Cached (always definitive) verdicts of this design.
    pub verdicts: Vec<VerdictRecord>,
}

/// Canonical snapshot file name for a design: `d<hash>.wlacsnap`.
pub fn snapshot_file_name(design: DesignHash) -> String {
    format!("{design}.wlacsnap")
}

/// Name of the last-good backup kept beside a design's snapshot:
/// `d<hash>.wlacsnap.bak`. Written by [`save_snapshot`] just before the new
/// frame is published, so a snapshot corrupted later (torn write, disk
/// fault) still leaves one older-but-valid generation to boot from.
pub fn backup_file_name(design: DesignHash) -> String {
    format!("{design}.wlacsnap.bak")
}

// --- encoding ----------------------------------------------------------------

fn write_bv(w: &mut Writer, value: &Bv) {
    w.usize(value.width());
    for word in value.words() {
        w.u64(*word);
    }
}

fn read_bv(r: &mut Reader<'_>) -> Result<Bv, PersistError> {
    let width = r.scalar()?;
    if width == 0 {
        return Err(PersistError::Malformed("zero-width value"));
    }
    let words = width.div_ceil(64);
    if words * 8 > 1 << 20 {
        return Err(PersistError::Malformed("value impossibly wide"));
    }
    let mut buf = Vec::with_capacity(words);
    for _ in 0..words {
        buf.push(r.u64()?);
    }
    Ok(Bv::from_words(width, &buf))
}

/// Stable tag per gate kind (shared vocabulary with the service's design
/// hash, which uses the same numbering).
fn gate_kind_tag(kind: &GateKind) -> u8 {
    match kind {
        GateKind::Const(_) => 0,
        GateKind::Not => 1,
        GateKind::And => 2,
        GateKind::Or => 3,
        GateKind::Xor => 4,
        GateKind::Buf => 5,
        GateKind::ReduceAnd => 6,
        GateKind::ReduceOr => 7,
        GateKind::ReduceXor => 8,
        GateKind::Add => 9,
        GateKind::Sub => 10,
        GateKind::Mul => 11,
        GateKind::Shl => 12,
        GateKind::Shr => 13,
        GateKind::Eq => 14,
        GateKind::Ne => 15,
        GateKind::Lt => 16,
        GateKind::Le => 17,
        GateKind::Gt => 18,
        GateKind::Ge => 19,
        GateKind::Mux => 20,
        GateKind::Concat => 21,
        GateKind::Slice { .. } => 22,
        GateKind::ZeroExt => 23,
        GateKind::Dff { .. } => 24,
    }
}

fn write_gate_kind(w: &mut Writer, kind: &GateKind) {
    w.u8(gate_kind_tag(kind));
    match kind {
        GateKind::Const(v) => write_bv(w, v),
        GateKind::Slice { lo } => w.usize(*lo),
        GateKind::Dff { init } => match init {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                write_bv(w, v);
            }
        },
        _ => {}
    }
}

fn read_gate_kind(r: &mut Reader<'_>) -> Result<GateKind, PersistError> {
    Ok(match r.u8()? {
        0 => GateKind::Const(read_bv(r)?),
        1 => GateKind::Not,
        2 => GateKind::And,
        3 => GateKind::Or,
        4 => GateKind::Xor,
        5 => GateKind::Buf,
        6 => GateKind::ReduceAnd,
        7 => GateKind::ReduceOr,
        8 => GateKind::ReduceXor,
        9 => GateKind::Add,
        10 => GateKind::Sub,
        11 => GateKind::Mul,
        12 => GateKind::Shl,
        13 => GateKind::Shr,
        14 => GateKind::Eq,
        15 => GateKind::Ne,
        16 => GateKind::Lt,
        17 => GateKind::Le,
        18 => GateKind::Gt,
        19 => GateKind::Ge,
        20 => GateKind::Mux,
        21 => GateKind::Concat,
        22 => GateKind::Slice { lo: r.scalar()? },
        23 => GateKind::ZeroExt,
        24 => GateKind::Dff {
            init: if r.bool()? { Some(read_bv(r)?) } else { None },
        },
        _ => return Err(PersistError::Malformed("unknown gate kind")),
    })
}

pub(crate) fn write_netlist(w: &mut Writer, netlist: &Netlist) {
    w.str(netlist.name());
    w.usize(netlist.net_count());
    for net in netlist.nets() {
        w.usize(netlist.net_width(net));
        match netlist.net_name(net) {
            Some(name) => {
                w.bool(true);
                w.str(name);
            }
            None => w.bool(false),
        }
    }
    w.usize(netlist.inputs().len());
    for input in netlist.inputs() {
        w.usize(input.index());
    }
    w.usize(netlist.gate_count());
    for (_, gate) in netlist.gates() {
        write_gate_kind(w, &gate.kind);
        w.usize(gate.inputs.len());
        for input in gate.inputs.iter() {
            w.usize(input.index());
        }
        w.usize(gate.output.index());
    }
    w.usize(netlist.outputs().len());
    for (name, net) in netlist.outputs() {
        w.str(name);
        w.usize(net.index());
    }
}

fn read_net_id(r: &mut Reader<'_>, net_count: usize) -> Result<NetId, PersistError> {
    let index = r.scalar()?;
    if index >= net_count {
        return Err(PersistError::Malformed("net id out of range"));
    }
    Ok(NetId::from_index(index))
}

/// Rebuilds the netlist through the ordinary constructors, re-running every
/// gate shape validation — a snapshot can describe an ill-typed circuit only
/// if the builder itself would accept it.
pub(crate) fn read_netlist(r: &mut Reader<'_>) -> Result<Netlist, PersistError> {
    let name = r.str()?;
    let mut netlist = Netlist::new(name);
    let net_count = r.len(9)?;
    for _ in 0..net_count {
        let width = r.scalar()?;
        if width == 0 || width > 1 << 20 {
            return Err(PersistError::Malformed("net width out of range"));
        }
        let name = if r.bool()? { Some(r.str()?) } else { None };
        netlist.add_named_net(width, name);
    }
    let input_count = r.len(8)?;
    for _ in 0..input_count {
        let net = read_net_id(r, net_count)?;
        netlist.mark_input(net);
    }
    let gate_count = r.len(2)?;
    for _ in 0..gate_count {
        let kind = read_gate_kind(r)?;
        let pin_count = r.len(8)?;
        let mut inputs = Vec::with_capacity(pin_count);
        for _ in 0..pin_count {
            inputs.push(read_net_id(r, net_count)?);
        }
        let output = read_net_id(r, net_count)?;
        if netlist.driver(output).is_some() || netlist.is_input(output) {
            return Err(PersistError::Malformed("net driven twice"));
        }
        netlist
            .add_gate(kind, inputs, output)
            .map_err(|_| PersistError::Malformed("ill-shaped gate"))?;
    }
    let output_count = r.len(9)?;
    for _ in 0..output_count {
        let name = r.str()?;
        let net = read_net_id(r, net_count)?;
        netlist.mark_output(name, net);
    }
    Ok(netlist)
}

fn write_knowledge(w: &mut Writer, knowledge: &KnowledgeBase) {
    let seeds = knowledge.clauses.to_seeds();
    w.usize(seeds.len());
    for clause in &seeds {
        w.u32(clause.depth);
        w.usize(clause.lits.len());
        for lit in &clause.lits {
            w.u32(lit.frame);
            w.usize(lit.net.index());
            w.u32(lit.bit);
            w.bool(lit.negated);
        }
    }
    let mut entries: Vec<((NetId, bool), u64)> = knowledge.search.estg.entries().collect();
    entries.sort_unstable(); // deterministic bytes for identical stores
    w.usize(entries.len());
    for ((net, value), count) in entries {
        w.usize(net.index());
        w.bool(value);
        w.u64(count);
    }
    let (wins, runs) = knowledge.history.counts();
    for v in wins.iter().chain(runs.iter()) {
        w.u64(*v);
    }
}

fn read_knowledge(r: &mut Reader<'_>, design: DesignHash) -> Result<KnowledgeBase, PersistError> {
    let mut knowledge = KnowledgeBase::new(design);
    let clause_count = r.len(12)?;
    for _ in 0..clause_count {
        let depth = r.u32()?;
        let lit_count = r.len(17)?;
        let mut lits = Vec::with_capacity(lit_count);
        for _ in 0..lit_count {
            lits.push(FrameLit {
                frame: r.u32()?,
                net: NetId::from_index(r.scalar()?),
                bit: r.u32()?,
                negated: r.bool()?,
            });
        }
        knowledge.clauses.insert(&FrameClause { depth, lits });
    }
    let estg_count = r.len(10)?;
    for _ in 0..estg_count {
        let net = NetId::from_index(r.scalar()?);
        let value = r.bool()?;
        let count = r.u64()?;
        knowledge.search.estg.record_conflicts(net, value, count);
    }
    let mut wins = [0u64; 3];
    let mut runs = [0u64; 3];
    for v in wins.iter_mut().chain(runs.iter_mut()) {
        *v = r.u64()?;
    }
    knowledge.history = EngineHistory::from_counts(wins, runs);
    Ok(knowledge)
}

fn write_trace(w: &mut Writer, trace: &Trace) {
    w.usize(trace.initial_state.len());
    for (net, value) in &trace.initial_state {
        w.usize(net.index());
        write_bv(w, value);
    }
    w.usize(trace.inputs.len());
    for cycle in &trace.inputs {
        w.usize(cycle.len());
        for (net, value) in cycle {
            w.usize(net.index());
            write_bv(w, value);
        }
    }
}

fn read_trace(r: &mut Reader<'_>) -> Result<Trace, PersistError> {
    let read_pairs = |r: &mut Reader<'_>| -> Result<Vec<(NetId, Bv)>, PersistError> {
        let count = r.len(16)?;
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let net = NetId::from_index(r.scalar()?);
            pairs.push((net, read_bv(r)?));
        }
        Ok(pairs)
    };
    let initial_state = read_pairs(r)?;
    let cycle_count = r.len(8)?;
    let mut inputs = Vec::with_capacity(cycle_count);
    for _ in 0..cycle_count {
        inputs.push(read_pairs(r)?);
    }
    Ok(Trace {
        initial_state,
        inputs,
    })
}

pub(crate) fn write_verdict(w: &mut Writer, verdict: &Verdict) -> Result<(), PersistError> {
    match verdict {
        Verdict::Holds { proved, frames } => {
            w.u8(0);
            w.bool(*proved);
            w.usize(*frames);
        }
        Verdict::Violated { trace } => {
            w.u8(1);
            write_trace(w, trace);
        }
        Verdict::WitnessFound { trace } => {
            w.u8(2);
            write_trace(w, trace);
        }
        Verdict::WitnessAbsent { frames } => {
            w.u8(3);
            w.usize(*frames);
        }
        Verdict::Unknown { .. } | Verdict::Timeout { .. } => {
            return Err(PersistError::Malformed(
                "non-definitive verdicts are never persisted",
            ))
        }
    }
    Ok(())
}

pub(crate) fn read_verdict(r: &mut Reader<'_>) -> Result<Verdict, PersistError> {
    Ok(match r.u8()? {
        0 => Verdict::Holds {
            proved: r.bool()?,
            frames: r.scalar()?,
        },
        1 => Verdict::Violated {
            trace: read_trace(r)?,
        },
        2 => Verdict::WitnessFound {
            trace: read_trace(r)?,
        },
        3 => Verdict::WitnessAbsent {
            frames: r.scalar()?,
        },
        _ => return Err(PersistError::Malformed("unknown verdict tag")),
    })
}

fn encode(snapshot: &Snapshot) -> Result<Vec<u8>, PersistError> {
    let mut w = Writer::new();
    w.u64(snapshot.knowledge.design().0);
    write_netlist(&mut w, &snapshot.netlist);
    write_knowledge(&mut w, &snapshot.knowledge);
    w.usize(snapshot.verdicts.len());
    for record in &snapshot.verdicts {
        w.u64(record.property.0);
        w.u64(record.config);
        w.u8(record.winner.map(Engine::code).unwrap_or(u8::MAX));
        write_verdict(&mut w, &record.verdict)?;
    }
    Ok(w.into_bytes())
}

fn decode(payload: &[u8]) -> Result<Snapshot, PersistError> {
    let mut r = Reader::new(payload);
    let design = DesignHash(r.u64()?);
    let netlist = read_netlist(&mut r)?;
    if design_hash(&netlist) != design {
        return Err(PersistError::Malformed(
            "netlist does not reproduce the recorded design hash",
        ));
    }
    let knowledge = read_knowledge(&mut r, design)?;
    let verdict_count = r.len(17)?;
    let mut verdicts = Vec::with_capacity(verdict_count);
    for _ in 0..verdict_count {
        let property = PropertyHash(r.u64()?);
        let config = r.u64()?;
        let winner = match r.u8()? {
            u8::MAX => None,
            code => Some(
                Engine::from_code(code).ok_or(PersistError::Malformed("unknown engine code"))?,
            ),
        };
        verdicts.push(VerdictRecord {
            property,
            config,
            verdict: read_verdict(&mut r)?,
            winner,
        });
    }
    if !r.is_done() {
        return Err(PersistError::Malformed("trailing bytes after snapshot"));
    }
    Ok(Snapshot {
        netlist,
        knowledge,
        verdicts,
    })
}

/// Encodes a snapshot as a complete sealed frame (header + payload +
/// checksum) — the same bytes [`save_snapshot`] writes. Used when a snapshot
/// travels over a transport other than the file system (e.g. the network
/// server's `export_knowledge`).
///
/// # Errors
///
/// [`PersistError::Malformed`] when the snapshot contains a non-persistable
/// (non-definitive) verdict.
pub fn encode_snapshot(snapshot: &Snapshot) -> Result<Vec<u8>, PersistError> {
    Ok(seal(encode(snapshot)?))
}

/// Validates and decodes a sealed frame produced by [`encode_snapshot`] /
/// [`save_snapshot`].
///
/// # Errors
///
/// Any [`PersistError`]; nothing about the input is trusted.
pub fn decode_snapshot(frame: &[u8]) -> Result<Snapshot, PersistError> {
    decode(unseal(frame)?)
}

// --- file i/o ----------------------------------------------------------------

/// Writes a snapshot atomically: the frame goes to a temporary file in the
/// target directory, is flushed to disk, and is renamed over `path`. A crash
/// at any point leaves either the old snapshot or no file under `path` —
/// never a partial one.
///
/// # Errors
///
/// [`PersistError::Io`] on file-system failure (the temporary file is
/// cleaned up best-effort), [`PersistError::Malformed`] when the snapshot
/// contains a non-persistable (non-definitive) verdict.
pub fn save_snapshot(path: &Path, snapshot: &Snapshot) -> Result<(), PersistError> {
    save_snapshot_faulted(path, snapshot, &FaultPlan::disabled())
}

/// [`save_snapshot`] with a fault-injection plan threaded through: a
/// [`FaultSite::SnapshotWrite`] rule fails the save outright (as a disk
/// would), a [`FaultSite::SnapshotTorn`] rule simulates a kill mid-write —
/// half a frame is left in the temporary file, *nothing* is cleaned up, and
/// the previously published snapshot under `path` is untouched. The disabled
/// plan makes this exactly [`save_snapshot`].
///
/// # Errors
///
/// As [`save_snapshot`], plus the injected failures (reported as
/// [`PersistError::Io`]).
pub fn save_snapshot_faulted(
    path: &Path,
    snapshot: &Snapshot,
    faults: &FaultPlan,
) -> Result<(), PersistError> {
    // Unique per save, not just per process: concurrent saves of the same
    // design (two server threads autosaving after their batches) must not
    // share a temp file, or one thread's rename could publish the other's
    // half-written frame. With distinct temp files the last complete rename
    // wins and every published frame is whole.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let frame = encode_snapshot(snapshot)?;
    let file_name = path
        .file_name()
        .ok_or(PersistError::Malformed("snapshot path has no file name"))?
        .to_string_lossy()
        .into_owned();
    if let Some(error) = faults.io_error(FaultSite::SnapshotWrite) {
        return Err(PersistError::Io(error));
    }
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp{}.{}",
        std::process::id(),
        SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    if faults.should_fire(FaultSite::SnapshotTorn) {
        // Simulated kill -9 mid-write: half a frame hits the disk, then the
        // process is gone — no cleanup, no rename, the published snapshot
        // survives untouched. `clean_stale_temp_files` sweeps the debris on
        // the next boot.
        let torn = &frame[..frame.len() / 2];
        let mut file = fs::File::create(&tmp)?;
        file.write_all(torn)?;
        file.sync_all()?;
        return Err(PersistError::Io(std::io::Error::other(
            "injected fault: snapshot_torn",
        )));
    }
    let result = (|| -> Result<(), PersistError> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&frame)?;
        file.sync_all()?;
        // Keep the previous generation as the last-good backup before
        // publishing the new one; a later corruption of `path` then still
        // has somewhere to fall back to.
        if path.exists() {
            let backup = path.with_file_name(format!("{file_name}.bak"));
            fs::copy(path, &backup).ok();
        }
        fs::rename(&tmp, path)?;
        // The rename (and the `.bak` promotion) are directory-entry updates:
        // until the directory itself reaches the disk, a power loss can make
        // a "published" snapshot vanish even though its data blocks were
        // synced. One directory fsync after the rename covers both entries;
        // a snapshot is only reported saved once it would survive the plug
        // being pulled.
        sync_parent_dir(path)?;
        Ok(())
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

/// Writes `bytes` to `path` atomically with the same temp + `write_all` +
/// `sync_all` + rename + parent-directory-fsync discipline as
/// [`save_snapshot`] (minus the `.bak` generation): a crash at any point
/// leaves either the old file or no file under `path`, never a partial one.
/// Exposed for other durable artifacts — the server's post-mortem dumps
/// reuse it so a crash while dumping a crash cannot corrupt the evidence.
///
/// # Errors
///
/// [`std::io::Error`] on file-system failure (the temporary file is cleaned
/// up best-effort) or when `path` has no file name.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let result = (|| -> std::io::Result<()> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

/// Fsyncs the directory containing `path`, making its entry updates (rename,
/// create, truncate) power-loss durable. A no-op error on platforms where
/// directories cannot be opened for sync is not swallowed: durability the
/// caller cannot rely on must be reported, not pretended.
pub(crate) fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    fs::File::open(parent)?.sync_all()
}

/// Removes stale snapshot temp files (`.{name}.tmp{pid}.{seq}` debris from
/// writers that died mid-save) under `dir`, returning how many were removed.
/// Call on boot, before scanning for snapshots.
///
/// # Errors
///
/// [`std::io::Error`] when the directory itself cannot be read; failure to
/// remove an individual file is ignored (it will be retried next boot).
pub fn clean_stale_temp_files(dir: &Path) -> std::io::Result<usize> {
    let mut removed = 0;
    for entry in fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.')
            && name.contains(".wlacsnap.tmp")
            && entry.path().is_file()
            && fs::remove_file(entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Reads and fully validates a snapshot file. See the crate docs for the
/// validation layers; everything this returns has at least passed the
/// checksum, the bounds-checked decode, the netlist shape checks and the
/// design-hash reproduction check.
///
/// # Errors
///
/// Any [`PersistError`]; the caller should treat every variant as "this
/// snapshot does not exist" and fall back to a cold start.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let frame = fs::read(path)?;
    decode(unseal(&frame)?)
}

/// [`load_snapshot`] with degraded-mode recovery: when the primary file is
/// missing or fails any validation layer, the last-good backup
/// (`<path>.bak`, kept by [`save_snapshot`]) is tried before giving up. The
/// `bool` is `true` when the snapshot came from the backup — the caller
/// should log it and count it, because it means the primary was lost.
///
/// # Errors
///
/// The *primary's* error when both generations fail — that is the file the
/// operator should investigate.
pub fn load_snapshot_with_fallback(path: &Path) -> Result<(Snapshot, bool), PersistError> {
    let primary = match load_snapshot(path) {
        Ok(snapshot) => return Ok((snapshot, false)),
        Err(error) => error,
    };
    let Some(file_name) = path.file_name() else {
        return Err(primary);
    };
    let backup = path.with_file_name(format!("{}.bak", file_name.to_string_lossy()));
    match load_snapshot(&backup) {
        Ok(snapshot) => Ok((snapshot, true)),
        Err(_) => Err(primary),
    }
}
