//! # wlac-persist — versioned, checksummed on-disk knowledge snapshots
//!
//! PR 4's [`wlac_service::VerificationService`] accumulates a per-design
//! [`wlac_service::KnowledgeBase`] and a verdict cache — and loses both on
//! every process exit. This crate is the durability layer: a [`Snapshot`]
//! bundles one design's canonical netlist, its learning store and its cached
//! verdicts into a self-contained binary file that a restarted server reads
//! back to answer repeat queries warm.
//!
//! The format is deliberately paranoid, because a snapshot crosses a trust
//! boundary (the file system) between sessions:
//!
//! * **magic + version** — a foreign or future file is rejected before any
//!   payload is touched;
//! * **FNV-64 checksum** over the entire frame — truncation or bit rot is
//!   detected instead of decoded;
//! * **bounds-checked decoding** — every length is validated against the
//!   remaining bytes, so a corrupt length field cannot trigger huge
//!   allocations;
//! * **structural re-validation** — the netlist is *rebuilt* through the
//!   ordinary [`wlac_netlist::Netlist`] constructors (which re-run all gate
//!   shape checks) and must reproduce the design hash recorded in the file;
//!   clauses and verdicts are then re-validated again by the service's
//!   [`wlac_service::KnowledgeError`] import path before anything is
//!   trusted. Datapath infeasibility facts are excluded from snapshots
//!   entirely, mirroring the import policy of PR 4 (they replay
//!   verdict-affecting conclusions and cannot be structurally re-validated).
//!
//! Writes are atomic: the snapshot is written to a temporary file in the
//! destination directory, flushed, and renamed over the target, so a crash
//! mid-write leaves the previous snapshot intact and never a partial file
//! under the target name. Each successful save also keeps the previous
//! generation as `<file>.bak`, and [`load_snapshot_with_fallback`] boots
//! from it when the primary is lost or corrupt; [`clean_stale_temp_files`]
//! sweeps the temp-file debris of writers that died mid-save.
//!
//! # Examples
//!
//! ```
//! use wlac_netlist::Netlist;
//! use wlac_persist::{load_snapshot, save_snapshot, Snapshot};
//! use wlac_service::{design_hash, KnowledgeBase};
//!
//! let mut nl = Netlist::new("adder");
//! let a = nl.input("a", 4);
//! let b = nl.input("b", 4);
//! let s = nl.add(a, b);
//! nl.mark_output("s", s);
//! let snapshot = Snapshot {
//!     netlist: nl.clone(),
//!     knowledge: KnowledgeBase::new(design_hash(&nl)),
//!     verdicts: Vec::new(),
//! };
//!
//! let path = std::env::temp_dir().join(format!("doc-{}.wlacsnap", std::process::id()));
//! save_snapshot(&path, &snapshot)?;
//! let restored = load_snapshot(&path)?;
//! assert_eq!(design_hash(&restored.netlist), design_hash(&nl));
//! std::fs::remove_file(&path).ok();
//! # Ok::<(), wlac_persist::PersistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The serving path must degrade, not die: every fallible unwrap is a
// potential crash a fault can reach, so they are banned outside tests
// (see clippy.toml for the test exemption).
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod format;
mod journal;
mod snapshot;

pub use format::{PersistError, FORMAT_VERSION, MAGIC};
pub use journal::{
    journal_file_name, read_journal, recover_journal, remove_stale_journal, truncate_to_valid,
    AppendReceipt, DurabilityMode, JournalRecord, JournalReplay, JournalSink, JournalWriter,
    JOURNAL_MAGIC,
};
pub use snapshot::{
    backup_file_name, clean_stale_temp_files, decode_snapshot, encode_snapshot, load_snapshot,
    load_snapshot_with_fallback, save_snapshot, save_snapshot_faulted, snapshot_file_name,
    write_atomic, Snapshot,
};
