//! The write-ahead knowledge journal: bounded-loss, O(delta) durability.
//!
//! Snapshots (see [`crate::snapshot`]) persist a design's *entire* state and
//! are too heavy to rewrite per job; before this module, everything earned
//! since the last autosave died with the process. The journal closes that
//! gap: as each raced job completes, the service's durability hook appends
//! one self-checksummed record — the definitive verdict (if any), the
//! harvested frame clauses, the ESTG conflict *delta* over the job's warm
//! seed and the engine-history delta — to `d<hash>.wlacjournal`, *before*
//! the result is acknowledged to any client.
//!
//! # On-disk layout
//!
//! ```text
//! header:  "WLACJRNL" | version u32 | payload_len u64 | payload | fnv64
//!          payload = design hash u64 | canonical netlist
//! record*: payload_len u32 | payload | fnv64(payload)
//! ```
//!
//! The header embeds the canonical netlist, so a journal is self-contained:
//! a design that crashed before its first snapshot still re-registers on
//! boot from the journal alone. Records are length-prefixed and
//! individually FNV-64 checksummed; recovery ([`read_journal`]) accepts the
//! longest valid prefix and *quarantines* the tail — a torn append, a
//! truncation or bit rot costs at most the unacknowledged suffix, never a
//! boot failure.
//!
//! # Compaction
//!
//! A successful snapshot autosave makes the journal redundant: the server
//! resets it to header-only ([`JournalWriter::reset`] /
//! [`JournalSink::reset`]). Boot is therefore always *snapshot (primary →
//! `.bak`) + journal suffix*. Replay is harmless-idempotent by
//! construction: verdicts and clauses deduplicate exactly in the service's
//! validated import paths, and ESTG/history deltas at worst over-count
//! after an unlucky crash between compaction and truncation — ordering
//! heuristics, never verdicts.
//!
//! # Group commit
//!
//! [`JournalWriter`] writes every record synchronously (a `kill -9` after
//! the append therefore never loses acknowledged work — the kernel page
//! cache survives the process) but batches the expensive `fsync` across
//! records: `fsync_batch = n` syncs every n-th append. Power-loss-critical
//! deployments run `strict` (batch 1); the default trades a bounded
//! power-loss window for an order of magnitude on the hot path.

use crate::format::{fnv64, PersistError, Reader, Writer, FORMAT_VERSION};
use crate::snapshot::{read_netlist, read_verdict, sync_parent_dir, write_netlist, write_verdict};
use std::collections::HashMap;
use std::fs;
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wlac_baselines::{FrameClause, FrameLit};
use wlac_faultinject::{FaultPlan, FaultSite, LockExt};
use wlac_netlist::{NetId, Netlist};
use wlac_portfolio::Engine;
use wlac_service::{
    design_hash, DesignHash, DurabilityRecord, DurabilitySink, PropertyHash, VerdictRecord,
};
use wlac_telemetry::{MetricsRegistry, RecorderHandle, RecorderKind, RecorderLayer};

/// First eight bytes of every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"WLACJRNL";

/// Canonical journal file name for a design: `d<hash>.wlacjournal`.
pub fn journal_file_name(design: DesignHash) -> String {
    format!("{design}.wlacjournal")
}

/// How the server persists earned state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// PR 5 behaviour: a full snapshot autosave after every answered batch;
    /// no journal. Coarse but simple — everything since the last autosave is
    /// lost on a crash.
    Snapshot,
    /// Write-ahead journal with group-commit fsync batching; snapshots
    /// become the compaction artifact. Acknowledged results survive process
    /// death; a power loss can cost at most one fsync batch.
    #[default]
    Journal,
    /// Journal with an fsync per record: acknowledged results survive power
    /// loss too, at the cost of one fsync on every job's hot path.
    Strict,
}

impl DurabilityMode {
    /// Stable lower-case name (flags, stats, log lines).
    pub fn as_str(self) -> &'static str {
        match self {
            DurabilityMode::Snapshot => "snapshot",
            DurabilityMode::Journal => "journal",
            DurabilityMode::Strict => "strict",
        }
    }

    /// Parses a `--durability` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "snapshot" => Some(DurabilityMode::Snapshot),
            "journal" => Some(DurabilityMode::Journal),
            "strict" => Some(DurabilityMode::Strict),
            _ => None,
        }
    }

    /// `true` when this mode writes a journal at all.
    pub fn journals(self) -> bool {
        !matches!(self, DurabilityMode::Snapshot)
    }
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal record: everything one completed raced job contributed.
#[derive(Debug, Clone, Default)]
pub struct JournalRecord {
    /// The cache entry the job created, when its verdict was definitive.
    pub verdict: Option<VerdictRecord>,
    /// Design-valid frame clauses harvested from the race.
    pub clauses: Vec<FrameClause>,
    /// ESTG conflicts added over the job's warm seed: `(net, value, count)`.
    pub estg_delta: Vec<(NetId, bool, u64)>,
    /// Engines the race spawned (the engine-history delta).
    pub ran: Vec<Engine>,
    /// The engine that won, when any did.
    pub winner: Option<Engine>,
}

/// A recovered journal: the longest valid prefix, decoded.
#[derive(Debug)]
pub struct JournalReplay {
    /// The design this journal belongs to (reproduced by the embedded
    /// netlist, checked).
    pub design: DesignHash,
    /// The canonical netlist from the header — enough to re-register the
    /// design even when no snapshot exists yet.
    pub netlist: Netlist,
    /// The valid records, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of the valid prefix (header + whole records).
    pub valid_bytes: u64,
    /// Bytes past the valid prefix — a torn append, truncation debris or bit
    /// rot. Recovery quarantines them; they were never acknowledged.
    pub quarantined_bytes: u64,
}

// --- record codec ------------------------------------------------------------

fn encode_record(record: &JournalRecord) -> Result<Vec<u8>, PersistError> {
    let mut w = Writer::new();
    match &record.verdict {
        None => w.bool(false),
        Some(v) => {
            w.bool(true);
            w.u64(v.property.0);
            w.u64(v.config);
            w.u8(v.winner.map(Engine::code).unwrap_or(u8::MAX));
            write_verdict(&mut w, &v.verdict)?;
        }
    }
    w.usize(record.clauses.len());
    for clause in &record.clauses {
        w.u32(clause.depth);
        w.usize(clause.lits.len());
        for lit in &clause.lits {
            w.u32(lit.frame);
            w.usize(lit.net.index());
            w.u32(lit.bit);
            w.bool(lit.negated);
        }
    }
    w.usize(record.estg_delta.len());
    for (net, value, count) in &record.estg_delta {
        w.usize(net.index());
        w.bool(*value);
        w.u64(*count);
    }
    w.usize(record.ran.len());
    for engine in &record.ran {
        w.u8(Engine::code(*engine));
    }
    w.u8(record.winner.map(Engine::code).unwrap_or(u8::MAX));
    Ok(w.into_bytes())
}

fn read_engine(code: u8) -> Result<Option<Engine>, PersistError> {
    if code == u8::MAX {
        return Ok(None);
    }
    Engine::from_code(code)
        .map(Some)
        .ok_or(PersistError::Malformed("unknown engine code"))
}

fn decode_record(payload: &[u8]) -> Result<JournalRecord, PersistError> {
    let mut r = Reader::new(payload);
    let verdict = if r.bool()? {
        let property = PropertyHash(r.u64()?);
        let config = r.u64()?;
        let winner = read_engine(r.u8()?)?;
        Some(VerdictRecord {
            property,
            config,
            verdict: read_verdict(&mut r)?,
            winner,
        })
    } else {
        None
    };
    let clause_count = r.len(12)?;
    let mut clauses = Vec::with_capacity(clause_count);
    for _ in 0..clause_count {
        let depth = r.u32()?;
        let lit_count = r.len(17)?;
        let mut lits = Vec::with_capacity(lit_count);
        for _ in 0..lit_count {
            lits.push(FrameLit {
                frame: r.u32()?,
                net: NetId::from_index(r.scalar()?),
                bit: r.u32()?,
                negated: r.bool()?,
            });
        }
        clauses.push(FrameClause { depth, lits });
    }
    let estg_count = r.len(10)?;
    let mut estg_delta = Vec::with_capacity(estg_count);
    for _ in 0..estg_count {
        let net = NetId::from_index(r.scalar()?);
        let value = r.bool()?;
        estg_delta.push((net, value, r.u64()?));
    }
    let ran_count = r.len(1)?;
    let mut ran = Vec::with_capacity(ran_count);
    for _ in 0..ran_count {
        ran.push(read_engine(r.u8()?)?.ok_or(PersistError::Malformed("engine list holds a gap"))?);
    }
    let winner = read_engine(r.u8()?)?;
    if !r.is_done() {
        return Err(PersistError::Malformed("trailing bytes after record"));
    }
    Ok(JournalRecord {
        verdict,
        clauses,
        estg_delta,
        ran,
        winner,
    })
}

/// One record as it lands on disk: length prefix, payload, checksum.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&fnv64(payload).to_le_bytes());
    frame
}

// --- header codec ------------------------------------------------------------

fn encode_header(design: DesignHash, netlist: &Netlist) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(design.0);
    write_netlist(&mut w, netlist);
    let payload = w.into_bytes();
    let mut frame = Vec::with_capacity(payload.len() + JOURNAL_MAGIC.len() + 20);
    frame.extend_from_slice(JOURNAL_MAGIC);
    frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&payload);
    let checksum = fnv64(&frame);
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame
}

/// Validates the journal header at the start of `bytes`; returns the design,
/// its netlist and the header's total length. Unlike a snapshot frame, bytes
/// *after* the header are expected (the records).
fn parse_header(bytes: &[u8]) -> Result<(DesignHash, Netlist, usize), PersistError> {
    let fixed = JOURNAL_MAGIC.len() + 4 + 8;
    if bytes.len() < fixed + 8 {
        return Err(PersistError::Truncated);
    }
    if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version_bytes: [u8; 4] = bytes[8..12]
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    let version = u32::from_le_bytes(version_bytes);
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let len_bytes: [u8; 8] = bytes[12..20]
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    let payload_len: usize = u64::from_le_bytes(len_bytes)
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    let body_end = fixed
        .checked_add(payload_len)
        .ok_or(PersistError::Truncated)?;
    let header_len = body_end.checked_add(8).ok_or(PersistError::Truncated)?;
    if bytes.len() < header_len {
        return Err(PersistError::Truncated);
    }
    let checksum_bytes: [u8; 8] = bytes[body_end..header_len]
        .try_into()
        .map_err(|_| PersistError::Truncated)?;
    if fnv64(&bytes[..body_end]) != u64::from_le_bytes(checksum_bytes) {
        return Err(PersistError::ChecksumMismatch);
    }
    let mut r = Reader::new(&bytes[fixed..body_end]);
    let design = DesignHash(r.u64()?);
    let netlist = read_netlist(&mut r)?;
    if !r.is_done() {
        return Err(PersistError::Malformed("trailing bytes after header"));
    }
    if design_hash(&netlist) != design {
        return Err(PersistError::Malformed(
            "netlist does not reproduce the recorded design hash",
        ));
    }
    Ok((design, netlist, header_len))
}

// --- recovery ----------------------------------------------------------------

/// Recovers a journal from `bytes`: validates the header, then accepts
/// records until the first truncated, corrupt or malformed one — the longest
/// valid prefix wins, everything after it is reported as quarantined.
///
/// # Errors
///
/// Only for an unusable *header* (the file is not a journal, or its identity
/// block is itself torn — in which case no record was ever acknowledged, so
/// nothing of value is lost). A damaged record region is never an error.
pub fn recover_journal(bytes: &[u8]) -> Result<JournalReplay, PersistError> {
    let (design, netlist, header_len) = parse_header(bytes)?;
    let mut records = Vec::new();
    let mut offset = header_len;
    while let Some(rest) = bytes.get(offset..) {
        if rest.len() < 4 {
            break;
        }
        let len_bytes: [u8; 4] = match rest[..4].try_into() {
            Ok(b) => b,
            Err(_) => break,
        };
        let payload_len = u32::from_le_bytes(len_bytes) as usize;
        let Some(payload) = rest.get(4..4 + payload_len) else {
            break;
        };
        let Some(checksum_bytes) = rest.get(4 + payload_len..4 + payload_len + 8) else {
            break;
        };
        let stored = match <[u8; 8]>::try_from(checksum_bytes) {
            Ok(b) => u64::from_le_bytes(b),
            Err(_) => break,
        };
        if fnv64(payload) != stored {
            break;
        }
        let Ok(record) = decode_record(payload) else {
            break;
        };
        records.push(record);
        offset += 4 + payload_len + 8;
    }
    Ok(JournalReplay {
        design,
        netlist,
        records,
        valid_bytes: offset as u64,
        quarantined_bytes: (bytes.len() - offset) as u64,
    })
}

/// Reads and recovers a journal file. See [`recover_journal`].
///
/// # Errors
///
/// [`PersistError::Io`] when the file cannot be read, plus
/// [`recover_journal`]'s header errors.
pub fn read_journal(path: &Path) -> Result<JournalReplay, PersistError> {
    let bytes = fs::read(path)?;
    recover_journal(&bytes)
}

/// Truncates a recovered journal file down to its valid prefix, preserving
/// the rejected tail beside it for the operator. Boot-time companion of
/// [`read_journal`]: without it the quarantined bytes stay in the file,
/// inflating every size-based view of the journal (metadata fallbacks,
/// compaction triggers) until a writer happens to reopen it.
///
/// # Errors
///
/// [`PersistError::Io`] when the truncation cannot be made durable; the
/// valid prefix is untouched either way.
pub fn truncate_to_valid(path: &Path, replay: &JournalReplay) -> Result<(), PersistError> {
    if replay.quarantined_bytes == 0 {
        return Ok(());
    }
    let bytes = fs::read(path)?;
    if bytes.len() as u64 <= replay.valid_bytes {
        return Ok(());
    }
    quarantine_tail(path, &bytes[replay.valid_bytes as usize..]);
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(replay.valid_bytes)?;
    file.sync_all()?;
    Ok(())
}

// --- the writer --------------------------------------------------------------

/// What one append did: bytes written and, when this append crossed the
/// group-commit boundary, how long the fsync took.
#[derive(Debug, Clone, Copy)]
pub struct AppendReceipt {
    /// Bytes the record occupies on disk (prefix + payload + checksum).
    pub bytes: u64,
    /// Fsync latency when this append synced the batch; `None` when the
    /// record only reached the kernel.
    pub fsync: Option<Duration>,
}

/// An open, append-only journal for one design.
///
/// Opening an existing file recovers it first: the torn tail (if any) is
/// copied to `<file>.quarantine` and truncated away, so the writer always
/// appends after the last valid record. All writes go straight to the file
/// descriptor — after `append` returns, a process kill cannot lose the
/// record (the page cache survives); only power loss can, bounded by the
/// fsync batch.
pub struct JournalWriter {
    file: fs::File,
    path: PathBuf,
    len: u64,
    header_len: u64,
    appends_since_sync: u64,
    fsync_batch: u64,
    faults: FaultPlan,
    /// A torn append leaves unreconcilable bytes at the tail; the writer
    /// refuses further appends (durability degrades, serving continues)
    /// until a [`JournalWriter::reset`] truncates past the damage.
    wedged: bool,
}

impl JournalWriter {
    /// Opens (recovering, see the type docs) or creates the journal for
    /// `design` at `path`. The second return is the number of tail bytes
    /// quarantined during recovery — zero for a clean or fresh journal.
    ///
    /// A file that exists but has an unusable header (not a journal, torn
    /// before the first append completed) is quarantined wholesale and
    /// recreated — by construction nothing in it was ever acknowledged.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on file-system failure.
    pub fn open(
        path: &Path,
        design: DesignHash,
        netlist: &Netlist,
        fsync_batch: u64,
        faults: FaultPlan,
    ) -> Result<(JournalWriter, u64), PersistError> {
        let fsync_batch = fsync_batch.max(1);
        let existing = match fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(PersistError::Io(e)),
        };
        let (header_len, valid_len, quarantined) = match existing {
            None => (0, 0, 0),
            Some(bytes) => match recover_journal(&bytes) {
                Ok(replay) if replay.design == design => {
                    if replay.quarantined_bytes > 0 {
                        quarantine_tail(path, &bytes[replay.valid_bytes as usize..]);
                    }
                    (
                        header_span(&bytes),
                        replay.valid_bytes,
                        replay.quarantined_bytes,
                    )
                }
                // Foreign design under our name, or an unusable header:
                // nothing in the file can belong to acknowledged work for
                // `design` — quarantine it all and start fresh.
                _ => {
                    quarantine_tail(path, &bytes);
                    (0, 0, bytes.len() as u64)
                }
            },
        };
        let mut file = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        let (len, header_len) = if valid_len == 0 {
            let header = encode_header(design, netlist);
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header)?;
            file.sync_all()?;
            sync_parent_dir(path)?;
            (header.len() as u64, header.len() as u64)
        } else {
            file.set_len(valid_len)?;
            file.seek(SeekFrom::Start(valid_len))?;
            if quarantined > 0 {
                file.sync_all()?;
            }
            (valid_len, header_len)
        };
        Ok((
            JournalWriter {
                file,
                path: path.to_path_buf(),
                len,
                header_len,
                appends_since_sync: 0,
                fsync_batch,
                faults,
                wedged: false,
            },
            quarantined,
        ))
    }

    /// Appends one record (write-through to the descriptor, fsync every
    /// `fsync_batch`-th append). Fault sites: [`FaultSite::JournalAppend`]
    /// fails before any byte is written; [`FaultSite::JournalTorn`] writes
    /// half the frame and wedges the writer; [`FaultSite::CrashPoint`]
    /// aborts the process between the two halves of the frame.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on (injected or real) failure; the journal's
    /// valid prefix is untouched either way.
    pub fn append(&mut self, record: &JournalRecord) -> Result<AppendReceipt, PersistError> {
        if self.wedged {
            return Err(PersistError::Io(std::io::Error::other(
                "journal wedged by an earlier torn append",
            )));
        }
        let payload = encode_record(record)?;
        let frame = frame_record(&payload);
        if let Some(error) = self.faults.io_error(FaultSite::JournalAppend) {
            return Err(PersistError::Io(error));
        }
        if self.faults.should_fire(FaultSite::JournalTorn) {
            // Simulated kill mid-append: half a frame reaches the disk and
            // stays there. The writer wedges — appending *after* a tear
            // would bury acknowledged-looking records behind garbage that
            // recovery rightly stops at.
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            let _ = self.file.sync_all();
            self.wedged = true;
            return Err(PersistError::Io(std::io::Error::other(
                "injected fault: journal_torn",
            )));
        }
        let half = frame.len() / 2;
        self.file.write_all(&frame[..half])?;
        // Injected hard kill at an exact mid-record offset: the crash-matrix
        // suite arms this in a subprocess; the half frame above is already
        // in the kernel, producing a real torn tail for recovery to face.
        self.faults.crash_point(FaultSite::CrashPoint);
        self.file.write_all(&frame[half..])?;
        self.len += frame.len() as u64;
        self.appends_since_sync += 1;
        let fsync = if self.appends_since_sync >= self.fsync_batch {
            let start = Instant::now();
            self.file.sync_all()?;
            self.appends_since_sync = 0;
            Some(start.elapsed())
        } else {
            None
        };
        Ok(AppendReceipt {
            bytes: frame.len() as u64,
            fsync,
        })
    }

    /// Forces any batched records to disk now (shutdown, pre-compaction).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the sync fails.
    pub fn flush(&mut self) -> Result<(), PersistError> {
        if self.appends_since_sync > 0 {
            self.file.sync_all()?;
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Compaction: a snapshot now holds everything, so truncate back to the
    /// header. Also clears a wedge — the damage is truncated away with the
    /// records.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the truncation cannot be made durable.
    pub fn reset(&mut self) -> Result<(), PersistError> {
        self.file.set_len(self.header_len)?;
        self.file.seek(SeekFrom::Start(self.header_len))?;
        self.file.sync_all()?;
        self.len = self.header_len;
        self.appends_since_sync = 0;
        self.wedged = false;
        Ok(())
    }

    /// Current on-disk length of the valid journal (header + records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the journal holds no records beyond its header.
    pub fn is_empty(&self) -> bool {
        self.len == self.header_len
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Length of the valid header at the start of `bytes` (0 when unusable) —
/// recovery helper for [`JournalWriter::open`].
fn header_span(bytes: &[u8]) -> u64 {
    parse_header(bytes)
        .map(|(_, _, len)| len as u64)
        .unwrap_or(0)
}

/// Removes a design's journal once a successful snapshot made it redundant:
/// the no-open-writer arm of [`JournalSink::reset`], also used directly by
/// snapshot-mode servers (whose sink is disabled but whose data directory
/// may still carry journals from an earlier journal-mode run — replayed at
/// every boot and never shrinking otherwise). Returns `false` when an
/// existing file could not be durably removed.
pub fn remove_stale_journal(dir: &Path, design: DesignHash) -> bool {
    let path = dir.join(journal_file_name(design));
    match fs::remove_file(&path) {
        Ok(()) => sync_parent_dir(&path).is_ok(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
        Err(_) => false,
    }
}

/// Best-effort preservation of damaged bytes beside the journal, for the
/// operator: recovery decisions never depend on it.
fn quarantine_tail(path: &Path, tail: &[u8]) {
    let Some(file_name) = path.file_name() else {
        return;
    };
    let side = path.with_file_name(format!("{}.quarantine", file_name.to_string_lossy()));
    let _ = fs::write(side, tail);
}

// --- the sink ----------------------------------------------------------------

enum SinkSlot {
    Open(JournalWriter),
    /// The journal could not be opened (or re-opened); durability for this
    /// design is degraded until a compaction or restart. Serving continues.
    Broken,
}

/// One design's sink state: the writer slot plus an append sequence that
/// lets compaction detect records landing while a snapshot was exported.
struct SinkEntry {
    /// Count of append *attempts* for this design in this process (attempts,
    /// not successes: even a failed append may have torn bytes onto disk).
    /// Starts at 1 on the first record, so a token of 0 unambiguously means
    /// "no append was ever attempted".
    seq: u64,
    slot: SinkSlot,
}

/// The [`DurabilitySink`] implementation: one [`JournalWriter`] per design,
/// opened lazily on the design's first completed race, with shared fault
/// injection and optional telemetry.
///
/// Failures never propagate into job processing: an append that fails is
/// counted (`persist_journal_append_failures_total`) and logged, and the
/// service keeps answering — durability degrades, serving does not.
pub struct JournalSink {
    dir: PathBuf,
    fsync_batch: u64,
    faults: FaultPlan,
    metrics: Option<Arc<MetricsRegistry>>,
    recorder: RecorderHandle,
    writers: Mutex<HashMap<DesignHash, SinkEntry>>,
}

impl JournalSink {
    /// A sink journaling into `dir`, fsyncing every `fsync_batch`-th append
    /// per design (clamped to at least 1; 1 is strict mode).
    pub fn new(dir: &Path, fsync_batch: u64, faults: FaultPlan) -> Self {
        JournalSink {
            dir: dir.to_path_buf(),
            fsync_batch: fsync_batch.max(1),
            faults,
            metrics: None,
            recorder: RecorderHandle::disabled(),
            writers: Mutex::new(HashMap::new()),
        }
    }

    /// Publishes append/byte counters and the fsync-latency histogram into
    /// `registry`.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Emits journal lifecycle events (appends, quarantines, resets) into
    /// the always-on flight recorder.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Bytes the design's journal currently occupies (header included) — the
    /// server's compaction trigger. Falls back to file metadata when no
    /// writer is open (e.g. only boot-replayed so far).
    pub fn journal_bytes(&self, design: DesignHash) -> u64 {
        let writers = self.writers.lock_recover();
        match writers.get(&design).map(|entry| &entry.slot) {
            Some(SinkSlot::Open(writer)) => writer.len(),
            _ => fs::metadata(self.dir.join(journal_file_name(design)))
                .map(|m| m.len())
                .unwrap_or(0),
        }
    }

    /// Forces every open journal's batched records to disk (graceful
    /// shutdown). Failures are counted, not propagated.
    pub fn flush_all(&self) {
        let mut writers = self.writers.lock_recover();
        for entry in writers.values_mut() {
            if let SinkSlot::Open(writer) = &mut entry.slot {
                if writer.flush().is_err() {
                    self.count_failure();
                }
            }
        }
    }

    /// The design's current append progress, for [`JournalSink::reset`]:
    /// capture it *before* exporting the state a compacting snapshot will
    /// persist, so records appended while the snapshot was assembled or
    /// written (which that snapshot cannot contain) are detected and kept.
    /// A token of 0 means no append was ever attempted in this process.
    pub fn append_token(&self, design: DesignHash) -> u64 {
        self.writers
            .lock_recover()
            .get(&design)
            .map_or(0, |entry| entry.seq)
    }

    /// Compaction hand-off: after a successful snapshot of `design`,
    /// truncates its journal back to header-only (or deletes the file when
    /// no writer is open — the snapshot supersedes it either way) **iff** no
    /// append was attempted since `token` was captured. Returns `false` when
    /// appends raced the snapshot or the truncation failed; the journal then
    /// simply stays — replay is idempotent over the new snapshot, and the
    /// next threshold crossing retries the compaction.
    pub fn reset(&self, design: DesignHash, token: u64) -> bool {
        let mut writers = self.writers.lock_recover();
        // The lock serializes this check-and-truncate against `record`, so a
        // record observed here as "not yet appended" cannot land before the
        // truncation below.
        if writers.get(&design).map_or(0, |entry| entry.seq) != token {
            return false;
        }
        match writers.get_mut(&design).map(|entry| &mut entry.slot) {
            Some(SinkSlot::Open(writer)) => {
                let discarded = writer.len();
                let ok = writer.reset().is_ok();
                if ok {
                    self.recorder.record(
                        RecorderLayer::Persist,
                        RecorderKind::Compact,
                        discarded,
                        0,
                    );
                }
                ok
            }
            _ => remove_stale_journal(&self.dir, design),
        }
    }

    fn count_failure(&self) {
        if let Some(metrics) = &self.metrics {
            metrics
                .counter("persist_journal_append_failures_total")
                .inc();
        }
    }
}

impl DurabilitySink for JournalSink {
    fn record(&self, record: &DurabilityRecord<'_>) {
        let journal_record = JournalRecord {
            verdict: record.verdict.clone(),
            clauses: record.clauses.to_vec(),
            estg_delta: record.estg_delta.clone(),
            ran: record.ran.to_vec(),
            winner: record.winner,
        };
        let mut writers = self.writers.lock_recover();
        let entry = writers.entry(record.design).or_insert_with(|| {
            let path = self.dir.join(journal_file_name(record.design));
            let slot = match JournalWriter::open(
                &path,
                record.design,
                record.netlist,
                self.fsync_batch,
                self.faults.clone(),
            ) {
                Ok((writer, quarantined)) => {
                    if quarantined > 0 {
                        if let Some(metrics) = &self.metrics {
                            metrics
                                .counter("persist_journal_quarantined_bytes_total")
                                .add(quarantined);
                        }
                        self.recorder.record(
                            RecorderLayer::Persist,
                            RecorderKind::Fault,
                            quarantined,
                            0,
                        );
                        eprintln!(
                            "wlac-persist: quarantined {quarantined} torn byte(s) reopening {}",
                            path.display()
                        );
                    }
                    SinkSlot::Open(writer)
                }
                Err(error) => {
                    eprintln!(
                        "wlac-persist: cannot open journal {}: {error} (durability degraded)",
                        path.display()
                    );
                    SinkSlot::Broken
                }
            };
            SinkEntry { seq: 0, slot }
        });
        entry.seq += 1;
        match &mut entry.slot {
            SinkSlot::Broken => self.count_failure(),
            SinkSlot::Open(writer) => match writer.append(&journal_record) {
                Ok(receipt) => {
                    if let Some(metrics) = &self.metrics {
                        metrics.counter("persist_journal_appends_total").inc();
                        metrics
                            .counter("persist_journal_bytes_written_total")
                            .add(receipt.bytes);
                        if let Some(fsync) = receipt.fsync {
                            metrics
                                .histogram("persist_journal_fsync_ns")
                                .record(fsync.as_nanos() as u64);
                        }
                    }
                    self.recorder.record(
                        RecorderLayer::Persist,
                        RecorderKind::Append,
                        receipt.bytes,
                        writer.len(),
                    );
                }
                Err(error) => {
                    self.count_failure();
                    eprintln!(
                        "wlac-persist: journal append failed for {}: {error} (durability degraded)",
                        record.design
                    );
                }
            },
        }
    }
}
