//! Justification support: unjustified-gate detection, decision-point cuts and
//! the legal-1 / legal-0 probability heuristic (Section 3.2 of the paper).
//!
//! All per-decision bookkeeping lives in [`JustifyBuffers`]: dense,
//! generation-stamped arrays indexed by net replace the per-call
//! `HashSet`/`HashMap`s, so the steady-state decision loop performs no heap
//! allocation (the buffers are created once per search and reused).

use crate::assignment::Assignment;
use crate::implication::forward_eval;
use std::collections::VecDeque;
use wlac_netlist::{GateId, GateKind, NetId, Netlist};

/// Whether one gate's output carries required (known) bits that are not yet
/// implied by its current input values.
fn gate_is_unjustified(netlist: &Netlist, id: GateId, asg: &Assignment) -> bool {
    let gate = netlist.gate(id);
    let required = asg.value(gate.output);
    if required.is_all_x() {
        return false;
    }
    let forward = forward_eval(netlist, gate, asg);
    (0..required.width()).any(|i| required.bit(i).is_known() && !forward.bit(i).is_known())
}

/// A gate is *unjustified* when its output carries required (known) bits that
/// are not yet implied by its current input values. Fills `out` (cleared
/// first) with every such gate.
pub(crate) fn unjustified_gates(netlist: &Netlist, asg: &Assignment, out: &mut Vec<GateId>) {
    out.clear();
    for (id, _) in netlist.gates() {
        if gate_is_unjustified(netlist, id, asg) {
            out.push(id);
        }
    }
}

/// `true` when a net can serve as a decision point: a single-bit *control*
/// signal that still has an unknown value and is either a primary input, a
/// comparator output, or a multiple-fanout internal signal (the categories of
/// Section 3.2; flip-flop outputs appear as frame-0 pseudo inputs after the
/// time-frame expansion).
fn is_decision_candidate(netlist: &Netlist, asg: &Assignment, net: NetId) -> bool {
    if !netlist.is_control_net(net) || asg.value(net).is_fully_known() {
        return false;
    }
    match netlist.driver(net) {
        None => true, // primary input or frame-0 state variable
        Some(gate) => netlist.gate(gate).kind.is_comparator() || netlist.fanouts(net).len() > 1,
    }
}

/// Advances a generation counter, wiping the stamp array on the (practically
/// unreachable) wrap-around so stale stamps can never alias a fresh one.
/// Shared by every stamped frontier (decision cuts, probabilities, active
/// datapath islands).
pub(crate) fn bump_generation(stamps: &mut [u32], current: u32) -> u32 {
    if current == u32::MAX {
        stamps.fill(0);
        1
    } else {
        current + 1
    }
}

/// Reusable dense state for the justification frontier of one search:
/// the unjustified-gate list, the decision-cut scratch and the legal-1
/// probability arrays. Indexed by net/gate id; generations avoid O(nets)
/// clears between decisions.
#[derive(Debug)]
pub(crate) struct JustifyBuffers {
    /// Gates whose required output bits are not yet implied (recomputed each
    /// decision round by [`Self::compute_unjustified`]).
    pub(crate) unjustified: Vec<GateId>,
    /// Decision-point candidates of the latest cut.
    pub(crate) candidates: Vec<NetId>,
    net_stamp: Vec<u32>,
    cut_gen: u32,
    queue: VecDeque<NetId>,
    prob_sum: Vec<f64>,
    prob_count: Vec<u32>,
    prob_stamp: Vec<u32>,
    prob_gen: u32,
    frontier: VecDeque<(NetId, f64)>,
    /// Per-gate membership flag mirroring [`Self::unjustified`] (the list
    /// holds exactly the gates whose flag is set, in ascending id order).
    in_unjustified: Vec<bool>,
    /// Dedup stamps for the per-round dirty-gate worklist.
    gate_stamp: Vec<u32>,
    gate_gen: u32,
    dirty_gates: Vec<GateId>,
    /// `false` until the first full scan has seeded the membership flags —
    /// incremental maintenance is only sound on top of a complete baseline.
    warmed: bool,
    #[cfg(debug_assertions)]
    debug_scratch: Vec<GateId>,
}

impl JustifyBuffers {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let nets = netlist.net_count();
        JustifyBuffers {
            unjustified: Vec::new(),
            candidates: Vec::new(),
            net_stamp: vec![0; nets],
            cut_gen: 0,
            queue: VecDeque::new(),
            prob_sum: vec![0.0; nets],
            prob_count: vec![0; nets],
            prob_stamp: vec![0; nets],
            prob_gen: 0,
            frontier: VecDeque::new(),
            in_unjustified: vec![false; netlist.gate_count()],
            gate_stamp: vec![0; netlist.gate_count()],
            gate_gen: 0,
            dirty_gates: Vec::new(),
            warmed: false,
            #[cfg(debug_assertions)]
            debug_scratch: Vec::new(),
        }
    }

    /// Approximate heap bytes held by the justification buffers: the dense
    /// per-net/per-gate tables plus the worklists and frontiers at their
    /// current capacity. Feeds the search's memory estimate for the paper's
    /// Table 2 column.
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.unjustified.capacity() * size_of::<GateId>()
            + self.candidates.capacity() * size_of::<NetId>()
            + self.net_stamp.capacity() * size_of::<u32>()
            + self.queue.capacity() * size_of::<NetId>()
            + self.prob_sum.capacity() * size_of::<f64>()
            + self.prob_count.capacity() * size_of::<u32>()
            + self.prob_stamp.capacity() * size_of::<u32>()
            + self.frontier.capacity() * size_of::<(NetId, f64)>()
            + self.in_unjustified.capacity() * size_of::<bool>()
            + self.gate_stamp.capacity() * size_of::<u32>()
            + self.dirty_gates.capacity() * size_of::<GateId>()
    }

    /// Recomputes [`Self::unjustified`] for the current assignment by a full
    /// gate scan, reseeding the incremental membership flags.
    pub(crate) fn compute_unjustified(&mut self, netlist: &Netlist, asg: &Assignment) {
        for gate in &self.unjustified {
            self.in_unjustified[gate.index()] = false;
        }
        unjustified_gates(netlist, asg, &mut self.unjustified);
        for gate in &self.unjustified {
            self.in_unjustified[gate.index()] = true;
        }
        self.warmed = true;
    }

    /// Updates [`Self::unjustified`] from the assignment's dirty-net log:
    /// only gates adjacent to a changed net (its driver and its fanouts) are
    /// re-examined, so the per-decision cost is proportional to the changed
    /// region instead of the whole netlist. Falls back to the full scan when
    /// the assignment is not tracking changes or the flags are not yet
    /// seeded. Returns the number of gates re-examined (the full gate count
    /// for a fallback scan).
    pub(crate) fn update_unjustified(&mut self, netlist: &Netlist, asg: &mut Assignment) -> u64 {
        if !asg.dirty_tracking() || !self.warmed {
            asg.drain_dirty();
            self.compute_unjustified(netlist, asg);
            return netlist.gate_count() as u64;
        }
        // Phase 1: changed nets -> dirty gates, deduplicated by stamp.
        self.gate_gen = bump_generation(&mut self.gate_stamp, self.gate_gen);
        let gen = self.gate_gen;
        self.dirty_gates.clear();
        for net in asg.drain_dirty() {
            let driver = netlist.driver(net);
            for gate in driver.iter().chain(netlist.fanouts(net)) {
                if self.gate_stamp[gate.index()] != gen {
                    self.gate_stamp[gate.index()] = gen;
                    self.dirty_gates.push(*gate);
                }
            }
        }
        // Phase 2: re-examine exactly the dirty gates and patch the list.
        let mut removed = false;
        let mut added = false;
        for i in 0..self.dirty_gates.len() {
            let gate = self.dirty_gates[i];
            let now = gate_is_unjustified(netlist, gate, asg);
            let flag = &mut self.in_unjustified[gate.index()];
            if now && !*flag {
                *flag = true;
                self.unjustified.push(gate);
                added = true;
            } else if !now && *flag {
                *flag = false;
                removed = true;
            }
        }
        if removed {
            let flags = &self.in_unjustified;
            self.unjustified.retain(|g| flags[g.index()]);
        }
        if added {
            // Keep the full-scan order (ascending gate id) so incremental
            // and from-scratch maintenance are behaviourally identical all
            // the way down to decision ordering.
            self.unjustified.sort_unstable();
        }
        #[cfg(debug_assertions)]
        {
            // Differential oracle in debug/test builds: the worklist result
            // must be indistinguishable from a full rescan. The scratch
            // buffer is reused so the check itself stays allocation-free at
            // steady state (the alloc_free contract also covers debug runs).
            unjustified_gates(netlist, asg, &mut self.debug_scratch);
            debug_assert_eq!(
                self.debug_scratch, self.unjustified,
                "incremental unjustified set diverged from the full rescan"
            );
        }
        self.dirty_gates.len() as u64
    }

    /// Backward breadth-first traversal from the unjustified gates to a cut
    /// of candidate decision points, into [`Self::candidates`]. When the cut
    /// exceeds `limit`, the candidates with the highest fanout count are kept
    /// (as the paper prescribes).
    pub(crate) fn compute_decision_cut(
        &mut self,
        netlist: &Netlist,
        asg: &Assignment,
        limit: usize,
    ) {
        self.candidates.clear();
        self.cut_gen = bump_generation(&mut self.net_stamp, self.cut_gen);
        let gen = self.cut_gen;
        self.queue.clear();
        for gate_id in &self.unjustified {
            for input in &netlist.gate(*gate_id).inputs {
                if self.net_stamp[input.index()] != gen {
                    self.net_stamp[input.index()] = gen;
                    self.queue.push_back(*input);
                }
            }
        }
        while let Some(net) = self.queue.pop_front() {
            if is_decision_candidate(netlist, asg, net) {
                self.candidates.push(net);
                continue;
            }
            if let Some(driver) = netlist.driver(net) {
                for input in &netlist.gate(driver).inputs {
                    if self.net_stamp[input.index()] != gen {
                        self.net_stamp[input.index()] = gen;
                        self.queue.push_back(*input);
                    }
                }
            }
        }
        if self.candidates.len() > limit {
            // sort_unstable: the stable sort allocates its merge buffer.
            self.candidates
                .sort_unstable_by_key(|n| std::cmp::Reverse(netlist.fanouts(*n).len()));
            self.candidates.truncate(limit);
        }
    }

    /// Legal-1 probabilities (Definition 1) for single-bit signals between
    /// the unjustified gates and the decision points, computed backward with
    /// Rules 3–5 of the paper into the dense probability arrays (read back
    /// through [`Self::probability`]).
    pub(crate) fn compute_probabilities(&mut self, netlist: &Netlist, asg: &Assignment) {
        self.prob_gen = bump_generation(&mut self.prob_stamp, self.prob_gen);
        let gen = self.prob_gen;
        self.frontier.clear();
        // Seed: required output values of unjustified single-bit gates (Rule 3).
        for gate_id in &self.unjustified {
            let gate = netlist.gate(*gate_id);
            let required = asg.value(gate.output);
            if required.width() == 1 {
                if let Some(bit) = required.bit(0).to_bool() {
                    let p = if bit { 1.0 } else { 0.0 };
                    record(
                        &mut self.prob_sum,
                        &mut self.prob_count,
                        &mut self.prob_stamp,
                        gen,
                        gate.output,
                        p,
                    );
                    self.frontier.push_back((gate.output, p));
                }
            }
        }
        // Backward propagation with a visit budget to keep the computation
        // local to the justification region.
        let mut budget = 4 * netlist.gate_count().max(64);
        while let Some((net, p1)) = self.frontier.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let Some(driver) = netlist.driver(net) else {
                continue;
            };
            let gate = netlist.gate(driver);
            let is_unknown_bit =
                |n: &NetId| netlist.net_width(*n) == 1 && !asg.value(*n).is_fully_known();
            let unknown_inputs = gate.inputs.iter().filter(|n| is_unknown_bit(n)).count();
            if unknown_inputs == 0 {
                continue;
            }
            let n = unknown_inputs as f64;
            let p0 = 1.0 - p1;
            let q1 = match gate.kind {
                GateKind::Not => p0,
                GateKind::Buf | GateKind::Dff { .. } => p1,
                GateKind::And => {
                    // Output 1 forces every input to 1; output 0 admits
                    // (2^{n-1} - 1) / (2^n - 1) assignments with this input at 1.
                    let pow_n = (2f64).powf(n);
                    let frac = (pow_n / 2.0 - 1.0) / (pow_n - 1.0);
                    p1 + p0 * frac
                }
                GateKind::Or => {
                    // Output 0 forces every input to 0; output 1 admits
                    // 2^{n-1} / (2^n - 1) assignments with this input at 1.
                    let pow_n = (2f64).powf(n);
                    let frac = (pow_n / 2.0) / (pow_n - 1.0);
                    p1 * frac
                }
                GateKind::Xor => 0.5,
                _ => 0.5,
            };
            for input in &gate.inputs {
                if is_unknown_bit(input) {
                    record(
                        &mut self.prob_sum,
                        &mut self.prob_count,
                        &mut self.prob_stamp,
                        gen,
                        *input,
                        q1,
                    );
                    self.frontier.push_back((*input, q1));
                }
            }
        }
    }

    /// Legal-1 probability of `net` from the latest
    /// [`Self::compute_probabilities`] pass. Rule 5: a fanout stem takes the
    /// average of its branch probabilities.
    pub(crate) fn probability(&self, net: NetId) -> Option<f64> {
        let i = net.index();
        (self.prob_stamp[i] == self.prob_gen)
            .then(|| self.prob_sum[i] / f64::from(self.prob_count[i]))
    }
}

/// Accumulates one branch probability into the dense sum/count arrays.
fn record(sum: &mut [f64], count: &mut [u32], stamp: &mut [u32], gen: u32, net: NetId, p: f64) {
    let i = net.index();
    if stamp[i] != gen {
        stamp[i] = gen;
        sum[i] = p;
        count[i] = 1;
    } else {
        sum[i] += p;
        count[i] += 1;
    }
}

/// The legal assignment bias of Definition 2: `p1/(1-p1)` when `p1 >= 0.5`,
/// `(1-p1)/p1` otherwise. Returns `(bias, biased_value)`.
pub(crate) fn assignment_bias(p1: f64) -> (f64, bool) {
    const CAP: f64 = 1.0e9;
    if p1 >= 0.5 {
        let denom = 1.0 - p1;
        (
            if denom <= 0.0 {
                CAP
            } else {
                (p1 / denom).min(CAP)
            },
            true,
        )
    } else {
        (
            if p1 <= 0.0 {
                CAP
            } else {
                ((1.0 - p1) / p1).min(CAP)
            },
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_bv::Bv3;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    fn unjustified(netlist: &Netlist, asg: &Assignment) -> Vec<GateId> {
        let mut out = Vec::new();
        unjustified_gates(netlist, asg, &mut out);
        out
    }

    fn cut(netlist: &Netlist, asg: &Assignment, limit: usize) -> Vec<NetId> {
        let mut bufs = JustifyBuffers::new(netlist);
        bufs.compute_unjustified(netlist, asg);
        bufs.compute_decision_cut(netlist, asg, limit);
        bufs.candidates.clone()
    }

    fn probabilities(netlist: &Netlist, asg: &Assignment) -> JustifyBuffers {
        let mut bufs = JustifyBuffers::new(netlist);
        bufs.compute_unjustified(netlist, asg);
        bufs.compute_probabilities(netlist, asg);
        bufs
    }

    #[test]
    fn unjustified_detection() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let y = nl.and2(a, b);
        let mut asg = Assignment::new(&nl);
        // Nothing required: nothing unjustified.
        assert!(unjustified(&nl, &asg).is_empty());
        // Require y = 0 with unknown inputs: the AND gate is unjustified.
        asg.refine(y, &cube("1'b0")).unwrap();
        assert_eq!(unjustified(&nl, &asg).len(), 1);
        // Assign a = 0: the requirement becomes justified.
        asg.refine(a, &cube("1'b0")).unwrap();
        assert!(unjustified(&nl, &asg).is_empty());
    }

    #[test]
    fn decision_cut_stops_at_control_points() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let d1 = nl.input("d1", 8);
        let d2 = nl.input("d2", 8);
        let cmp = nl.gt(d1, d2); // comparator output: candidate
        let inner = nl.and2(a, b); // single fanout internal net: not a candidate
        let y = nl.and2(inner, cmp);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        let cut = cut(&nl, &asg, 16);
        // Candidates are the comparator output and the primary inputs a, b
        // (reached through the non-candidate internal AND).
        assert!(cut.contains(&cmp));
        assert!(cut.contains(&a));
        assert!(cut.contains(&b));
        assert!(!cut.contains(&inner));
        // The wide datapath inputs are never decision candidates.
        assert!(!cut.contains(&d1));
        assert!(!cut.contains(&d2));
    }

    #[test]
    fn decision_cut_respects_limit_by_fanout() {
        let mut nl = Netlist::new("t");
        let popular = nl.input("popular", 1);
        let rare = nl.input("rare", 1);
        let other = nl.input("other", 1);
        // `popular` fans out to two gates.
        let g1 = nl.and2(popular, rare);
        let g2 = nl.and2(popular, other);
        let y = nl.or2(g1, g2);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        assert_eq!(cut(&nl, &asg, 1), vec![popular]);
    }

    #[test]
    fn incremental_worklist_tracks_refines_and_backtracks() {
        // A chain of gates; refine and backtrack in several interleaved
        // rounds and require the incremental set to equal a full rescan at
        // every step (the debug_assert inside update_unjustified re-checks
        // this too, but this test also exercises the untracked fallback and
        // the recheck accounting).
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let c = nl.input("c", 1);
        let ab = nl.and2(a, b);
        let y = nl.or2(ab, c);
        let z = nl.xor2(a, c);
        let mut bufs = JustifyBuffers::new(&nl);
        let mut asg = Assignment::new(&nl);
        asg.enable_dirty_tracking();

        let check = |bufs: &JustifyBuffers, asg: &Assignment, nl: &Netlist| {
            let mut full = Vec::new();
            unjustified_gates(nl, asg, &mut full);
            assert_eq!(full, bufs.unjustified);
        };

        // First call falls back to the full scan (flags not seeded yet).
        let rechecked = bufs.update_unjustified(&nl, &mut asg);
        assert_eq!(rechecked, nl.gate_count() as u64);
        check(&bufs, &asg, &nl);

        asg.refine(y, &"1'b1".parse().unwrap()).unwrap();
        let m1 = asg.mark();
        let rechecked = bufs.update_unjustified(&nl, &mut asg);
        // Only gates adjacent to `y` were re-examined, not the whole netlist.
        assert!(rechecked < nl.gate_count() as u64);
        check(&bufs, &asg, &nl);
        assert_eq!(bufs.unjustified, vec![nl.driver(y).unwrap()]);

        // Justify the OR through c, making z's XOR requirement appear too.
        asg.refine(c, &"1'b1".parse().unwrap()).unwrap();
        asg.refine(z, &"1'b1".parse().unwrap()).unwrap();
        bufs.update_unjustified(&nl, &mut asg);
        check(&bufs, &asg, &nl);

        // Backtrack: the restores land on the dirty log and the set reverts.
        asg.backtrack_to(m1);
        bufs.update_unjustified(&nl, &mut asg);
        check(&bufs, &asg, &nl);
        assert_eq!(bufs.unjustified, vec![nl.driver(y).unwrap()]);

        // An untracked assignment always takes the full-scan fallback.
        let mut cold = Assignment::new(&nl);
        cold.refine(ab, &"1'b1".parse().unwrap()).unwrap();
        let mut cold_bufs = JustifyBuffers::new(&nl);
        let rechecked = cold_bufs.update_unjustified(&nl, &mut cold);
        assert_eq!(rechecked, nl.gate_count() as u64);
        check(&cold_bufs, &cold, &nl);
    }

    #[test]
    fn buffers_are_reusable_across_decision_rounds() {
        // Two rounds against different assignments through the same buffers:
        // the generation stamps must fully isolate the rounds.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let y = nl.and2(a, b);
        let z = nl.or2(a, b);
        let mut bufs = JustifyBuffers::new(&nl);

        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        bufs.compute_unjustified(&nl, &asg);
        assert_eq!(bufs.unjustified.len(), 1); // only the AND carries a requirement
        bufs.compute_decision_cut(&nl, &asg, 16);
        let first: Vec<NetId> = bufs.candidates.clone();
        assert!(first.contains(&a) && first.contains(&b));
        bufs.compute_probabilities(&nl, &asg);
        assert!((bufs.probability(a).unwrap() - 1.0).abs() < 1e-9);

        let mut asg = Assignment::new(&nl);
        asg.refine(z, &cube("1'b0")).unwrap();
        asg.refine(a, &cube("1'b0")).unwrap();
        bufs.compute_unjustified(&nl, &asg);
        bufs.compute_decision_cut(&nl, &asg, 16);
        assert_eq!(bufs.candidates, vec![b]);
        bufs.compute_probabilities(&nl, &asg);
        assert!((bufs.probability(b).unwrap() - 0.0).abs() < 1e-9);
        // `a` was seeded in round one only; its stamp must now be stale.
        assert_eq!(bufs.probability(a), None);
    }

    #[test]
    fn legal_probability_matches_paper_and_example() {
        // 2-input AND requiring output 0: each input's legal-1 probability is 1/3.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let y = nl.and2(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b0")).unwrap();
        let bufs = probabilities(&nl, &asg);
        assert!((bufs.probability(a).unwrap() - 1.0 / 3.0).abs() < 1e-9);
        assert!((bufs.probability(b).unwrap() - 1.0 / 3.0).abs() < 1e-9);

        // Requiring output 1 forces probability 1.
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        let bufs = probabilities(&nl, &asg);
        assert!((bufs.probability(a).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn or_gate_probability() {
        // 2-input OR requiring 1: q1 = 2 / 3.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let y = nl.or2(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        let bufs = probabilities(&nl, &asg);
        assert!((bufs.probability(a).unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_stem_averages_branches() {
        // The stem feeds an AND requiring 1 (q1 = 1.0) and an inverter chain
        // requiring 1 (q1 = 0.0 on the stem): average is 0.5.
        let mut nl = Netlist::new("t");
        let stem = nl.input("stem", 1);
        let other = nl.input("other", 1);
        let and_out = nl.and2(stem, other);
        let inv_out = nl.not(stem);
        let mut asg = Assignment::new(&nl);
        asg.refine(and_out, &cube("1'b1")).unwrap();
        asg.refine(inv_out, &cube("1'b1")).unwrap();
        let bufs = probabilities(&nl, &asg);
        assert!((bufs.probability(stem).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bias_definition() {
        let (bias, value) = assignment_bias(0.75);
        assert!((bias - 3.0).abs() < 1e-9);
        assert!(value);
        let (bias, value) = assignment_bias(0.25);
        assert!((bias - 3.0).abs() < 1e-9);
        assert!(!value);
        let (bias, _) = assignment_bias(0.5);
        assert!((bias - 1.0).abs() < 1e-9);
        let (bias, value) = assignment_bias(1.0);
        assert!(bias >= 1.0e9);
        assert!(value);
    }
}
