//! Justification support: unjustified-gate detection, decision-point cuts and
//! the legal-1 / legal-0 probability heuristic (Section 3.2 of the paper).

use crate::assignment::Assignment;
use crate::implication::forward_eval;
use std::collections::{HashMap, HashSet, VecDeque};
use wlac_netlist::{GateId, GateKind, NetId, Netlist};

/// A gate is *unjustified* when its output carries required (known) bits that
/// are not yet implied by its current input values.
pub(crate) fn unjustified_gates(netlist: &Netlist, asg: &Assignment) -> Vec<GateId> {
    let mut out = Vec::new();
    for (id, gate) in netlist.gates() {
        let required = asg.value(gate.output);
        if required.is_all_x() {
            continue;
        }
        let forward = forward_eval(netlist, gate, asg);
        let unjustified =
            (0..required.width()).any(|i| required.bit(i).is_known() && !forward.bit(i).is_known());
        if unjustified {
            out.push(id);
        }
    }
    out
}

/// `true` when a net can serve as a decision point: a single-bit *control*
/// signal that still has an unknown value and is either a primary input, a
/// comparator output, or a multiple-fanout internal signal (the categories of
/// Section 3.2; flip-flop outputs appear as frame-0 pseudo inputs after the
/// time-frame expansion).
fn is_decision_candidate(netlist: &Netlist, asg: &Assignment, net: NetId) -> bool {
    if !netlist.is_control_net(net) || asg.value(net).is_fully_known() {
        return false;
    }
    match netlist.driver(net) {
        None => true, // primary input or frame-0 state variable
        Some(gate) => netlist.gate(gate).kind.is_comparator() || netlist.fanouts(net).len() > 1,
    }
}

/// Backward breadth-first traversal from the unjustified gates to a cut of
/// candidate decision points. When the cut exceeds `limit`, the candidates
/// with the highest fanout count are kept (as the paper prescribes).
pub(crate) fn decision_cut(
    netlist: &Netlist,
    asg: &Assignment,
    unjustified: &[GateId],
    limit: usize,
) -> Vec<NetId> {
    let mut visited: HashSet<NetId> = HashSet::new();
    let mut queue: VecDeque<NetId> = VecDeque::new();
    let mut candidates: Vec<NetId> = Vec::new();
    for gate_id in unjustified {
        for input in &netlist.gate(*gate_id).inputs {
            if visited.insert(*input) {
                queue.push_back(*input);
            }
        }
    }
    while let Some(net) = queue.pop_front() {
        if is_decision_candidate(netlist, asg, net) {
            candidates.push(net);
            continue;
        }
        if let Some(driver) = netlist.driver(net) {
            for input in &netlist.gate(driver).inputs {
                if visited.insert(*input) {
                    queue.push_back(*input);
                }
            }
        }
    }
    if candidates.len() > limit {
        candidates.sort_by_key(|n| std::cmp::Reverse(netlist.fanouts(*n).len()));
        candidates.truncate(limit);
    }
    candidates
}

/// Legal-1 probabilities (Definition 1) for single-bit signals between the
/// unjustified gates and the decision points, computed backward with
/// Rules 3–5 of the paper.
pub(crate) fn legal_one_probabilities(
    netlist: &Netlist,
    asg: &Assignment,
    unjustified: &[GateId],
) -> HashMap<NetId, f64> {
    // Seed: required output values of unjustified single-bit gates (Rule 3).
    let mut sums: HashMap<NetId, (f64, usize)> = HashMap::new();
    let record = |map: &mut HashMap<NetId, (f64, usize)>, net: NetId, p: f64| {
        let entry = map.entry(net).or_insert((0.0, 0));
        entry.0 += p;
        entry.1 += 1;
    };
    let mut frontier: VecDeque<(NetId, f64)> = VecDeque::new();
    for gate_id in unjustified {
        let gate = netlist.gate(*gate_id);
        let required = asg.value(gate.output);
        if required.width() == 1 {
            if let Some(bit) = required.bit(0).to_bool() {
                let p = if bit { 1.0 } else { 0.0 };
                record(&mut sums, gate.output, p);
                frontier.push_back((gate.output, p));
            }
        }
    }
    // Backward propagation with a visit budget to keep the computation local
    // to the justification region.
    let mut budget = 4 * netlist.gate_count().max(64);
    while let Some((net, p1)) = frontier.pop_front() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(driver) = netlist.driver(net) else {
            continue;
        };
        let gate = netlist.gate(driver);
        let unknown_inputs: Vec<NetId> = gate
            .inputs
            .iter()
            .copied()
            .filter(|n| netlist.net_width(*n) == 1 && !asg.value(*n).is_fully_known())
            .collect();
        if unknown_inputs.is_empty() {
            continue;
        }
        let n = unknown_inputs.len() as f64;
        let p0 = 1.0 - p1;
        let q1 = match gate.kind {
            GateKind::Not => p0,
            GateKind::Buf | GateKind::Dff { .. } => p1,
            GateKind::And => {
                // Output 1 forces every input to 1; output 0 admits
                // (2^{n-1} - 1) / (2^n - 1) assignments with this input at 1.
                let pow_n = (2f64).powf(n);
                let frac = (pow_n / 2.0 - 1.0) / (pow_n - 1.0);
                p1 + p0 * frac
            }
            GateKind::Or => {
                // Output 0 forces every input to 0; output 1 admits
                // 2^{n-1} / (2^n - 1) assignments with this input at 1.
                let pow_n = (2f64).powf(n);
                let frac = (pow_n / 2.0) / (pow_n - 1.0);
                p1 * frac
            }
            GateKind::Xor => 0.5,
            _ => 0.5,
        };
        for input in unknown_inputs {
            record(&mut sums, input, q1);
            frontier.push_back((input, q1));
        }
    }
    // Rule 5: a fanout stem takes the average of its branch probabilities.
    sums.into_iter()
        .map(|(net, (sum, count))| (net, sum / count as f64))
        .collect()
}

/// The legal assignment bias of Definition 2: `p1/(1-p1)` when `p1 >= 0.5`,
/// `(1-p1)/p1` otherwise. Returns `(bias, biased_value)`.
pub(crate) fn assignment_bias(p1: f64) -> (f64, bool) {
    const CAP: f64 = 1.0e9;
    if p1 >= 0.5 {
        let denom = 1.0 - p1;
        (
            if denom <= 0.0 {
                CAP
            } else {
                (p1 / denom).min(CAP)
            },
            true,
        )
    } else {
        (
            if p1 <= 0.0 {
                CAP
            } else {
                ((1.0 - p1) / p1).min(CAP)
            },
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_bv::Bv3;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    #[test]
    fn unjustified_detection() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let y = nl.and2(a, b);
        let mut asg = Assignment::new(&nl);
        // Nothing required: nothing unjustified.
        assert!(unjustified_gates(&nl, &asg).is_empty());
        // Require y = 0 with unknown inputs: the AND gate is unjustified.
        asg.refine(y, &cube("1'b0")).unwrap();
        assert_eq!(unjustified_gates(&nl, &asg).len(), 1);
        // Assign a = 0: the requirement becomes justified.
        asg.refine(a, &cube("1'b0")).unwrap();
        assert!(unjustified_gates(&nl, &asg).is_empty());
    }

    #[test]
    fn decision_cut_stops_at_control_points() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let d1 = nl.input("d1", 8);
        let d2 = nl.input("d2", 8);
        let cmp = nl.gt(d1, d2); // comparator output: candidate
        let inner = nl.and2(a, b); // single fanout internal net: not a candidate
        let y = nl.and2(inner, cmp);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        let unjust = unjustified_gates(&nl, &asg);
        let cut = decision_cut(&nl, &asg, &unjust, 16);
        // Candidates are the comparator output and the primary inputs a, b
        // (reached through the non-candidate internal AND).
        assert!(cut.contains(&cmp));
        assert!(cut.contains(&a));
        assert!(cut.contains(&b));
        assert!(!cut.contains(&inner));
        // The wide datapath inputs are never decision candidates.
        assert!(!cut.contains(&d1));
        assert!(!cut.contains(&d2));
    }

    #[test]
    fn decision_cut_respects_limit_by_fanout() {
        let mut nl = Netlist::new("t");
        let popular = nl.input("popular", 1);
        let rare = nl.input("rare", 1);
        let other = nl.input("other", 1);
        // `popular` fans out to two gates.
        let g1 = nl.and2(popular, rare);
        let g2 = nl.and2(popular, other);
        let y = nl.or2(g1, g2);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        let unjust = unjustified_gates(&nl, &asg);
        let cut = decision_cut(&nl, &asg, &unjust, 1);
        assert_eq!(cut, vec![popular]);
    }

    #[test]
    fn legal_probability_matches_paper_and_example() {
        // 2-input AND requiring output 0: each input's legal-1 probability is 1/3.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let y = nl.and2(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b0")).unwrap();
        let unjust = unjustified_gates(&nl, &asg);
        let probs = legal_one_probabilities(&nl, &asg, &unjust);
        assert!((probs[&a] - 1.0 / 3.0).abs() < 1e-9);
        assert!((probs[&b] - 1.0 / 3.0).abs() < 1e-9);

        // Requiring output 1 forces probability 1.
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        let unjust = unjustified_gates(&nl, &asg);
        let probs = legal_one_probabilities(&nl, &asg, &unjust);
        assert!((probs[&a] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn or_gate_probability() {
        // 2-input OR requiring 1: q1 = 2 / 3.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let y = nl.or2(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("1'b1")).unwrap();
        let unjust = unjustified_gates(&nl, &asg);
        let probs = legal_one_probabilities(&nl, &asg, &unjust);
        assert!((probs[&a] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_stem_averages_branches() {
        // The stem feeds an AND requiring 1 (q1 = 1.0) and an inverter chain
        // requiring 1 (q1 = 0.0 on the stem): average is 0.5.
        let mut nl = Netlist::new("t");
        let stem = nl.input("stem", 1);
        let other = nl.input("other", 1);
        let and_out = nl.and2(stem, other);
        let inv_out = nl.not(stem);
        let mut asg = Assignment::new(&nl);
        asg.refine(and_out, &cube("1'b1")).unwrap();
        asg.refine(inv_out, &cube("1'b1")).unwrap();
        let unjust = unjustified_gates(&nl, &asg);
        let probs = legal_one_probabilities(&nl, &asg, &unjust);
        assert!((probs[&stem] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bias_definition() {
        let (bias, value) = assignment_bias(0.75);
        assert!((bias - 3.0).abs() < 1e-9);
        assert!(value);
        let (bias, value) = assignment_bias(0.25);
        assert!((bias - 3.0).abs() < 1e-9);
        assert!(!value);
        let (bias, _) = assignment_bias(0.5);
        assert!((bias - 1.0).abs() < 1e-9);
        let (bias, value) = assignment_bias(1.0);
        assert!(bias >= 1.0e9);
        assert!(value);
    }
}
