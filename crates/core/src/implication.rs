//! Word-level logic implication (Section 3.1 of the paper).
//!
//! Every gate kind has forward and backward implication rules expressed over
//! three-valued cubes:
//!
//! * **Boolean gates** use bit-parallel 3-valued logic,
//! * **arithmetic units** use 3-valued ripple addition/subtraction
//!   (the Fig. 3 adder rule: the missing operand is `output − operand`),
//! * **comparators** translate cubes to `[min, max]` ranges, tighten the
//!   ranges from the output value, and map back to cubes MSB-first
//!   (the Fig. 4 rule),
//! * **multiplexors** use cube union / null-intersection reasoning,
//! * frame-connection buffers (the unrolled form of registers) propagate in
//!   both directions.
//!
//! The [`Propagator`] runs these rules to a fixed point over a levelized
//! event queue (gates bucketed by topological depth, so forward implications
//! sweep the circuit in evaluation order and each gate is typically visited
//! once per wave); any contradiction surfaces as a [`Conflict`].
//!
//! The whole loop is allocation-free at steady state for nets up to 128 bits:
//! cubes are stored inline ([`wlac_bv::Bv3`]), proposals go through reusable
//! scratch buffers, and the assignment trail records word deltas.

use crate::assignment::{Assignment, Conflict};
use wlac_bv::arith::{add3, eq3, ge3, gt3, le3, lt3, mul3, ne3, shift3_var, sub3};
use wlac_bv::range::{refine_to_range_in_place, saturating_dec, saturating_inc};
use wlac_bv::{Bv, Bv3, Tv};
use wlac_netlist::{Gate, GateId, GateKind, NetId, Netlist};

/// Counters describing the implication effort (reported in [`crate::CheckStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImplicationStats {
    /// Number of gate implication evaluations.
    pub gate_evaluations: u64,
    /// Number of net refinements that added information.
    pub refinements: u64,
}

impl ImplicationStats {
    /// Merges the counters of another implication run into this one.
    ///
    /// `CheckStats::absorb` delegates here; the exhaustive destructuring
    /// means a counter added to this struct cannot be silently dropped from
    /// aggregation — forgetting to merge it is a compile error.
    pub fn absorb(&mut self, other: &ImplicationStats) {
        let ImplicationStats {
            gate_evaluations,
            refinements,
        } = other;
        self.gate_evaluations += gate_evaluations;
        self.refinements += refinements;
    }
}

/// Forward 3-valued evaluation of a gate from its current input cubes.
pub(crate) fn forward_eval(netlist: &Netlist, gate: &Gate, asg: &Assignment) -> Bv3 {
    let input = |i: usize| asg.value(gate.inputs[i]).clone();
    let out_width = netlist.net_width(gate.output);
    match &gate.kind {
        GateKind::Const(v) => Bv3::from_bv(v),
        GateKind::Buf | GateKind::Dff { .. } => input(0),
        GateKind::Not => input(0).not3(),
        GateKind::And => gate
            .inputs
            .iter()
            .skip(1)
            .fold(input(0), |acc, n| acc.and3(asg.value(*n))),
        GateKind::Or => gate
            .inputs
            .iter()
            .skip(1)
            .fold(input(0), |acc, n| acc.or3(asg.value(*n))),
        GateKind::Xor => gate
            .inputs
            .iter()
            .skip(1)
            .fold(input(0), |acc, n| acc.xor3(asg.value(*n))),
        GateKind::ReduceAnd => {
            let v = input(0);
            let any_zero = (0..v.width()).any(|i| v.bit(i) == Tv::Zero);
            let all_one = (0..v.width()).all(|i| v.bit(i) == Tv::One);
            Bv3::from_tv(if any_zero {
                Tv::Zero
            } else if all_one {
                Tv::One
            } else {
                Tv::X
            })
        }
        GateKind::ReduceOr => {
            let v = input(0);
            let any_one = (0..v.width()).any(|i| v.bit(i) == Tv::One);
            let all_zero = (0..v.width()).all(|i| v.bit(i) == Tv::Zero);
            Bv3::from_tv(if any_one {
                Tv::One
            } else if all_zero {
                Tv::Zero
            } else {
                Tv::X
            })
        }
        GateKind::ReduceXor => {
            let v = input(0);
            if v.is_fully_known() {
                let ones = (0..v.width()).filter(|i| v.bit(*i) == Tv::One).count();
                Bv3::from_tv(Tv::from_bool(ones % 2 == 1))
            } else {
                Bv3::from_tv(Tv::X)
            }
        }
        GateKind::Add => add3(&input(0), &input(1)).0,
        GateKind::Sub => sub3(&input(0), &input(1)).0,
        GateKind::Mul => mul3(&input(0), &input(1)),
        GateKind::Shl => shift3_var(&input(0), &input(1), true),
        GateKind::Shr => shift3_var(&input(0), &input(1), false),
        GateKind::Eq => Bv3::from_tv(eq3(&input(0), &input(1))),
        GateKind::Ne => Bv3::from_tv(ne3(&input(0), &input(1))),
        GateKind::Lt => Bv3::from_tv(lt3(&input(0), &input(1))),
        GateKind::Le => Bv3::from_tv(le3(&input(0), &input(1))),
        GateKind::Gt => Bv3::from_tv(gt3(&input(0), &input(1))),
        GateKind::Ge => Bv3::from_tv(ge3(&input(0), &input(1))),
        GateKind::Mux => {
            let sel = input(0).to_tv();
            match sel {
                Tv::One => input(1),
                Tv::Zero => input(2),
                Tv::X => {
                    let mut union = input(1);
                    union.union_assign(asg.value(gate.inputs[2]));
                    union
                }
            }
        }
        GateKind::Concat => input(0).concat(&input(1)),
        GateKind::Slice { lo } => input(0).slice(*lo, out_width),
        GateKind::ZeroExt => input(0).resize(out_width),
    }
}

/// Proposed refinements (net, cube) produced by one gate implication step.
type Proposals = Vec<(NetId, Bv3)>;

/// Reusable buffers threaded through gate implication so that steady-state
/// propagation performs no heap allocation: `proposals` collects the
/// refinements of one gate evaluation, `cubes` holds per-input working copies
/// for the variadic Boolean gates. Both keep their capacity across gates.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    proposals: Proposals,
    cubes: Vec<Bv3>,
}

impl Scratch {
    /// Approximate heap bytes held by the scratch buffers (the spines plus
    /// the cube payloads currently parked in them).
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let cube_heap = |c: &Bv3| 2 * c.width().div_ceil(64).max(2) * 8;
        self.proposals.capacity() * size_of::<(NetId, Bv3)>()
            + self
                .proposals
                .iter()
                .map(|(_, c)| cube_heap(c))
                .sum::<usize>()
            + self.cubes.capacity() * size_of::<Bv3>()
            + self.cubes.iter().map(cube_heap).sum::<usize>()
    }
}

/// Computes forward and backward implications for one gate into
/// `scratch.proposals` (cleared first).
///
/// The proposals are merged into the assignment by the caller; a proposal
/// never *weakens* a value (merging is monotone), and conflicting proposals
/// are detected by [`Assignment::refine`].
pub(crate) fn imply_gate(netlist: &Netlist, gate: &Gate, asg: &Assignment, scratch: &mut Scratch) {
    scratch.proposals.clear();
    // Forward.
    scratch
        .proposals
        .push((gate.output, forward_eval(netlist, gate, asg)));
    // Backward.
    let Scratch { proposals, cubes } = scratch;
    backward(netlist, gate, asg, proposals, cubes);
}

fn backward(
    netlist: &Netlist,
    gate: &Gate,
    asg: &Assignment,
    out: &mut Proposals,
    cubes: &mut Vec<Bv3>,
) {
    let y = asg.value(gate.output).clone();
    let input = |i: usize| asg.value(gate.inputs[i]).clone();
    match &gate.kind {
        GateKind::Const(_) => {}
        GateKind::Buf | GateKind::Dff { .. } => out.push((gate.inputs[0], y)),
        GateKind::Not => out.push((gate.inputs[0], y.not3())),
        GateKind::And | GateKind::Or => {
            let is_and = gate.kind == GateKind::And;
            let width = y.width();
            // Working copies double as both the "current value" snapshot and
            // the refined proposal: every mutation below touches only the bit
            // position currently being decided, which is read before it is
            // written, so no stale reads can occur.
            cubes.clear();
            cubes.extend(gate.inputs.iter().map(|n| asg.value(*n).clone()));
            let controlling = if is_and { Tv::Zero } else { Tv::One };
            let passive = !controlling;
            for bit in 0..width {
                match y.bit(bit) {
                    t if t == passive => {
                        // AND output 1 / OR output 0: every input takes the passive value.
                        for p in cubes.iter_mut() {
                            p.set_bit(bit, passive);
                        }
                    }
                    t if t == controlling => {
                        // Exactly one undetermined input left while all others
                        // are passive: it must take the controlling value.
                        let mut undecided = 0usize;
                        let mut last = 0usize;
                        for (i, v) in cubes.iter().enumerate() {
                            if v.bit(bit) != passive {
                                undecided += 1;
                                last = i;
                            }
                        }
                        if undecided == 1 && cubes[last].bit(bit) == Tv::X {
                            cubes[last].set_bit(bit, controlling);
                        }
                    }
                    _ => {}
                }
            }
            for (net, cube) in gate.inputs.iter().zip(cubes.drain(..)) {
                out.push((*net, cube));
            }
        }
        GateKind::Xor => {
            let width = y.width();
            cubes.clear();
            cubes.extend(gate.inputs.iter().map(|n| asg.value(*n).clone()));
            for bit in 0..width {
                if !y.bit(bit).is_known() {
                    continue;
                }
                let mut unknown = 0usize;
                let mut last = 0usize;
                for (i, v) in cubes.iter().enumerate() {
                    if !v.bit(bit).is_known() {
                        unknown += 1;
                        last = i;
                    }
                }
                if unknown == 1 {
                    let mut parity = y.bit(bit);
                    for (i, v) in cubes.iter().enumerate() {
                        if i != last {
                            parity = parity ^ v.bit(bit);
                        }
                    }
                    cubes[last].set_bit(bit, parity);
                }
            }
            for (net, cube) in gate.inputs.iter().zip(cubes.drain(..)) {
                out.push((*net, cube));
            }
        }
        GateKind::ReduceAnd => {
            let v = input(0);
            match y.to_tv() {
                Tv::One => out.push((gate.inputs[0], Bv3::from_bv(&Bv::ones(v.width())))),
                Tv::Zero => {
                    let (unknown, first_unknown) = count_bits(&v, Tv::X);
                    let (ones, _) = count_bits(&v, Tv::One);
                    if unknown == 1 && ones == v.width() - 1 {
                        out.push((gate.inputs[0], v.with_bit(first_unknown, Tv::Zero)));
                    }
                }
                Tv::X => {}
            }
        }
        GateKind::ReduceOr => {
            let v = input(0);
            match y.to_tv() {
                Tv::Zero => out.push((gate.inputs[0], Bv3::from_bv(&Bv::zero(v.width())))),
                Tv::One => {
                    let (unknown, first_unknown) = count_bits(&v, Tv::X);
                    let (zeros, _) = count_bits(&v, Tv::Zero);
                    if unknown == 1 && zeros == v.width() - 1 {
                        out.push((gate.inputs[0], v.with_bit(first_unknown, Tv::One)));
                    }
                }
                Tv::X => {}
            }
        }
        GateKind::ReduceXor => {
            let v = input(0);
            if let Some(target) = y.to_tv().to_bool() {
                let (unknown, first_unknown) = count_bits(&v, Tv::X);
                if unknown == 1 {
                    let (ones, _) = count_bits(&v, Tv::One);
                    let needed = target != (ones % 2 == 1);
                    out.push((
                        gate.inputs[0],
                        v.with_bit(first_unknown, Tv::from_bool(needed)),
                    ));
                }
            }
        }
        GateKind::Add => {
            // The Fig. 3 rule: each operand is output minus the other operand.
            out.push((gate.inputs[0], sub3(&y, &input(1)).0));
            out.push((gate.inputs[1], sub3(&y, &input(0)).0));
        }
        GateKind::Sub => {
            // y = a - b  ⇒  a = y + b,  b = a - y.
            out.push((gate.inputs[0], add3(&y, &input(1)).0));
            out.push((gate.inputs[1], sub3(&input(0), &y).0));
        }
        GateKind::Mul => {
            backward_mul(&y, &input(0), &input(1), gate, out);
        }
        GateKind::Shl | GateKind::Shr => {
            let left = gate.kind == GateKind::Shl;
            if let Some(amount) = input(1).to_bv().and_then(|v| v.to_u64()) {
                let amount = (amount as usize).min(y.width());
                let a = input(0);
                let mut refined = a.clone();
                for i in 0..y.width() {
                    // For a left shift, output bit i+amount equals input bit i.
                    let (out_bit, in_bit) = if left {
                        (i.checked_add(amount), i)
                    } else {
                        (i.checked_sub(amount), i)
                    };
                    if let Some(ob) = out_bit {
                        if ob < y.width() && y.bit(ob).is_known() {
                            refined.set_bit(in_bit, y.bit(ob));
                        }
                    }
                }
                out.push((gate.inputs[0], refined));
            }
        }
        GateKind::Eq | GateKind::Ne => {
            let equal_required = match (gate.kind == GateKind::Eq, y.to_tv()) {
                (true, Tv::One) | (false, Tv::Zero) => Some(true),
                (true, Tv::Zero) | (false, Tv::One) => Some(false),
                _ => None,
            };
            if equal_required == Some(true) {
                let mut meet = input(0);
                if meet.intersect_assign(asg.value(gate.inputs[1])) {
                    out.push((gate.inputs[0], meet.clone()));
                    out.push((gate.inputs[1], meet));
                } else {
                    // Equality required but impossible: force a conflict by
                    // proposing the (empty) intersection through both sides.
                    out.push((gate.inputs[0], input(1)));
                }
            }
        }
        GateKind::Lt | GateKind::Le | GateKind::Gt | GateKind::Ge => {
            if let Some(truth) = y.to_tv().to_bool() {
                // Normalise everything to a strict or non-strict `a (<|<=) b`.
                let (a_idx, b_idx, strict) = match (&gate.kind, truth) {
                    (GateKind::Lt, true) => (0, 1, true),
                    (GateKind::Lt, false) => (1, 0, false), // b <= a
                    (GateKind::Le, true) => (0, 1, false),
                    (GateKind::Le, false) => (1, 0, true), // b < a
                    (GateKind::Gt, true) => (1, 0, true),  // b < a
                    (GateKind::Gt, false) => (0, 1, false),
                    (GateKind::Ge, true) => (1, 0, false),
                    (GateKind::Ge, false) => (0, 1, true),
                    _ => unreachable!(),
                };
                let a = asg.value(gate.inputs[a_idx]).clone();
                let b = asg.value(gate.inputs[b_idx]).clone();
                let (min_a, max_a) = (a.min_value(), a.max_value());
                let (min_b, max_b) = (b.min_value(), b.max_value());
                // a <(=) b: a <= max_b (- 1 if strict), b >= min_a (+ 1 if strict).
                let a_hi = if strict {
                    saturating_dec(&max_b)
                } else {
                    max_b.clone()
                };
                let b_lo = if strict {
                    saturating_inc(&min_a)
                } else {
                    min_a.clone()
                };
                let a_hi = if a_hi < max_a { a_hi } else { max_a };
                let b_lo = if b_lo > min_b { b_lo } else { min_b };
                let mut refined_a = a.clone();
                match refine_to_range_in_place(&mut refined_a, &min_a, &a_hi) {
                    Ok(()) => out.push((gate.inputs[a_idx], refined_a)),
                    Err(_) => {
                        // No member of `a` satisfies the relation: force a conflict.
                        out.push((gate.output, Bv3::from_tv(Tv::from_bool(!truth))));
                    }
                }
                let mut refined_b = b.clone();
                match refine_to_range_in_place(&mut refined_b, &b_lo, &max_b) {
                    Ok(()) => out.push((gate.inputs[b_idx], refined_b)),
                    Err(_) => {
                        out.push((gate.output, Bv3::from_tv(Tv::from_bool(!truth))));
                    }
                }
            }
        }
        GateKind::Mux => {
            let sel = input(0);
            let t = input(1);
            let e = input(2);
            match sel.to_tv() {
                Tv::One => {
                    let mut meet = t;
                    if meet.intersect_assign(&y) {
                        out.push((gate.inputs[1], meet));
                    }
                }
                Tv::Zero => {
                    let mut meet = e;
                    if meet.intersect_assign(&y) {
                        out.push((gate.inputs[2], meet));
                    }
                }
                Tv::X => {
                    // Null intersection with the output rules a data input out
                    // and implies the select value (the paper's mux rule).
                    let t_possible = t.intersect(&y).is_some();
                    let e_possible = e.intersect(&y).is_some();
                    match (t_possible, e_possible) {
                        (true, false) => out.push((gate.inputs[0], Bv3::from_tv(Tv::One))),
                        (false, true) => out.push((gate.inputs[0], Bv3::from_tv(Tv::Zero))),
                        (false, false) => {
                            // Both impossible: conflict via contradictory select.
                            out.push((gate.inputs[0], Bv3::from_tv(Tv::One)));
                            out.push((gate.inputs[0], Bv3::from_tv(Tv::Zero)));
                        }
                        (true, true) => {}
                    }
                }
            }
        }
        GateKind::Concat => {
            let hi_w = netlist.net_width(gate.inputs[0]);
            let lo_w = netlist.net_width(gate.inputs[1]);
            out.push((gate.inputs[0], y.slice(lo_w, hi_w)));
            out.push((gate.inputs[1], y.slice(0, lo_w)));
        }
        GateKind::Slice { lo } => {
            let in_w = netlist.net_width(gate.inputs[0]);
            let mut refined = input(0);
            for i in 0..y.width() {
                if y.bit(i).is_known() && lo + i < in_w {
                    refined.set_bit(lo + i, y.bit(i));
                }
            }
            out.push((gate.inputs[0], refined));
        }
        GateKind::ZeroExt => {
            let in_w = netlist.net_width(gate.inputs[0]);
            out.push((gate.inputs[0], y.slice(0, in_w)));
        }
    }
}

/// Backward implication across a multiplier: possible only when enough is known.
fn backward_mul(y: &Bv3, a: &Bv3, b: &Bv3, gate: &Gate, out: &mut Proposals) {
    let width = y.width();
    if width > 64 {
        return;
    }
    // An odd product forces both operands odd.
    if y.bit(0) == Tv::One {
        out.push((gate.inputs[0], a.with_bit(0, Tv::One)));
        out.push((gate.inputs[1], b.with_bit(0, Tv::One)));
    }
    if let Some(yv) = y.to_bv().and_then(|v| v.to_u64()) {
        let ring = wlac_modsolve::Ring::new(width as u32);
        for (known, unknown_idx) in [(a, 1usize), (b, 0usize)] {
            if let Some(kv) = known.to_bv().and_then(|v| v.to_u64()) {
                if let Some(set) = wlac_modsolve::inverse_with_product(ring, kv, yv) {
                    if set.count() == 1 {
                        out.push((
                            gate.inputs[unknown_idx],
                            Bv3::from_bv(&Bv::from_u64(width, set.base())),
                        ));
                    }
                } else {
                    // No factorisation exists: force a conflict on the output.
                    out.push((gate.output, Bv3::from_bv(&Bv::from_u64(width, yv ^ 1))));
                }
            }
        }
    }
}

/// Counts bits of `cube` equal to `t`, also returning the index of the last
/// such bit (0 when there is none). Used by the reduction-gate backward rules
/// without building index vectors.
fn count_bits(cube: &Bv3, t: Tv) -> (usize, usize) {
    let mut count = 0;
    let mut last = 0;
    for i in 0..cube.width() {
        if cube.bit(i) == t {
            count += 1;
            last = i;
        }
    }
    (count, last)
}

/// Event-driven fixed-point implication over a netlist.
///
/// Pending gates are kept in a *levelized bucket queue* ordered by
/// topological depth: forward implications are processed as one sweep from
/// inputs to outputs instead of FIFO interleaving, which minimises repeated
/// re-evaluation of deep gates. Backward implications re-activate shallower
/// buckets by moving the scan cursor back. All buffers (buckets, queued
/// flags, proposal scratch) are allocated once per netlist and reused across
/// runs, so a `Propagator` should be created once per search and shared by
/// every decision/backtrack cycle.
#[derive(Debug)]
pub(crate) struct Propagator {
    /// Pending gates, bucketed by topological depth.
    buckets: Vec<Vec<GateId>>,
    /// Topological depth per gate (flip-flops and sources at depth 0).
    depth: Vec<u32>,
    queued: Vec<bool>,
    /// Lowest bucket index that may be non-empty.
    active_min: usize,
    /// Total number of queued gates.
    pending: usize,
    scratch: Scratch,
}

impl Propagator {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        let mut depth = vec![0u32; netlist.gate_count()];
        // Combinational cycles cannot happen in well-formed netlists; if they
        // do, every gate stays at depth 0 and the queue degenerates to a
        // single LIFO bucket, which is still correct.
        if let Ok(order) = netlist.combinational_order() {
            for gate_id in order {
                let gate = netlist.gate(gate_id);
                let d = gate
                    .inputs
                    .iter()
                    .filter_map(|n| netlist.driver(*n))
                    .filter(|g| !netlist.gate(*g).kind.is_flip_flop())
                    .map(|g| depth[g.index()] + 1)
                    .max()
                    .unwrap_or(0);
                depth[gate_id.index()] = d;
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0) as usize;
        Propagator {
            buckets: vec![Vec::new(); max_depth + 1],
            depth,
            queued: vec![false; netlist.gate_count()],
            active_min: max_depth + 1,
            pending: 0,
            scratch: Scratch::default(),
        }
    }

    /// Enqueues every gate (used for the initial implication pass).
    pub(crate) fn enqueue_all(&mut self, netlist: &Netlist) {
        for (id, _) in netlist.gates() {
            self.enqueue(id);
        }
    }

    fn enqueue(&mut self, gate: GateId) {
        if !self.queued[gate.index()] {
            self.queued[gate.index()] = true;
            let d = self.depth[gate.index()] as usize;
            self.buckets[d].push(gate);
            self.pending += 1;
            self.active_min = self.active_min.min(d);
        }
    }

    fn pop(&mut self) -> Option<GateId> {
        if self.pending == 0 {
            return None;
        }
        while self.buckets[self.active_min].is_empty() {
            self.active_min += 1;
        }
        let gate = self.buckets[self.active_min]
            .pop()
            .expect("non-empty bucket");
        self.queued[gate.index()] = false;
        self.pending -= 1;
        Some(gate)
    }

    /// Drops all pending events (also used to reset a context between runs).
    pub(crate) fn clear(&mut self) {
        for bucket in &mut self.buckets {
            for gate in bucket.drain(..) {
                self.queued[gate.index()] = false;
            }
        }
        self.pending = 0;
        self.active_min = self.buckets.len();
    }

    /// Approximate heap bytes held by the propagator: depth/queued tables,
    /// the bucketed worklist and the implication scratch. Feeds the search's
    /// memory estimate for the paper's Table 2 column.
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let buckets: usize = self
            .buckets
            .iter()
            .map(|b| b.capacity() * size_of::<GateId>() + size_of::<Vec<GateId>>())
            .sum();
        buckets
            + self.depth.capacity() * size_of::<u32>()
            + self.queued.capacity() * size_of::<bool>()
            + self.scratch.memory_bytes()
    }

    /// Enqueues the driver and readers of a net whose value changed.
    pub(crate) fn enqueue_net(&mut self, netlist: &Netlist, net: NetId) {
        if let Some(driver) = netlist.driver(net) {
            self.enqueue(driver);
        }
        for reader in netlist.fanouts(net) {
            self.enqueue(*reader);
        }
    }

    /// Runs implication to a fixed point.
    ///
    /// # Errors
    ///
    /// Returns the first [`Conflict`] encountered; the assignment then holds
    /// partially-propagated values and is expected to be backtracked by the
    /// caller.
    pub(crate) fn run(
        &mut self,
        netlist: &Netlist,
        asg: &mut Assignment,
        stats: &mut ImplicationStats,
    ) -> Result<(), Conflict> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.run_inner(netlist, asg, stats, &mut scratch);
        self.scratch = scratch;
        result
    }

    fn run_inner(
        &mut self,
        netlist: &Netlist,
        asg: &mut Assignment,
        stats: &mut ImplicationStats,
        scratch: &mut Scratch,
    ) -> Result<(), Conflict> {
        while let Some(gate_id) = self.pop() {
            let gate = netlist.gate(gate_id);
            stats.gate_evaluations += 1;
            imply_gate(netlist, gate, asg, scratch);
            for (net, cube) in &scratch.proposals {
                match asg.refine(*net, cube) {
                    Ok(true) => {
                        stats.refinements += 1;
                        self.enqueue_net(netlist, *net);
                    }
                    Ok(false) => {}
                    Err(conflict) => {
                        self.clear();
                        return Err(conflict);
                    }
                }
            }
        }
        Ok(())
    }
}

/// A standalone word-level implication engine: an [`Assignment`] plus a
/// levelized [`Propagator`] behind a small public API.
///
/// This exposes the checker's innermost loop — refine a net, propagate to a
/// fixed point, backtrack — for diagnostics, benchmarking and embedding. At
/// steady state (after the first propagation has warmed the internal
/// buffers) the engine performs **zero heap allocations** for nets up to
/// 128 bits wide; `crates/core/tests/alloc_free.rs` enforces this with a
/// counting allocator.
///
/// # Examples
///
/// ```
/// use wlac_atpg::ImplicationEngine;
/// use wlac_netlist::Netlist;
///
/// let mut nl = Netlist::new("demo");
/// let a = nl.input("a", 4);
/// let b = nl.input("b", 4);
/// let y = nl.add(a, b);
/// let mut engine = ImplicationEngine::new(&nl);
/// engine.assume(&nl, y, &"4'b0111".parse().unwrap()).unwrap();
/// engine.assume(&nl, a, &"4'b1x1x".parse().unwrap()).unwrap();
/// engine.propagate(&nl).unwrap();
/// assert_eq!(engine.value(b).to_string(), "4'b1x0x");
/// ```
#[derive(Debug)]
pub struct ImplicationEngine {
    asg: Assignment,
    propagator: Propagator,
    stats: ImplicationStats,
}

impl ImplicationEngine {
    /// Creates an engine with every net unknown.
    pub fn new(netlist: &Netlist) -> Self {
        ImplicationEngine {
            asg: Assignment::new(netlist),
            propagator: Propagator::new(netlist),
            stats: ImplicationStats::default(),
        }
    }

    /// Refines `net` with `cube` and schedules the affected gates.
    ///
    /// # Errors
    ///
    /// Returns a [`Conflict`] when the cube contradicts the current value.
    pub fn assume(&mut self, netlist: &Netlist, net: NetId, cube: &Bv3) -> Result<bool, Conflict> {
        let changed = self.asg.refine(net, cube)?;
        if changed {
            self.propagator.enqueue_net(netlist, net);
        }
        Ok(changed)
    }

    /// Runs implication to a fixed point.
    ///
    /// # Errors
    ///
    /// Returns the first [`Conflict`]; the caller is expected to
    /// [`backtrack`](ImplicationEngine::backtrack_to) past it.
    pub fn propagate(&mut self, netlist: &Netlist) -> Result<(), Conflict> {
        self.propagator.run(netlist, &mut self.asg, &mut self.stats)
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> &Bv3 {
        self.asg.value(net)
    }

    /// Takes a trail mark for later backtracking.
    pub fn mark(&self) -> usize {
        self.asg.mark()
    }

    /// Restores every net to its value at `mark`.
    pub fn backtrack_to(&mut self, mark: usize) {
        self.asg.backtrack_to(mark);
    }

    /// Accumulated implication statistics.
    pub fn stats(&self) -> ImplicationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    /// Runs implication to fixpoint on a small netlist after some seeds.
    fn settle(netlist: &Netlist, seeds: &[(NetId, Bv3)]) -> Result<Assignment, Conflict> {
        let mut asg = Assignment::new(netlist);
        let mut prop = Propagator::new(netlist);
        let mut stats = ImplicationStats::default();
        for (net, value) in seeds {
            asg.refine(*net, value)?;
            prop.enqueue_net(netlist, *net);
        }
        prop.enqueue_all(netlist);
        prop.run(netlist, &mut asg, &mut stats)?;
        Ok(asg)
    }

    #[test]
    fn and_gate_paper_example() {
        // Section 3.1: a = 10xx, b = 1x1x at a 4-bit AND with output x00x
        // forward-implies y = 100x and backward-implies a = 100x.
        let mut nl = Netlist::new("and");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.and2(a, b);
        let asg = settle(
            &nl,
            &[
                (a, cube("4'b10xx")),
                (b, cube("4'b1x1x")),
                (y, cube("4'bx00x")),
            ],
        )
        .unwrap();
        assert_eq!(asg.value(y), &cube("4'b100x"));
        assert_eq!(asg.value(a), &cube("4'b100x"));
    }

    #[test]
    fn adder_fig3_example() {
        let mut nl = Netlist::new("adder");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.add(a, b);
        let asg = settle(&nl, &[(y, cube("4'b0111")), (a, cube("4'b1x1x"))]).unwrap();
        assert_eq!(asg.value(b), &cube("4'b1x0x"));
    }

    #[test]
    fn comparator_fig4_example() {
        let mut nl = Netlist::new("cmp");
        let a = nl.input("in_a", 4);
        let b = nl.input("in_b", 4);
        let y = nl.gt(a, b);
        let asg = settle(
            &nl,
            &[
                (a, cube("4'bx01x")),
                (b, cube("4'b1x0x")),
                (y, cube("1'b1")),
            ],
        )
        .unwrap();
        assert_eq!(asg.value(a), &cube("4'b101x"));
        assert_eq!(asg.value(b), &cube("4'b100x"));
    }

    #[test]
    fn mux_null_intersection_implies_select() {
        let mut nl = Netlist::new("mux");
        let sel = nl.input("sel", 1);
        let t = nl.input("t", 4);
        let e = nl.input("e", 4);
        let y = nl.mux(sel, t, e);
        // Output 5 is incompatible with the then-input forced to 0, so sel = 0.
        let asg = settle(&nl, &[(t, cube("4'b0000")), (y, cube("4'b0101"))]).unwrap();
        assert_eq!(asg.value(sel).to_tv(), Tv::Zero);
        assert_eq!(asg.value(e), &cube("4'b0101"));
    }

    #[test]
    fn register_buffer_propagates_both_ways() {
        let mut nl = Netlist::new("buf");
        let d = nl.input("d", 4);
        let q = nl.buf(d);
        let asg = settle(&nl, &[(q, cube("4'b1x00"))]).unwrap();
        assert_eq!(asg.value(d), &cube("4'b1x00"));
    }

    #[test]
    fn equality_requirement_intersects_operands() {
        let mut nl = Netlist::new("eq");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.eq(a, b);
        let asg = settle(
            &nl,
            &[
                (a, cube("4'b10xx")),
                (b, cube("4'bxx01")),
                (y, cube("1'b1")),
            ],
        )
        .unwrap();
        assert_eq!(asg.value(a), &cube("4'b1001"));
        assert_eq!(asg.value(b), &cube("4'b1001"));
    }

    #[test]
    fn equality_conflict_detected() {
        let mut nl = Netlist::new("eq2");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.eq(a, b);
        let result = settle(
            &nl,
            &[
                (a, cube("4'b0000")),
                (b, cube("4'b1111")),
                (y, cube("1'b1")),
            ],
        );
        assert!(result.is_err());
    }

    #[test]
    fn multiplier_inverse_implication() {
        let mut nl = Netlist::new("mul");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.mul(a, b);
        // a = 3 (odd, invertible), y = 9 ⇒ b = 3·inverse = 3^{-1}·9 = 11·9 = 3.
        let asg = settle(&nl, &[(a, cube("4'b0011")), (y, cube("4'b1001"))]).unwrap();
        assert_eq!(asg.value(b), &cube("4'b0011"));
    }

    #[test]
    fn shift_backward_with_known_amount() {
        let mut nl = Netlist::new("shl");
        let a = nl.input("a", 4);
        let amt = nl.constant(&Bv::from_u64(4, 1));
        let y = nl.shl(a, amt);
        let asg = settle(&nl, &[(y, cube("4'b011x"))]).unwrap();
        // Output bits 1..3 are input bits 0..2.
        assert_eq!(asg.value(a).bit(0), Tv::One);
        assert_eq!(asg.value(a).bit(1), Tv::One);
        assert_eq!(asg.value(a).bit(2), Tv::Zero);
    }

    #[test]
    fn concat_slice_zext_backward() {
        let mut nl = Netlist::new("structural");
        let hi = nl.input("hi", 2);
        let lo = nl.input("lo", 2);
        let cat = nl.concat(hi, lo);
        let sl = nl.slice(cat, 1, 2);
        let zx = nl.zext(sl, 5);
        let asg = settle(&nl, &[(zx, cube("5'b00011"))]).unwrap();
        assert_eq!(asg.value(sl), &cube("2'b11"));
        // slice bits 1..2 of cat are 1, i.e. lo bit1 = 1, hi bit0 = 1.
        assert_eq!(asg.value(lo).bit(1), Tv::One);
        assert_eq!(asg.value(hi).bit(0), Tv::One);
    }

    #[test]
    fn conflict_on_impossible_comparator() {
        let mut nl = Netlist::new("cmp_bad");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.lt(a, b);
        // a >= 12, b <= 3 and a < b is impossible.
        let result = settle(
            &nl,
            &[
                (a, cube("4'b11xx")),
                (b, cube("4'b00xx")),
                (y, cube("1'b1")),
            ],
        );
        assert!(result.is_err());
    }

    #[test]
    fn reduction_gates_backward() {
        let mut nl = Netlist::new("reduce");
        let a = nl.input("a", 3);
        let y = nl.reduce_or(a);
        let asg = settle(&nl, &[(y, cube("1'b0"))]).unwrap();
        assert_eq!(asg.value(a), &cube("3'b000"));

        let mut nl2 = Netlist::new("reduce_and");
        let a2 = nl2.input("a", 3);
        let y2 = nl2.reduce_and(a2);
        let asg2 = settle(&nl2, &[(y2, cube("1'b1"))]).unwrap();
        assert_eq!(asg2.value(a2), &cube("3'b111"));
    }
}
